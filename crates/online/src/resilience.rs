//! Deadline budgets, bounded retries, and read failover for the online
//! request path.
//!
//! The paper's deployments keep serving through tablet loss via
//! ZooKeeper-coordinated replicas (§3.1); this module is the reproduction's
//! equivalent contract, stated as three guarantees that
//! [`execute_request_with`](crate::execute_request_with) upholds:
//!
//! 1. **Never hang.** A [`Deadline`] is checked at every pipeline stage and
//!    before every storage access; budget exhaustion surfaces as a typed
//!    `Error::Timeout` naming the stage.
//! 2. **Transient faults are absorbed.** Storage errors classified
//!    transient by [`Error::is_transient`] get bounded
//!    exponential-backoff retries ([`RetryPolicy`]); if the primary table
//!    keeps faulting, the read fails over to
//!    [`TableProvider::fallback_table`](crate::TableProvider::fallback_table)
//!    (a caught-up replica) before giving up.
//! 3. **Degrade, don't die.** When the full-window path exceeds its budget
//!    and the window has a pre-aggregation, the answer comes from buckets
//!    alone, flagged `degraded: true` in [`RequestOutput`].

use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

use openmldb_storage::DataTable;
use openmldb_types::{Deadline, Error, Result, Row};

use crate::engine::TableProvider;

/// Bounded exponential backoff for transient storage faults.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 = no retries).
    pub max_retries: u32,
    /// Backoff before retry `n` is `backoff_base * 2^n`, capped below.
    pub backoff_base: Duration,
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// Disable retries entirely.
    pub const fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }

    /// Backoff before retry `attempt` (0-based), capped.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(16);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

/// Per-request resilience knobs for
/// [`execute_request_with`](crate::execute_request_with).
#[derive(Clone, Copy, Debug)]
pub struct RequestOptions {
    pub deadline: Deadline,
    pub retry: RetryPolicy,
    /// Allow buckets-only answers (flagged `degraded`) when the full
    /// window path exceeds the deadline and a pre-aggregation exists.
    pub allow_degraded: bool,
}

impl Default for RequestOptions {
    fn default() -> Self {
        RequestOptions {
            deadline: Deadline::none(),
            retry: RetryPolicy::default(),
            allow_degraded: true,
        }
    }
}

impl RequestOptions {
    /// Options with a deadline of `budget` and the default retry policy.
    pub fn with_deadline(budget: Duration) -> Self {
        RequestOptions {
            deadline: Deadline::within(budget),
            ..Self::default()
        }
    }
}

/// One resolved request: the feature row plus how much resilience
/// machinery it took to produce it.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestOutput {
    pub row: Row,
    /// The answer came from pre-aggregated buckets alone (raw edges
    /// skipped) because the full path exceeded its budget.
    pub degraded: bool,
    /// Transient-fault retries performed across all storage accesses.
    pub retries: u32,
    /// Reads that failed over from the primary table to its replica.
    pub failovers: u32,
    /// Flight-recorder trace id for this request — the key joining the
    /// response to histogram exemplars and slow-query post-mortems. Zero
    /// under `obs-off`.
    pub trace_id: u64,
}

/// Per-request mutable state threaded through the engine (single-threaded
/// per request, hence `Cell`).
pub(crate) struct Ctx<'a> {
    pub(crate) opts: &'a RequestOptions,
    retries: Cell<u32>,
    failovers: Cell<u32>,
    degraded: Cell<bool>,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(opts: &'a RequestOptions) -> Self {
        Ctx {
            opts,
            retries: Cell::new(0),
            failovers: Cell::new(0),
            degraded: Cell::new(false),
        }
    }

    #[inline]
    pub(crate) fn check(&self, stage: &'static str) -> Result<()> {
        // Once a window has degraded the deadline is expired by definition;
        // failing every later stage would make a degraded answer impossible
        // to return. The remaining work (encode) is deadline-free, and the
        // window loop guards later windows via `deadline_expired`.
        if self.degraded.get() {
            return Ok(());
        }
        self.opts.deadline.check(stage)
    }

    /// Raw deadline test that ignores the degraded-mode leniency of
    /// [`Ctx::check`] — used to keep later windows from starting an
    /// unbudgeted full scan after an earlier window already degraded.
    #[inline]
    pub(crate) fn deadline_expired(&self) -> bool {
        self.opts.deadline.expired()
    }

    pub(crate) fn note_retry(&self) {
        self.retries.set(self.retries.get() + 1);
        crate::metrics::retries().inc();
        openmldb_obs::flight::event(openmldb_obs::FlightEventKind::Retry, self.retries.get(), 0);
    }

    pub(crate) fn note_failover(&self) {
        self.failovers.set(self.failovers.get() + 1);
        crate::metrics::failovers().inc();
        openmldb_obs::flight::event(
            openmldb_obs::FlightEventKind::Failover,
            self.failovers.get(),
            0,
        );
    }

    pub(crate) fn note_degraded(&self) {
        self.degraded.set(true);
        crate::metrics::degraded().inc();
        openmldb_obs::flight::event(openmldb_obs::FlightEventKind::Degraded, 0, 0);
    }

    pub(crate) fn retries(&self) -> u32 {
        self.retries.get()
    }

    pub(crate) fn failovers(&self) -> u32 {
        self.failovers.get()
    }

    pub(crate) fn degraded(&self) -> bool {
        self.degraded.get()
    }

    fn backoff_sleep(&self, attempt: u32) {
        let mut d = self.opts.retry.backoff(attempt);
        // Never sleep past the deadline: the next check should fire at
        // most one backoff after expiry.
        if let Some(rem) = self.opts.deadline.remaining() {
            d = d.min(rem);
        }
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// Run `op`, absorbing transient faults with bounded backoff. Returns the
/// first success, the first non-transient error, a `Timeout` if the
/// deadline expires between attempts, or the last transient error once
/// retries are exhausted.
pub(crate) fn retry_transient<T>(ctx: &Ctx, mut op: impl FnMut() -> Result<T>) -> Result<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < ctx.opts.retry.max_retries => {
                ctx.check("storage_retry")?;
                ctx.backoff_sleep(attempt);
                ctx.note_retry();
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Resolve `name` through the provider and run `op` against it with the
/// full resilience ladder: deadline check → bounded retries on the primary
/// → failover to `fallback_table` (a caught-up replica) with its own retry
/// round. Non-transient errors and timeouts propagate immediately.
pub(crate) fn resilient_read<T>(
    ctx: &Ctx,
    provider: &dyn TableProvider,
    name: &str,
    mut op: impl FnMut(&dyn DataTable) -> Result<T>,
) -> Result<T> {
    ctx.check("storage_seek")?;
    let table: Arc<dyn DataTable> = provider
        .table(name)
        .ok_or_else(|| Error::Storage(format!("unknown table `{name}`")))?;
    match retry_transient(ctx, || op(&*table)) {
        Ok(v) => Ok(v),
        Err(e) if e.is_transient() => {
            // The primary is persistently faulting: try its replica.
            let Some(fallback) = provider.fallback_table(name) else {
                return Err(e);
            };
            ctx.note_failover();
            retry_transient(ctx, || op(&*fallback))
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_retries: 10,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(1),
        };
        assert_eq!(p.backoff(0), Duration::from_micros(100));
        assert_eq!(p.backoff(1), Duration::from_micros(200));
        assert_eq!(p.backoff(2), Duration::from_micros(400));
        assert_eq!(p.backoff(5), Duration::from_millis(1), "capped");
        assert_eq!(p.backoff(63), Duration::from_millis(1), "no overflow");
    }

    #[test]
    fn defaults_are_sane() {
        let o = RequestOptions::default();
        assert!(!o.deadline.is_bounded());
        assert!(o.allow_degraded);
        assert_eq!(o.retry.max_retries, 3);
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }

    #[test]
    fn retry_absorbs_transient_then_succeeds() {
        let opts = RequestOptions::default();
        let ctx = Ctx::new(&opts);
        let mut calls = 0;
        let out = retry_transient(&ctx, || {
            calls += 1;
            if calls < 3 {
                Err(Error::Storage("transient fault injected at test".into()))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out, Ok(42));
        assert_eq!(calls, 3);
        assert_eq!(ctx.retries(), 2);
    }

    #[test]
    fn retry_stops_at_non_transient() {
        let opts = RequestOptions::default();
        let ctx = Ctx::new(&opts);
        let mut calls = 0;
        let out: Result<()> = retry_transient(&ctx, || {
            calls += 1;
            Err(Error::Storage("no such index".into()))
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "non-transient errors never retry");
        assert_eq!(ctx.retries(), 0);
    }

    #[test]
    fn retry_exhaustion_returns_last_transient() {
        let opts = RequestOptions {
            retry: RetryPolicy {
                max_retries: 2,
                backoff_base: Duration::ZERO,
                backoff_cap: Duration::ZERO,
            },
            ..Default::default()
        };
        let ctx = Ctx::new(&opts);
        let mut calls = 0;
        let out: Result<()> = retry_transient(&ctx, || {
            calls += 1;
            Err(Error::Storage("transient fault injected at test".into()))
        });
        assert!(matches!(out, Err(ref e) if e.is_transient()));
        assert_eq!(calls, 3, "1 attempt + 2 retries");
    }

    #[test]
    fn expired_deadline_turns_retry_into_timeout() {
        let opts = RequestOptions {
            deadline: Deadline::within(Duration::ZERO),
            ..Default::default()
        };
        let ctx = Ctx::new(&opts);
        let out: Result<()> = retry_transient(&ctx, || {
            Err(Error::Storage("transient fault injected at test".into()))
        });
        assert!(matches!(out, Err(Error::Timeout { .. })), "{out:?}");
    }
}
