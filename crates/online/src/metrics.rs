//! Global observability handles for the online request-mode engine.
//!
//! Accessors lazily register in the process-wide
//! [`Registry`](openmldb_obs::Registry) and cache the handle in a
//! `OnceLock`; the request hot path costs a handful of sharded relaxed
//! atomics per request.

use openmldb_obs::{Counter, Gauge, Histogram, LabeledCounter, LabeledHistogram, Registry};
use std::sync::{Arc, OnceLock};

fn counter(cell: &'static OnceLock<Arc<Counter>>, name: &str, help: &str) -> &'static Counter {
    cell.get_or_init(|| Registry::global().counter(name, help))
}

fn labeled(
    cell: &'static OnceLock<Arc<LabeledCounter>>,
    name: &str,
    help: &str,
) -> &'static LabeledCounter {
    cell.get_or_init(|| Registry::global().labeled_counter(name, help))
}

/// Requests executed through `execute_request`.
pub fn requests() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_requests_total",
        "Request-mode executions through the online engine",
    )
}

/// End-to-end request latency distribution.
pub fn request_duration() -> &'static Histogram {
    static M: OnceLock<Arc<Histogram>> = OnceLock::new();
    M.get_or_init(|| {
        let h = Registry::global().histogram(
            "openmldb_online_request_duration_ns",
            "End-to-end online request latency",
        );
        // Buckets at or above the slow-query threshold keep the most recent
        // offending request's trace id + stage breakdown as an exemplar.
        h.enable_exemplars(openmldb_obs::flight::slow_query_threshold_ns());
        h
    })
}

/// Rows scanned out of storage by request executions, summed across all
/// deployments. The labeled [`deployment_scan_rows`] series slices this same
/// number per deployment; both are incremented from the identical
/// [`CostProfile`](openmldb_obs::CostProfile), so the per-deployment sums
/// (including `__other`) reconcile exactly with this global.
pub fn scan_rows() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_scan_rows",
        "Storage rows scanned by online request executions",
    )
}

/// Wall-clock nanoseconds spent serving requests (sum over requests).
pub fn request_time_ns() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_request_time_ns",
        "Total wall-clock time spent serving online requests",
    )
}

/// Nanoseconds attributed to named pipeline stages (sum of per-stage self
/// time over requests; excludes un-staged "other" time).
pub fn stage_time_ns() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_stage_time_ns",
        "Request time attributed to named pipeline stages",
    )
}

/// Per-deployment request count (labeled by deployment name).
pub fn deployment_requests() -> &'static LabeledCounter {
    static M: OnceLock<Arc<LabeledCounter>> = OnceLock::new();
    labeled(
        &M,
        "openmldb_online_deployment_requests_total",
        "Request-mode executions per deployment",
    )
}

/// Per-deployment storage rows scanned.
pub fn deployment_scan_rows() -> &'static LabeledCounter {
    static M: OnceLock<Arc<LabeledCounter>> = OnceLock::new();
    labeled(
        &M,
        "openmldb_online_deployment_scan_rows",
        "Storage rows scanned per deployment",
    )
}

/// Per-deployment staged pipeline time (sum of stage self-times).
pub fn deployment_stage_time_ns() -> &'static LabeledCounter {
    static M: OnceLock<Arc<LabeledCounter>> = OnceLock::new();
    labeled(
        &M,
        "openmldb_online_deployment_stage_time_ns",
        "Staged pipeline time per deployment",
    )
}

/// Per-deployment wall-clock request time.
pub fn deployment_request_time_ns() -> &'static LabeledCounter {
    static M: OnceLock<Arc<LabeledCounter>> = OnceLock::new();
    labeled(
        &M,
        "openmldb_online_deployment_request_time_ns",
        "Total wall-clock request time per deployment",
    )
}

/// Per-deployment end-to-end latency distribution (mergeable histograms —
/// one log-linear histogram per deployment label slot).
pub fn deployment_duration() -> &'static LabeledHistogram {
    static M: OnceLock<Arc<LabeledHistogram>> = OnceLock::new();
    M.get_or_init(|| {
        Registry::global().labeled_histogram(
            "openmldb_online_deployment_duration_ns",
            "End-to-end online request latency per deployment",
        )
    })
}

/// Windows served by the pre-aggregation fast path.
pub fn preagg_hits() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_preagg_hits_total",
        "Windows served by the pre-aggregation fast path",
    )
}

/// Windows that had a pre-aggregator attached but fell back to a raw scan
/// (frame shape or window attributes made the fast path inapplicable).
pub fn preagg_skips() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_preagg_skips_total",
        "Windows with a pre-aggregator that still took the raw scan path",
    )
}

/// Pre-aggregated buckets merged into answers.
pub fn preagg_bucket_hits() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_preagg_bucket_hits_total",
        "Pre-aggregated buckets merged into window answers",
    )
}

/// Windows served by the compiled bytecode fast path.
pub fn compiled_windows() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_compiled_windows_total",
        "Windows served by compiled bytecode programs",
    )
}

/// Windows that ran interpreted because their plan did not specialize.
pub fn compiled_fallback() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_compiled_fallback_total",
        "Windows served by the interpreted fallback after specialization declined",
    )
}

/// Transient-fault retries performed by the resilient request path.
pub fn retries() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_retries_total",
        "Transient storage faults absorbed by request-path retries",
    )
}

/// Reads that failed over from the primary table to its replica.
pub fn failovers() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_failovers_total",
        "Reads failed over from a faulting primary to a replica",
    )
}

/// Requests answered from pre-agg buckets alone after budget exhaustion.
pub fn degraded() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_degraded_total",
        "Windows answered buckets-only after the deadline budget ran out",
    )
}

/// Requests that surfaced a typed deadline timeout.
pub fn timeouts() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_timeouts_total",
        "Requests that exceeded their deadline budget",
    )
}

/// Tuples pushed through window-union workers.
pub fn union_tuples() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_union_tuples_total",
        "Tuples routed through self-adjusting window-union workers",
    )
}

/// Worker imbalance of the most recently flushed window union
/// (max load / mean load; 1.0 is perfectly balanced).
pub fn union_imbalance() -> &'static Gauge {
    static M: OnceLock<Arc<Gauge>> = OnceLock::new();
    M.get_or_init(|| {
        Registry::global().gauge(
            "openmldb_online_union_imbalance_ratio",
            "Window-union worker imbalance (max/mean tuple load)",
        )
    })
}

/// Per-worker tuple load of the most recently flushed window union.
pub fn union_worker_load(worker: usize) -> Arc<Gauge> {
    Registry::global().gauge(
        &format!("openmldb_online_union_worker_load_rows{{worker=\"{worker}\"}}"),
        "Tuples processed per window-union worker",
    )
}

/// Requests sampled onto the consistency-sentinel audit queue.
pub fn sentinel_samples() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_sentinel_samples_total",
        "Served requests captured for consistency auditing",
    )
}

/// Sampled requests the auditor actually replayed through the oracles.
pub fn sentinel_audits() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_sentinel_audits_total",
        "Sampled requests re-executed through the interpreted and materialized oracles",
    )
}

/// Confirmed online/offline divergences (served output or scan inputs
/// disagreed with an oracle replay at an unchanged table version).
pub fn sentinel_divergences() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_sentinel_divergences_total",
        "Confirmed consistency divergences between served and oracle results",
    )
}

/// Audits skipped because the table version changed between capture and
/// replay (a concurrent write makes the comparison meaningless, not wrong).
pub fn sentinel_stale_skips() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_sentinel_stale_skips_total",
        "Audits skipped because the table version moved under the sample",
    )
}

/// Samples dropped because the bounded audit queue was full.
pub fn sentinel_dropped() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_sentinel_dropped_total",
        "Sentinel samples dropped on a full audit queue",
    )
}

/// Oracle replays that errored (deployment vanished, replay failure).
pub fn sentinel_errors() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_sentinel_errors_total",
        "Sentinel oracle replays that failed outright",
    )
}

/// Current depth of the sentinel audit queue (captured, not yet audited).
pub fn sentinel_lag() -> &'static Gauge {
    static M: OnceLock<Arc<Gauge>> = OnceLock::new();
    M.get_or_init(|| {
        Registry::global().gauge(
            "openmldb_online_sentinel_lag_count",
            "Sentinel samples waiting in the audit queue",
        )
    })
}

/// Per-deployment confirmed divergences (labeled by deployment name).
pub fn deployment_divergences() -> &'static LabeledCounter {
    static M: OnceLock<Arc<LabeledCounter>> = OnceLock::new();
    labeled(
        &M,
        "openmldb_online_deployment_divergences_total",
        "Confirmed consistency divergences per deployment",
    )
}
