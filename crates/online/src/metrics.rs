//! Global observability handles for the online request-mode engine.
//!
//! Accessors lazily register in the process-wide
//! [`Registry`](openmldb_obs::Registry) and cache the handle in a
//! `OnceLock`; the request hot path costs a handful of sharded relaxed
//! atomics per request.

use openmldb_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::{Arc, OnceLock};

fn counter(cell: &'static OnceLock<Arc<Counter>>, name: &str, help: &str) -> &'static Counter {
    cell.get_or_init(|| Registry::global().counter(name, help))
}

/// Requests executed through `execute_request`.
pub fn requests() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_requests_total",
        "Request-mode executions through the online engine",
    )
}

/// End-to-end request latency distribution.
pub fn request_duration() -> &'static Histogram {
    static M: OnceLock<Arc<Histogram>> = OnceLock::new();
    M.get_or_init(|| {
        let h = Registry::global().histogram(
            "openmldb_online_request_duration_ns",
            "End-to-end online request latency",
        );
        // Buckets at or above the slow-query threshold keep the most recent
        // offending request's trace id + stage breakdown as an exemplar.
        h.enable_exemplars(openmldb_obs::flight::slow_query_threshold_ns());
        h
    })
}

/// Windows served by the pre-aggregation fast path.
pub fn preagg_hits() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_preagg_hits_total",
        "Windows served by the pre-aggregation fast path",
    )
}

/// Windows that had a pre-aggregator attached but fell back to a raw scan
/// (frame shape or window attributes made the fast path inapplicable).
pub fn preagg_skips() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_preagg_skips_total",
        "Windows with a pre-aggregator that still took the raw scan path",
    )
}

/// Pre-aggregated buckets merged into answers.
pub fn preagg_bucket_hits() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_preagg_bucket_hits_total",
        "Pre-aggregated buckets merged into window answers",
    )
}

/// Transient-fault retries performed by the resilient request path.
pub fn retries() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_retries_total",
        "Transient storage faults absorbed by request-path retries",
    )
}

/// Reads that failed over from the primary table to its replica.
pub fn failovers() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_failovers_total",
        "Reads failed over from a faulting primary to a replica",
    )
}

/// Requests answered from pre-agg buckets alone after budget exhaustion.
pub fn degraded() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_degraded_total",
        "Windows answered buckets-only after the deadline budget ran out",
    )
}

/// Requests that surfaced a typed deadline timeout.
pub fn timeouts() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_timeouts_total",
        "Requests that exceeded their deadline budget",
    )
}

/// Tuples pushed through window-union workers.
pub fn union_tuples() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_online_union_tuples_total",
        "Tuples routed through self-adjusting window-union workers",
    )
}

/// Worker imbalance of the most recently flushed window union
/// (max load / mean load; 1.0 is perfectly balanced).
pub fn union_imbalance() -> &'static Gauge {
    static M: OnceLock<Arc<Gauge>> = OnceLock::new();
    M.get_or_init(|| {
        Registry::global().gauge(
            "openmldb_online_union_imbalance_ratio",
            "Window-union worker imbalance (max/mean tuple load)",
        )
    })
}

/// Per-worker tuple load of the most recently flushed window union.
pub fn union_worker_load(worker: usize) -> Arc<Gauge> {
    Registry::global().gauge(
        &format!("openmldb_online_union_worker_load_rows{{worker=\"{worker}\"}}"),
        "Tuples processed per window-union worker",
    )
}
