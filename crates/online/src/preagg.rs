//! Long-window pre-aggregation (paper Section 5.1, Figure 4).
//!
//! For windows spanning huge time ranges (years of data, hotspot keys), the
//! online engine must not scan every raw tuple per request. Instead:
//!
//! * **Aggregator initialization** — a [`PreAggregator`] maintains one or
//!   more *levels* of time buckets (e.g. hourly → daily → monthly), each
//!   holding mergeable partial states per key.
//! * **Aggregator update** — updates arrive through the table's binlog
//!   (monotone offsets, asynchronous closures — Section 5.1's
//!   `replicator->AppendEntry(entry, &closure)` design), decoupling
//!   maintenance from the insertion fast path.
//! * **Query refinement** — a request window is covered greedily from the
//!   coarsest level down: fully-contained buckets contribute partial states;
//!   the uncovered edges fall back to raw-row scans (the paper's
//!   `agg1/agg5` edges in Figure 4).
//!
//! Only decomposable aggregates are eligible (`supports_preagg`); a query
//! frequency tracker per level records usage so the hierarchy can be
//! adapted (levels that are rarely useful can be dropped).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use openmldb_exec::agg::{create_aggregator, Aggregator};
use openmldb_exec::evaluate;
use openmldb_sql::plan::{BoundAggregate, BoundWindow};
use openmldb_types::{CompactCodec, Error, KeyValue, Result, Row, RowCodec, Value};

use openmldb_storage::Replicator;

/// One bucket: a partial aggregator per aggregate spec.
struct Bucket {
    aggs: Vec<Box<dyn Aggregator>>,
}

/// One granularity level.
struct Level {
    bucket_ms: i64,
    /// key → bucket start → partial states.
    buckets: RwLock<HashMap<Vec<KeyValue>, BTreeMap<i64, Bucket>>>,
    /// Buckets consumed by queries (hierarchy adaptation signal).
    hits: AtomicU64,
}

/// Pre-aggregation maintainer for one deployed window.
pub struct PreAggregator {
    specs: Vec<BoundAggregate>,
    partition_cols: Vec<usize>,
    order_col: usize,
    /// Ascending bucket sizes (finest first).
    levels: Vec<Level>,
    /// Raw rows scanned on query edges (the cost pre-aggregation saves).
    raw_rows_scanned: AtomicU64,
    queries: AtomicU64,
}

impl PreAggregator {
    /// Build for `window` with the given bucket sizes (ms). Fails if any
    /// aggregate is not decomposable.
    pub fn new(
        window: &BoundWindow,
        aggs: &[BoundAggregate],
        mut bucket_sizes_ms: Vec<i64>,
    ) -> Result<Arc<Self>> {
        if bucket_sizes_ms.is_empty() {
            return Err(Error::Plan(
                "pre-aggregation needs at least one level".into(),
            ));
        }
        for a in aggs {
            if !openmldb_exec::supports_preagg(a.func) {
                return Err(Error::Plan(format!(
                    "aggregate `{}` is order-dependent and cannot be pre-aggregated",
                    a.func.name
                )));
            }
        }
        bucket_sizes_ms.sort_unstable();
        bucket_sizes_ms.dedup();
        Ok(Arc::new(PreAggregator {
            specs: aggs.to_vec(),
            partition_cols: window.partition_cols.clone(),
            order_col: window.order_col,
            levels: bucket_sizes_ms
                .into_iter()
                .map(|bucket_ms| Level {
                    bucket_ms: bucket_ms.max(1),
                    buckets: RwLock::new(HashMap::new()),
                    hits: AtomicU64::new(0),
                })
                .collect(),
            raw_rows_scanned: AtomicU64::new(0),
            queries: AtomicU64::new(0),
        }))
    }

    /// Subscribe this pre-aggregator to a table's binlog: every row appended
    /// from now on is decoded with `codec` and folded into the bucket
    /// hierarchy asynchronously (the `update_aggr` closure of Section 5.1).
    pub fn attach(self: &Arc<Self>, replicator: &Replicator, codec: CompactCodec) {
        replicator.subscribe(self.update_closure(codec));
    }

    /// [`PreAggregator::attach`] plus exactly-once catch-up over the rows
    /// already in the binlog — the deploy-time bootstrap: existing history
    /// is folded in synchronously, then maintenance continues via the
    /// asynchronous channel with no gap and no double counting.
    pub fn attach_with_catchup(self: &Arc<Self>, replicator: &Replicator, codec: CompactCodec) {
        replicator.subscribe_with_catchup(self.update_closure(codec));
    }

    fn update_closure(self: &Arc<Self>, codec: CompactCodec) -> openmldb_storage::UpdateClosure {
        let this = self.clone();
        Arc::new(move |entry| {
            if let Ok(row) = codec.decode(&entry.data) {
                // A decode failure would mean schema drift mid-stream; rows
                // are validated on put, so ignore is safe here.
                let _ = this.ingest(&row);
            }
        })
    }

    /// Fold one row into every level's bucket.
    pub fn ingest(&self, row: &Row) -> Result<()> {
        let key = row.key_for(&self.partition_cols);
        let ts = row.ts_at(self.order_col);
        for level in &self.levels {
            let start = ts.div_euclid(level.bucket_ms) * level.bucket_ms;
            let mut buckets = level.buckets.write();
            let per_key = buckets.entry(key.clone()).or_default();
            let bucket = match per_key.entry(start) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(e) => {
                    let aggs = self
                        .specs
                        .iter()
                        .map(|s| create_aggregator(s.func, &s.args))
                        .collect::<Result<Vec<_>>>()?;
                    e.insert(Bucket { aggs })
                }
            };
            for (agg, spec) in bucket.aggs.iter_mut().zip(&self.specs) {
                let mut vals = Vec::with_capacity(spec.args.len());
                for a in &spec.args {
                    vals.push(evaluate(a, row.values(), &[])?);
                }
                agg.update(&vals)?;
            }
        }
        Ok(())
    }

    /// Answer the window `[lower_ts, upper_ts]` for `key`: merge bucket
    /// states for fully-covered spans and call `raw_fetch(lo, hi)` for the
    /// uncovered edges. Returns one value per aggregate spec.
    pub fn query(
        &self,
        key: &[KeyValue],
        lower_ts: i64,
        upper_ts: i64,
        raw_fetch: impl FnMut(i64, i64) -> Result<Vec<Row>>,
    ) -> Result<Vec<Value>> {
        self.query_with_extra_row(key, lower_ts, upper_ts, None, raw_fetch)
    }

    /// [`PreAggregator::query`] plus one in-flight row (the request tuple in
    /// online request mode, which is virtually inserted but not yet stored).
    pub fn query_with_extra_row(
        &self,
        key: &[KeyValue],
        lower_ts: i64,
        upper_ts: i64,
        extra_row: Option<&Row>,
        mut raw_fetch: impl FnMut(i64, i64) -> Result<Vec<Row>>,
    ) -> Result<Vec<Value>> {
        // Chaos hook: a fault here models a lost/slow bucket-store lookup;
        // the engine retries and, if it persists, takes the raw scan path.
        openmldb_chaos::inject(openmldb_chaos::InjectionPoint::PreaggLookup)?;
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut outputs = self
            .specs
            .iter()
            .map(|s| create_aggregator(s.func, &s.args))
            .collect::<Result<Vec<_>>>()?;

        // Cover segments coarsest-level-first.
        let mut segments = vec![(lower_ts, upper_ts)];
        for level in self.levels.iter().rev() {
            let mut next_segments = Vec::new();
            let buckets = level.buckets.read();
            let per_key = buckets.get(&key.to_vec());
            for (lo, hi) in segments {
                if lo > hi {
                    continue;
                }
                // First aligned bucket fully inside [lo, hi].
                let first = lo.div_euclid(level.bucket_ms) * level.bucket_ms;
                let first = if first < lo {
                    first + level.bucket_ms
                } else {
                    first
                };
                let mut covered_any = false;
                let mut cursor = first;
                while cursor + level.bucket_ms - 1 <= hi {
                    if let Some(bucket) = per_key.and_then(|m| m.get(&cursor)) {
                        for (out, src) in outputs.iter_mut().zip(&bucket.aggs) {
                            if let Some(state) = src.partial_state() {
                                out.merge_state(&state)?;
                            }
                        }
                        level.hits.fetch_add(1, Ordering::Relaxed);
                        crate::metrics::preagg_bucket_hits().inc();
                    }
                    // Empty buckets contribute nothing but still count as
                    // covered — there is no raw data there either.
                    covered_any = true;
                    cursor += level.bucket_ms;
                }
                if covered_any {
                    if lo < first {
                        next_segments.push((lo, first - 1));
                    }
                    if cursor <= hi {
                        next_segments.push((cursor, hi));
                    }
                } else {
                    next_segments.push((lo, hi));
                }
            }
            segments = next_segments;
        }

        // Raw edges.
        for (lo, hi) in segments {
            if lo > hi {
                continue;
            }
            let rows = raw_fetch(lo, hi)?;
            self.raw_rows_scanned
                .fetch_add(rows.len() as u64, Ordering::Relaxed);
            for row in rows {
                for (out, spec) in outputs.iter_mut().zip(&self.specs) {
                    let mut vals = Vec::with_capacity(spec.args.len());
                    for a in &spec.args {
                        vals.push(evaluate(a, row.values(), &[])?);
                    }
                    out.update(&vals)?;
                }
            }
        }

        // Fold the in-flight row in last (aggregates here are order-free).
        if let Some(row) = extra_row {
            let ts = row.ts_at(self.order_col);
            if (lower_ts..=upper_ts).contains(&ts) {
                for (out, spec) in outputs.iter_mut().zip(&self.specs) {
                    let mut vals = Vec::with_capacity(spec.args.len());
                    for a in &spec.args {
                        vals.push(evaluate(a, row.values(), &[])?);
                    }
                    out.update(&vals)?;
                }
            }
        }

        Ok(outputs.iter().map(|a| a.output()).collect())
    }

    /// Raw rows scanned across all queries (lower is better).
    pub fn raw_rows_scanned(&self) -> u64 {
        self.raw_rows_scanned.load(Ordering::Relaxed)
    }

    /// Bucket hits per level (finest first) — the adaptation signal.
    pub fn level_hits(&self) -> Vec<u64> {
        self.levels
            .iter()
            .map(|l| l.hits.load(Ordering::Relaxed))
            .collect()
    }

    /// Queries served.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Suggest levels to drop: any level whose buckets were hit in fewer
    /// than `min_share` of bucket hits overall (hierarchy adaptation,
    /// Section 5.1's "remove aggregation levels" knob).
    pub fn underused_levels(&self, min_share: f64) -> Vec<i64> {
        let hits = self.level_hits();
        let total: u64 = hits.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        self.levels
            .iter()
            .zip(&hits)
            .filter(|(_, &h)| (h as f64) / (total as f64) < min_share)
            .map(|(l, _)| l.bucket_ms)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_sql::functions::lookup;
    use openmldb_sql::plan::PhysExpr;
    use openmldb_sql::Frame;
    use openmldb_types::DataType;

    fn window() -> BoundWindow {
        BoundWindow {
            name: "w".into(),
            merged_names: vec!["w".into()],
            partition_cols: vec![0],
            order_col: 2,
            order_desc: false,
            frame: Frame::RowsRange {
                preceding_ms: 1_000_000,
            },
            maxsize: None,
            exclude_current_row: false,
            instance_not_in_window: false,
            union_tables: vec![],
        }
    }

    fn aggs() -> Vec<BoundAggregate> {
        vec![
            BoundAggregate {
                window_id: 0,
                func: lookup("sum").unwrap(),
                args: vec![PhysExpr::Column(1)],
                output_type: DataType::Bigint,
            },
            BoundAggregate {
                window_id: 0,
                func: lookup("count").unwrap(),
                args: vec![PhysExpr::Column(1)],
                output_type: DataType::Bigint,
            },
        ]
    }

    fn row(key: i64, v: i64, ts: i64) -> Row {
        Row::new(vec![
            Value::Bigint(key),
            Value::Bigint(v),
            Value::Timestamp(ts),
        ])
    }

    #[test]
    fn rejects_order_dependent_aggregates() {
        let bad = vec![BoundAggregate {
            window_id: 0,
            func: lookup("drawdown").unwrap(),
            args: vec![PhysExpr::Column(1)],
            output_type: DataType::Double,
        }];
        assert!(PreAggregator::new(&window(), &bad, vec![100]).is_err());
        assert!(PreAggregator::new(&window(), &aggs(), vec![]).is_err());
    }

    #[test]
    fn buckets_answer_interior_and_edges_fetch_raw() {
        let p = PreAggregator::new(&window(), &aggs(), vec![100]).unwrap();
        // 10 rows at ts 0..900 step 100, value = ts.
        let all: Vec<Row> = (0..10).map(|i| row(1, i * 100, i * 100)).collect();
        for r in &all {
            p.ingest(r).unwrap();
        }
        // Window [50, 820]: buckets 100..800 fully covered; edges [50,99] and
        // [800,820].
        let raw_calls = std::cell::RefCell::new(Vec::new());
        let out = p
            .query(&[KeyValue::Int(1)], 50, 820, |lo, hi| {
                raw_calls.borrow_mut().push((lo, hi));
                Ok(all
                    .iter()
                    .filter(|r| (lo..=hi).contains(&r.ts_at(2)))
                    .cloned()
                    .collect())
            })
            .unwrap();
        // Expected: values at ts 100..800 step 100 → sum = 3600, count 8.
        assert_eq!(out[0], Value::Bigint(3_600));
        assert_eq!(out[1], Value::Bigint(8));
        let calls = raw_calls.borrow();
        assert_eq!(calls.as_slice(), &[(50, 99), (800, 820)]);
        assert_eq!(
            p.raw_rows_scanned(),
            1,
            "only the ts=800 row came from raw data"
        );
    }

    #[test]
    fn multi_level_prefers_coarse_buckets() {
        let p = PreAggregator::new(&window(), &aggs(), vec![10, 100]).unwrap();
        for i in 0..100 {
            p.ingest(&row(1, 1, i * 10)).unwrap(); // ts 0..990
        }
        let out = p
            .query(&[KeyValue::Int(1)], 0, 999, |_lo, _hi| Ok(vec![]))
            .unwrap();
        assert_eq!(out[1], Value::Bigint(100));
        let hits = p.level_hits();
        // Coarse level (100ms) covers [0,999] in 10 buckets; fine level unused.
        assert_eq!(hits[1], 10);
        assert_eq!(hits[0], 0);
        assert_eq!(
            p.underused_levels(0.05),
            vec![10],
            "fine level is dead weight"
        );
    }

    #[test]
    fn async_binlog_attachment_updates_buckets() {
        use openmldb_storage::{IndexSpec, MemTable, Ttl};
        use openmldb_types::Schema;
        let schema = Schema::from_pairs(&[
            ("k", DataType::Bigint),
            ("v", DataType::Bigint),
            ("ts", DataType::Timestamp),
        ])
        .unwrap();
        let table = MemTable::new(
            "t",
            schema.clone(),
            vec![IndexSpec {
                name: "i".into(),
                key_cols: vec![0],
                ts_col: Some(2),
                ttl: Ttl::Unlimited,
            }],
        )
        .unwrap();
        let p = PreAggregator::new(&window(), &aggs(), vec![100]).unwrap();
        p.attach(table.replicator(), CompactCodec::new(schema));
        for i in 0..10 {
            table.put(&row(1, 1, i * 100)).unwrap();
        }
        table.replicator().flush(); // wait for async application
        let out = p
            .query(&[KeyValue::Int(1)], 0, 999, |_l, _h| Ok(vec![]))
            .unwrap();
        assert_eq!(out[1], Value::Bigint(10));
    }

    #[test]
    fn per_key_isolation() {
        let p = PreAggregator::new(&window(), &aggs(), vec![100]).unwrap();
        p.ingest(&row(1, 5, 100)).unwrap();
        p.ingest(&row(2, 7, 100)).unwrap();
        let out1 = p
            .query(&[KeyValue::Int(1)], 0, 999, |_l, _h| Ok(vec![]))
            .unwrap();
        let out2 = p
            .query(&[KeyValue::Int(2)], 0, 999, |_l, _h| Ok(vec![]))
            .unwrap();
        assert_eq!(out1[0], Value::Bigint(5));
        assert_eq!(out2[0], Value::Bigint(7));
    }
}
