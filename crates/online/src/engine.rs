//! Online request-mode execution (paper Section 3.2, mode 3).
//!
//! Each incoming request tuple is *virtually inserted* into its table: the
//! deployed plan runs against the stored stream with the request row as the
//! window anchor, and exactly one feature row comes back. The fast paths:
//!
//! * window scans read the pre-ranked two-level skiplist (Section 7.2) —
//!   no sorting at request time;
//! * LAST JOINs are head reads on the join key's time list;
//! * long windows route through the pre-aggregation hierarchy when one is
//!   deployed (Section 5.1).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use openmldb_exec::{
    evaluate, EntryOrder, Program, RequestScratch, ScanEntry, WindowAggSet, REQUEST_ROW,
};
use openmldb_obs::trace as obs;
use openmldb_obs::{
    flight, CostProfile, FlightEventKind, FlightScope, FlightSummary, LabelId, LabelRegistry,
    Outcome, ProfileScope, ProfileStore, Recorder, SpaceSaving,
};
use openmldb_sql::ast::Frame;
use openmldb_sql::plan::{BoundAggregate, BoundWindow, CompiledQuery};
use openmldb_types::{CompactCodec, Error, KeyValue, Result, Row, Value};

use openmldb_storage::{DataTable, MemTable};

use crate::preagg::PreAggregator;
use crate::resilience::{resilient_read, retry_transient, Ctx, RequestOptions, RequestOutput};

/// Resolves table names to live storage (either backend, Section 8.1).
/// Implemented by the database facade.
pub trait TableProvider: Send + Sync {
    fn table(&self, name: &str) -> Option<Arc<dyn DataTable>>;

    /// A caught-up replica to read from when the primary keeps faulting
    /// (the ZooKeeper-failover stand-in of Section 3.1). `None` means no
    /// replica is deployed and persistent faults surface to the caller.
    fn fallback_table(&self, name: &str) -> Option<Arc<dyn DataTable>> {
        let _ = name;
        None
    }
}

/// A trivial provider over a map (used by tests and examples).
#[derive(Default)]
pub struct MapProvider {
    tables: HashMap<String, Arc<dyn DataTable>>,
}

impl MapProvider {
    pub fn insert(&mut self, table: Arc<MemTable>) {
        self.tables
            .insert(DataTable::name(&*table).to_string(), table);
    }

    pub fn insert_dyn(&mut self, table: Arc<dyn DataTable>) {
        self.tables.insert(table.name().to_string(), table);
    }
}

impl TableProvider for MapProvider {
    fn table(&self, name: &str) -> Option<Arc<dyn DataTable>> {
        self.tables.get(name).cloned()
    }
}

/// A deployed feature script: the compiled plan plus per-window
/// pre-aggregators (None = scan path).
///
/// Request-invariant plan state — the window → aggregate mapping, the join
/// key columns, and the base-schema codec — is hoisted here at deployment
/// time so the per-request path never rebuilds it.
pub struct Deployment {
    pub name: String,
    pub query: Arc<CompiledQuery>,
    pub preaggs: Vec<Option<Arc<PreAggregator>>>,
    /// Per window: which base-schema columns its aggregates read. Window
    /// scans decode only these (the Section 7.1 offset fast path).
    window_projections: Vec<Vec<bool>>,
    /// Aggregate indices per window (`aggregates_by_window`, hoisted).
    by_window: Vec<Vec<usize>>,
    /// Right-side join key columns per join, hoisted.
    join_right_keys: Vec<Vec<usize>>,
    /// Base-schema codec: the streaming scan reads stored rows in place
    /// through [`RowView`](openmldb_types::RowView) instead of decoding.
    /// `pub(crate)` so the consistency sentinel can re-encode request rows
    /// into its pooled capture buffers.
    pub(crate) codec: CompactCodec,
    /// Every table this deployment reads (base + joins + window unions),
    /// deduped — the sentinel hashes these tables' replication offsets into
    /// a version signature to detect writes racing an audit replay.
    read_tables: Vec<String>,
    /// The deploy-time specialized bytecode program — monomorphized window
    /// kernels plus flattened select/WHERE expressions. Shared across
    /// deployments of the same cached plan; windows it declined stay on the
    /// interpreted path.
    program: Arc<Program>,
    /// Warm [`RequestScratch`] buffers — steady-state requests pop one,
    /// serve allocation-free, and push it back.
    scratch_pool: Mutex<Vec<RequestScratch>>,
    /// Slot in the process-wide deployment label registry, resolved once at
    /// deployment time. All per-deployment attribution (labeled counters,
    /// the profile store) keys off this fixed-cardinality id; deployments
    /// past the slot budget share the `__other` slot.
    label: LabelId,
}

impl Deployment {
    pub fn new(name: impl Into<String>, query: Arc<CompiledQuery>) -> Self {
        let name = name.into();
        let label = LabelRegistry::deployments().resolve(&name);
        let preaggs = (0..query.windows.len()).map(|_| None).collect();
        let mut window_projections =
            vec![vec![false; query.base_schema.len()]; query.windows.len()];
        for agg in &query.aggregates {
            let mut cols = Vec::new();
            for arg in &agg.args {
                arg.collect_columns(&mut cols);
            }
            for c in cols {
                if let Some(slot) = window_projections[agg.window_id].get_mut(c) {
                    *slot = true;
                }
            }
        }
        let by_window = query.aggregates_by_window();
        let join_right_keys = query
            .joins
            .iter()
            .map(|j| j.eq_pairs.iter().map(|&(_, r)| r).collect())
            .collect();
        let codec = CompactCodec::new(query.base_schema.clone());
        let program = openmldb_exec::specialize(&query);
        let mut read_tables = vec![query.base_table.clone()];
        for join in &query.joins {
            read_tables.push(join.table.clone());
        }
        for window in &query.windows {
            read_tables.extend(window.union_tables.iter().cloned());
        }
        read_tables.sort();
        read_tables.dedup();
        Deployment {
            name,
            query,
            preaggs,
            window_projections,
            by_window,
            join_right_keys,
            codec,
            read_tables,
            program,
            scratch_pool: Mutex::new(Vec::new()),
            label,
        }
    }

    /// The specialized bytecode program this deployment executes with.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Force every window and expression onto the interpreted path
    /// (benchmarks and differential tests — the interpreted route is the
    /// compiled path's correctness oracle and must stay reachable even for
    /// plans that specialize).
    pub fn with_interpreted_windows(mut self) -> Self {
        self.program = Arc::new(Program::interpreted_only(self.query.windows.len()));
        self
    }

    /// This deployment's slot in the global label registry (the key under
    /// which its workload attribution accumulates).
    pub fn label(&self) -> LabelId {
        self.label
    }

    /// Every table this deployment reads, sorted and deduped (base table,
    /// join tables, window union tables).
    pub fn read_tables(&self) -> &[String] {
        &self.read_tables
    }

    pub fn with_preagg(mut self, window_id: usize, preagg: Arc<PreAggregator>) -> Self {
        self.preaggs[window_id] = Some(preagg);
        self
    }

    fn take_scratch(&self) -> RequestScratch {
        self.scratch_pool
            .lock()
            .map(|mut pool| pool.pop().unwrap_or_default())
            .unwrap_or_default()
    }

    fn put_scratch(&self, scratch: RequestScratch) {
        if let Ok(mut pool) = self.scratch_pool.lock() {
            pool.push(scratch);
        }
    }
}

/// Execute one request tuple through a deployment, producing one feature
/// row (online request mode).
///
/// Each call is a request scope for the span tracer and records into the
/// `openmldb_online_requests_total` / `openmldb_online_request_duration_ns`
/// metrics. Runs with [`RequestOptions::default()`]: no deadline, default
/// transient-fault retries — see [`execute_request_with`] for budgeted
/// serving.
pub fn execute_request(
    provider: &dyn TableProvider,
    dep: &Deployment,
    request: &Row,
) -> Result<Row> {
    execute_request_with(provider, dep, request, &RequestOptions::default()).map(|out| out.row)
}

/// [`execute_request`] with explicit resilience options: a [`Deadline`]
/// budget checked at every pipeline stage (`Error::Timeout` instead of a
/// hang), bounded retry-with-backoff on transient storage faults, read
/// failover to [`TableProvider::fallback_table`], and — when the budget
/// runs out on a pre-aggregated window and `allow_degraded` is set — a
/// buckets-only answer flagged `degraded`.
///
/// [`Deadline`]: openmldb_types::Deadline
pub fn execute_request_with(
    provider: &dyn TableProvider,
    dep: &Deployment,
    request: &Row,
    opts: &RequestOptions,
) -> Result<RequestOutput> {
    let mut scratch = dep.take_scratch();
    scratch.reset();
    // Consistency sentinel: 1-in-N sampling decision, taken before the
    // pipeline runs so the scan pass can fold per-window input digests.
    // HOT: unsampled requests pay one atomic fetch_add and a branch.
    let audit_sig = crate::sentinel::should_sample().then(|| {
        scratch.audit.arm();
        crate::sentinel::version_signature(provider, dep)
    });
    // The recorder moves out of the scratch for the duration of the scope so
    // the pipeline below can borrow the scratch mutably. `Recorder` is a
    // pooled `Option<Box<_>>`; the take/put pair moves a pointer, it does
    // not allocate.
    let mut flight = std::mem::take(&mut scratch.flight);
    let scope = FlightScope::enter(&mut flight);
    let pscope = ProfileScope::enter();
    let t0 = std::time::Instant::now();
    let ctx = Ctx::new(opts);
    let out = obs::with_request_trace(|| {
        let r = execute_streaming(provider, dep, request, &ctx, &mut scratch);
        crate::metrics::requests().inc();
        r
    });
    let summary = scope.finish();
    // Attribution runs before the latency capture below so its cost —
    // including first-request lazy init of the labeled metrics, the profile
    // store and the heavy-hitter sketches — lands inside the recorded
    // latency rather than as invisible post-measurement time (the
    // obs-vs-harness divergence gate compares the two).
    if let Some(mut prof) = pscope.finish() {
        prof.stage_ns = summary.stage_self_ns;
        prof.total_ns = t0.elapsed().as_nanos() as u64;
        prof.retries = u64::from(ctx.retries());
        prof.failovers = u64::from(ctx.failovers());
        prof.degraded = u64::from(ctx.degraded());
        prof.scratch_high_water_bytes = scratch.arena.capacity() as u64;
        attribute_request(dep, &prof);
        // Heavy-hitter partition keys: render `dep:key` into the pooled
        // scratch string so the offer allocates nothing on the warm path.
        if openmldb_obs::enabled() && !scratch.key.is_empty() {
            use std::fmt::Write as _;
            scratch.key_repr.clear();
            let _ = write!(scratch.key_repr, "{}:{:?}", dep.name, scratch.key);
            SpaceSaving::hot_keys().offer(&scratch.key_repr);
        }
        scratch.profile = prof;
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    crate::metrics::request_duration().record_with_exemplar(
        elapsed_ns,
        summary.trace_id,
        &summary.stage_self_ns,
    );
    let result = match out {
        Ok(row) => Ok(RequestOutput {
            row,
            degraded: ctx.degraded(),
            retries: ctx.retries(),
            failovers: ctx.failovers(),
            trace_id: summary.trace_id,
        }),
        Err(e) => {
            if matches!(e, Error::Timeout { .. }) {
                crate::metrics::timeouts().inc();
            }
            Err(e)
        }
    };
    maybe_dump_post_mortem(&flight, &summary, &result);
    if let Some(pre_sig) = audit_sig {
        crate::sentinel::capture(provider, dep, request, &scratch, &result, pre_sig);
    }
    scratch.flight = flight;
    dep.put_scratch(scratch);
    result
}

/// Fold one finished request's cost profile into every per-deployment
/// surface at once: the exact global counters, the labeled per-deployment
/// series (both fed from the same [`CostProfile`], so per-deployment sums —
/// `__other` included — reconcile exactly with the globals), the labeled
/// latency histogram, the heavy-hitter sketch, and the profile store the
/// EXPLAIN ANALYZE render reads.
fn attribute_request(dep: &Deployment, prof: &CostProfile) {
    use crate::metrics as m;
    let staged = prof.stage_sum_ns();
    m::scan_rows().add(prof.rows_scanned);
    m::request_time_ns().add(prof.total_ns);
    m::stage_time_ns().add(staged);
    let label = dep.label;
    m::deployment_requests().inc(label);
    m::deployment_scan_rows().add(label, prof.rows_scanned);
    m::deployment_stage_time_ns().add(label, staged);
    m::deployment_request_time_ns().add(label, prof.total_ns);
    m::deployment_duration().record(label, prof.total_ns);
    SpaceSaving::hot_deployments().offer(&dep.name);
    ProfileStore::global().fold(label, prof);
}

/// Perturb aggregate outputs in place for the `compiled_kernel` chaos
/// point: numeric values shift by one, booleans flip; nulls and strings
/// stay intact so every downstream encoding still round-trips and the only
/// observable fault is a silently wrong answer — exactly what the
/// consistency sentinel exists to catch.
#[cfg_attr(not(feature = "chaos"), allow(dead_code))]
fn corrupt_values(out: &mut [Value]) {
    for v in out.iter_mut() {
        match v {
            Value::Int(x) => *x = x.wrapping_add(1),
            Value::Bigint(x) => *x = x.wrapping_add(1),
            Value::Timestamp(x) => *x = x.wrapping_add(1),
            Value::Float(x) => *x += 1.0,
            Value::Double(x) => *x += 1.0,
            Value::Bool(b) => *b = !*b,
            Value::Null | Value::Str(_) => {}
        }
    }
}

/// Post-mortem dump decision, taken once per request after the flight scope
/// closes: anomalous outcomes (timeout, error, degraded answer, failover)
/// always dump; clean successes dump only when they crossed the slow-query
/// threshold. The fast path pays one branch and drops the ring in place.
fn maybe_dump_post_mortem(
    flight: &Recorder,
    summary: &FlightSummary,
    result: &Result<RequestOutput>,
) {
    if !summary.active {
        return;
    }
    let outcome = match result {
        Err(Error::Timeout { .. }) => Some(Outcome::Timeout),
        Err(_) => Some(Outcome::Failed),
        Ok(o) if o.degraded => Some(Outcome::Degraded),
        Ok(o) if o.failovers > 0 => Some(Outcome::Failover),
        Ok(_) if summary.total_ns >= flight::slow_query_threshold_ns() => Some(Outcome::Slow),
        Ok(_) => None,
    };
    if let Some(outcome) = outcome {
        if let Some(pm) = flight.post_mortem(outcome, summary) {
            flight::publish(pm);
        }
    }
}

// HOT: the steady-state request path — every buffer comes from `scratch`
// and is reused across requests; a warm request must not allocate before
// the final output row. `pub(crate)` so the consistency sentinel can replay
// captured requests through the interpreted oracle without re-entering the
// metric-recording wrapper.
pub(crate) fn execute_streaming(
    provider: &dyn TableProvider,
    dep: &Deployment,
    request: &Row,
    ctx: &Ctx,
    scratch: &mut RequestScratch,
) -> Result<Row> {
    let q = &dep.query;
    ctx.check("validate")?;
    q.base_schema.validate_row(request.values())?;

    let RequestScratch {
        combined,
        probe,
        agg_values,
        key,
        arena,
        entries,
        out,
        windows,
        compiled,
        vm_stack,
        // The recorder was moved out by `execute_request_with` before this
        // borrow; the field is empty here.
        flight: _,
        // Written by `execute_request_with` after the scopes close.
        profile: _,
        key_repr: _,
        audit,
    } = scratch;

    // 1. LAST JOINs: build the combined row in the warm scratch buffer.
    combined.extend_from_slice(request.values());
    obs::span(obs::Stage::StorageSeek, || -> Result<()> {
        for (ji, join) in q.joins.iter().enumerate() {
            key.clear();
            for &(l, _) in &join.eq_pairs {
                key.push(KeyValue::from(&combined[l]));
            }
            let matched = resilient_read(ctx, provider, &join.table, |table| {
                let index = table
                    .find_index(&dep.join_right_keys[ji], join.order_col)
                    .ok_or_else(|| {
                        // analysis:allow(hot-path-alloc): cold branch — only
                        // reached when a deployment references a missing index.
                        Error::Storage(format!("no index on `{}` for join keys", join.table))
                    })?;
                match &join.residual {
                    None => table.latest(index, key),
                    Some(pred) => {
                        // One probe buffer per request: truncate back to the
                        // combined prefix and re-extend per candidate instead
                        // of cloning `combined` for every row inspected.
                        probe.clear();
                        probe.extend_from_slice(combined);
                        let base_len = probe.len();
                        let mut check = |row: &Row| {
                            probe.truncate(base_len);
                            probe.extend(row.values().iter().cloned());
                            evaluate(pred, probe, &[])
                                .and_then(|v| v.as_bool())
                                .unwrap_or(false)
                        };
                        table.latest_where(index, key, None, &mut check)
                    }
                }
            })?;
            match matched {
                Some(row) => combined.extend(row.values().iter().cloned()),
                None => combined.extend((0..join.schema.len()).map(|_| Value::Null)),
            }
        }
        Ok(())
    })?;

    // 2. WHERE filter (a request failing the predicate yields an all-NULL
    // feature row rather than an error). Compiled plans run the flattened
    // register-machine program over the pooled stack; uncompiled predicates
    // take the interpreted tree walk.
    if let Some(pred) = &q.where_clause {
        let pass = match dep.program.where_program() {
            Some(p) => p.eval(combined, &[], vm_stack)?.as_bool()?,
            None => evaluate(pred, combined, &[])?.as_bool()?,
        };
        if !pass {
            // analysis:allow(hot-path-alloc): this *is* the final output
            // row — the one allocation the zero-alloc contract permits.
            let nulls = vec![Value::Null; q.output_schema.len()];
            return Ok(Row::new(nulls));
        }
    }

    // 3. Windows: compute every aggregate in one streaming pass per window.
    agg_values.resize(q.aggregates.len(), Value::Null);
    if windows.len() < q.windows.len() {
        windows.resize_with(q.windows.len(), || None);
    }
    for (wid, window) in q.windows.iter().enumerate() {
        if dep.by_window[wid].is_empty() {
            continue;
        }
        // After an earlier window degraded, `ctx.check` is lenient so the
        // request can still finish — but later windows must not start an
        // unbudgeted full scan. Send them straight to their own degraded
        // path (or a plain Timeout if they have no pre-aggregation).
        let full = if ctx.degraded() && ctx.deadline_expired() {
            Err(Error::Timeout {
                stage: "window_dispatch",
                budget_ms: ctx.opts.deadline.budget_ms(),
            })
        } else {
            obs::span(obs::Stage::WindowDispatch, || -> Result<()> {
                ctx.check("window_dispatch")?;
                let anchor_ts = request.ts_at(window.order_col);

                // Pre-aggregation fast path: only for pure range frames, and not
                // for INSTANCE_NOT_IN_WINDOW (buckets mix base and union rows and
                // cannot exclude the base table per query).
                if let (Some(preagg), Frame::RowsRange { preceding_ms }, false) = (
                    &dep.preaggs[wid],
                    window.frame,
                    window.instance_not_in_window,
                ) {
                    key.clear();
                    for &c in &window.partition_cols {
                        key.push(KeyValue::from(&request.values()[c]));
                    }
                    let lower = anchor_ts - preceding_ms;
                    // The request row is part of the window unless excluded — it
                    // is not yet in storage, so it is folded in after the bucket
                    // merge.
                    let include_request = !window.exclude_current_row;
                    let extra = include_request.then_some(request);
                    let outs = obs::span(obs::Stage::Aggregate, || {
                        retry_transient(ctx, || {
                            preagg.query_with_extra_row(key, lower, anchor_ts, extra, |lo, hi| {
                                raw_window_rows(provider, q, window, key, lo, hi, ctx)
                            })
                        })
                    });
                    match outs {
                        Ok(outs) => {
                            crate::metrics::preagg_hits().inc();
                            openmldb_obs::profile::record_preagg_hit();
                            flight::event(FlightEventKind::PreaggHit, wid as u32, 0);
                            for (slot, v) in dep.by_window[wid].iter().zip(outs) {
                                agg_values[*slot] = v;
                            }
                            return Ok(());
                        }
                        // The lookup itself kept faulting past its retry
                        // budget: fall through to the raw scan, which reads
                        // through the full resilience ladder.
                        Err(e) if e.is_transient() => {
                            crate::metrics::preagg_skips().inc();
                            openmldb_obs::profile::record_preagg_skip();
                            flight::event(FlightEventKind::PreaggSkip, wid as u32, 0);
                        }
                        Err(e) => return Err(e),
                    }
                } else if dep.preaggs[wid].is_some() {
                    crate::metrics::preagg_skips().inc();
                    openmldb_obs::profile::record_preagg_skip();
                    flight::event(FlightEventKind::PreaggSkip, wid as u32, 0);
                }

                // Scan path (streaming): copy the window's encoded rows into
                // the scratch arena, sort lightweight entries, then feed
                // borrowed views straight into the aggregates — no per-row
                // `Vec<Value>` materialization.
                key.clear();
                for &c in &window.partition_cols {
                    key.push(KeyValue::from(&request.values()[c]));
                }
                let include_request = !window.exclude_current_row;
                let per_table_limit = match window.frame {
                    // +1 row budget: the request row occupies one slot if
                    // included.
                    Frame::Rows { preceding } => {
                        Some(preceding as usize + usize::from(!include_request))
                    }
                    _ => None,
                };
                let lower = match window.frame {
                    Frame::RowsRange { preceding_ms } => anchor_ts - preceding_ms,
                    _ => i64::MIN,
                };

                arena.clear();
                entries.clear();
                let mut seq = 0usize;
                let mut deadline_hit = false;
                obs::span(obs::Stage::StorageSeek, || -> Result<()> {
                    let base_iter = if window.instance_not_in_window {
                        None
                    } else {
                        Some(q.base_table.as_str())
                    };
                    for name in base_iter
                        .into_iter()
                        .chain(window.union_tables.iter().map(String::as_str))
                    {
                        // Retries re-run this table's scan from the top:
                        // rewind to the checkpoint so a fault mid-scan
                        // cannot duplicate entries.
                        let mark_entries = entries.len();
                        let mark_arena = arena.len();
                        resilient_read(ctx, provider, name, |table| {
                            entries.truncate(mark_entries);
                            arena.truncate(mark_arena);
                            seq = mark_entries;
                            deadline_hit = false;
                            let index = table
                                .find_index(&window.partition_cols, Some(window.order_col))
                                .ok_or_else(|| {
                                    // analysis:allow(hot-path-alloc): cold
                                    // branch — missing-index config error.
                                    Error::Storage(format!("no window index on `{name}`"))
                                })?;
                            let mut scanned = 0u32;
                            table.scan_window(
                                index,
                                key,
                                lower,
                                anchor_ts,
                                per_table_limit,
                                &mut |ts, data| {
                                    // Deadline probe every 64 rows so a long
                                    // scan cannot blow the budget unnoticed.
                                    scanned += 1;
                                    if scanned & 63 == 0
                                        && !ctx.degraded()
                                        && ctx.deadline_expired()
                                    {
                                        deadline_hit = true;
                                        flight::event(FlightEventKind::DeadlineProbe, scanned, 0);
                                        return false;
                                    }
                                    let start = arena.len();
                                    arena.extend_from_slice(data);
                                    entries.push(ScanEntry {
                                        ts,
                                        seq,
                                        start,
                                        len: data.len(),
                                    });
                                    seq += 1;
                                    true
                                },
                            )
                        })?;
                        flight::event(
                            FlightEventKind::ScanRows,
                            wid as u32,
                            (entries.len() - mark_entries) as u64,
                        );
                        if deadline_hit {
                            // Typed timeout, never a partial aggregate.
                            return Err(Error::Timeout {
                                stage: "window_scan",
                                budget_ms: ctx.opts.deadline.budget_ms(),
                            });
                        }
                    }
                    Ok(())
                })?;
                // Every arena byte is decoded through a borrowed view below.
                openmldb_obs::profile::record_bytes(arena.len() as u64);

                // Consistency-sentinel scan digest: fold the pre-sort scan
                // order (deterministic for a fixed table state — retries
                // rewind to a checkpoint, so the content is identical
                // across re-runs) so the audit replay can verify the oracle
                // saw the same window inputs. Preagg-served windows return
                // earlier and leave their slot unset; the auditor skips
                // them.
                // HOT: a single bool test per window when sampling is off.
                if audit.armed() {
                    let mut f = openmldb_obs::Fnv::new();
                    for e in entries.iter() {
                        f.write_u64(e.ts as u64);
                        f.write(e.bytes(arena));
                    }
                    openmldb_obs::ScanDigest::record(audit, wid, openmldb_obs::Fnv::finish(f));
                }

                obs::span(obs::Stage::Aggregate, || -> Result<()> {
                    ctx.check("aggregate")?;
                    let budget_ms = ctx.opts.deadline.budget_ms();

                    // Compiled fast path: deploy-time monomorphized kernels
                    // fold raw encoded bytes — no per-row `Value` dispatch,
                    // and no sort when the scan order is already usable.
                    if let Some(wp) = dep.program.window(wid) {
                        crate::metrics::compiled_windows().inc();
                        flight::event(FlightEventKind::CompiledWindow, wid as u32, 0);
                        let n = entries.len();
                        let total = n + usize::from(include_request);
                        let first = wp.first_in_frame(total);
                        // Storage yields newest-first per table: a strictly
                        // descending scan replays ascending order in reverse
                        // with no sort. Any ts tie or union interleave falls
                        // back to the stable `(ts, seq)` sort.
                        let order = if entries.windows(2).all(|w| w[0].ts > w[1].ts) {
                            EntryOrder::ReversedScan
                        } else {
                            entries.sort_unstable_by_key(|e| (e.ts, e.seq));
                            EntryOrder::Ascending
                        };
                        if compiled.len() < q.windows.len() {
                            compiled.resize_with(q.windows.len(), || None);
                        }
                        if compiled[wid].is_none() {
                            compiled[wid] = Some(wp.new_state());
                        }
                        // analysis:allow(panic-path): slot filled two lines up.
                        let state = compiled[wid].as_mut().expect("state built above");
                        // The request row sorts last (anchor ts, max seq);
                        // it joins the fold only when the frame reaches it.
                        let req = (include_request && first < total).then(|| request.values());
                        let mut probe = || -> Result<()> {
                            if !ctx.degraded() && ctx.deadline_expired() {
                                flight::event(FlightEventKind::DeadlineProbe, 0, 0);
                                return Err(Error::Timeout {
                                    stage: "window_agg",
                                    budget_ms,
                                });
                            }
                            Ok(())
                        };
                        wp.run(
                            state,
                            entries,
                            first.min(n),
                            order,
                            arena,
                            req,
                            &dep.codec,
                            &mut probe,
                        )?;
                        out.clear();
                        wp.outputs_into(state, arena, req, out)?;
                        // Chaos: a kill at `compiled_kernel` models a
                        // miscompiled specialized program — aggregate values
                        // silently perturbed (types and nulls preserved) so
                        // the consistency sentinel has a real fault to catch.
                        if openmldb_chaos::inject_kill(
                            openmldb_chaos::InjectionPoint::CompiledKernel,
                        ) {
                            corrupt_values(out);
                        }
                        for (slot, v) in dep.by_window[wid].iter().zip(out.drain(..)) {
                            agg_values[*slot] = v;
                        }
                        return Ok(());
                    }
                    if dep.program.fallback_reason(wid).is_some() {
                        // Attribute every interpreted serve of a window the
                        // specializer declined.
                        crate::metrics::compiled_fallback().inc();
                        flight::event(FlightEventKind::CompiledFallback, wid as u32, 0);
                    }

                    if include_request {
                        // The request row is already decoded; a sentinel
                        // entry places it in the sort order.
                        entries.push(ScanEntry {
                            ts: anchor_ts,
                            seq,
                            start: 0,
                            len: REQUEST_ROW,
                        });
                    }
                    // `(ts, seq)` reproduces the stable ascending-ts order of
                    // the materializing path: storage yields newest-first per
                    // table with the request row arriving last.
                    entries.sort_unstable_by_key(|e| (e.ts, e.seq));
                    // Newest entries win the per-frame caps; rows they evict
                    // are never decoded.
                    let mut first = 0usize;
                    if let Frame::Rows { preceding } = window.frame {
                        first = entries.len().saturating_sub(preceding as usize + 1);
                    }
                    if let Some(maxsize) = window.maxsize {
                        first = first.max(entries.len().saturating_sub(maxsize));
                    }
                    if windows[wid].is_none() {
                        let refs: Vec<&BoundAggregate> = dep.by_window[wid]
                            .iter()
                            .map(|&i| &q.aggregates[i])
                            .collect();
                        windows[wid] = Some(WindowAggSet::new(&refs)?);
                    }
                    // analysis:allow(panic-path): slot filled two lines up.
                    let set = windows[wid].as_mut().expect("window set built above");
                    let mut fed = 0u32;
                    for e in &entries[first..] {
                        if e.is_request_row() {
                            set.update(request.values())?;
                        } else {
                            let view = dep.codec.view(e.bytes(arena))?;
                            set.update_view(&view)?;
                        }
                        // Mirror the compiled path's every-64-rows deadline
                        // probe so timeout behavior is identical across
                        // paths.
                        fed += 1;
                        if fed & 63 == 0 && !ctx.degraded() && ctx.deadline_expired() {
                            flight::event(FlightEventKind::DeadlineProbe, fed, 0);
                            return Err(Error::Timeout {
                                stage: "window_agg",
                                budget_ms,
                            });
                        }
                    }
                    out.clear();
                    set.outputs_into(out);
                    for (slot, v) in dep.by_window[wid].iter().zip(out.drain(..)) {
                        agg_values[*slot] = v;
                    }
                    Ok(())
                })?;
                Ok(())
            })
        };
        if let Err(e) = full {
            // Degradation tier: the full path ran out of budget, but a
            // pre-aggregated window can still answer from buckets alone —
            // raw edge reads skipped, result flagged `degraded`.
            if ctx.opts.allow_degraded && matches!(e, Error::Timeout { .. }) {
                if let (Some(preagg), Frame::RowsRange { preceding_ms }, false) = (
                    &dep.preaggs[wid],
                    window.frame,
                    window.instance_not_in_window,
                ) {
                    let anchor_ts = request.ts_at(window.order_col);
                    key.clear();
                    for &c in &window.partition_cols {
                        key.push(KeyValue::from(&request.values()[c]));
                    }
                    let lower = anchor_ts - preceding_ms;
                    let extra = (!window.exclude_current_row).then_some(request);
                    let outs =
                        preagg.query_with_extra_row(key, lower, anchor_ts, extra, |_, _| {
                            // analysis:allow(hot-path-alloc): degraded tier only —
                            // runs at most once per timed-out request.
                            Ok(Vec::new())
                        })?;
                    for (slot, v) in dep.by_window[wid].iter().zip(outs) {
                        agg_values[*slot] = v;
                    }
                    ctx.note_degraded();
                    continue;
                }
            }
            return Err(e);
        }
    }

    // 4. Project the select list (the output row is the one owned
    // allocation a warm request makes — `Row` owns its values). Compiled
    // plans run the flattened expression programs over the pooled stack.
    obs::span(obs::Stage::Encode, || -> Result<Row> {
        ctx.check("encode")?;
        let mut projected = Vec::with_capacity(q.select.len());
        match dep.program.select_programs() {
            Some(programs) => {
                for p in programs {
                    projected.push(p.eval(combined, agg_values, vm_stack)?);
                }
            }
            None => {
                for col in &q.select {
                    projected.push(evaluate(&col.expr, combined, agg_values)?);
                }
            }
        }
        Ok(Row::new(projected))
    })
}

/// [`execute_request`] through the pre-streaming pipeline: every window row
/// is materialized as decoded `Value`s before aggregating, and joins clone
/// the combined row per probed candidate. Kept as the differential-testing
/// oracle for the streaming path and as the bench baseline.
pub fn execute_request_materialized(
    provider: &dyn TableProvider,
    dep: &Deployment,
    request: &Row,
) -> Result<Row> {
    execute_request_materialized_with(provider, dep, request, &RequestOptions::default())
        .map(|out| out.row)
}

/// [`execute_request_with`] through the materializing reference pipeline.
pub fn execute_request_materialized_with(
    provider: &dyn TableProvider,
    dep: &Deployment,
    request: &Row,
    opts: &RequestOptions,
) -> Result<RequestOutput> {
    // The materializing path has no pooled scratch; it carries a transient
    // recorder (the ring allocates once per request here, like every other
    // buffer on this path).
    let mut flight = Recorder::default();
    let scope = FlightScope::enter(&mut flight);
    let pscope = ProfileScope::enter();
    let t0 = std::time::Instant::now();
    let ctx = Ctx::new(opts);
    let out = obs::with_request_trace(|| {
        let r = execute_request_inner_materialized(provider, dep, request, &ctx);
        crate::metrics::requests().inc();
        r
    });
    let summary = scope.finish();
    // As on the streaming path: attribute first so the recorded latency
    // covers the attribution work too.
    if let Some(mut prof) = pscope.finish() {
        prof.stage_ns = summary.stage_self_ns;
        prof.total_ns = t0.elapsed().as_nanos() as u64;
        prof.retries = u64::from(ctx.retries());
        prof.failovers = u64::from(ctx.failovers());
        prof.degraded = u64::from(ctx.degraded());
        attribute_request(dep, &prof);
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    crate::metrics::request_duration().record_with_exemplar(
        elapsed_ns,
        summary.trace_id,
        &summary.stage_self_ns,
    );
    let result = match out {
        Ok(row) => Ok(RequestOutput {
            row,
            degraded: ctx.degraded(),
            retries: ctx.retries(),
            failovers: ctx.failovers(),
            trace_id: summary.trace_id,
        }),
        Err(e) => {
            if matches!(e, Error::Timeout { .. }) {
                crate::metrics::timeouts().inc();
            }
            Err(e)
        }
    };
    maybe_dump_post_mortem(&flight, &summary, &result);
    result
}

pub(crate) fn execute_request_inner_materialized(
    provider: &dyn TableProvider,
    dep: &Deployment,
    request: &Row,
    ctx: &Ctx,
) -> Result<Row> {
    let q = &dep.query;
    ctx.check("validate")?;
    q.base_schema.validate_row(request.values())?;

    // 1. LAST JOINs: build the combined row.
    let mut combined: Vec<Value> = request.values().to_vec();
    obs::span(obs::Stage::StorageSeek, || -> Result<()> {
        for join in &q.joins {
            let key: Vec<KeyValue> = join
                .eq_pairs
                .iter()
                .map(|&(l, _)| KeyValue::from(&combined[l]))
                .collect();
            let right_keys: Vec<usize> = join.eq_pairs.iter().map(|&(_, r)| r).collect();
            let matched = resilient_read(ctx, provider, &join.table, |table| {
                let index = table
                    .find_index(&right_keys, join.order_col)
                    .ok_or_else(|| {
                        Error::Storage(format!("no index on `{}` for join keys", join.table))
                    })?;
                match &join.residual {
                    None => table.latest(index, &key),
                    Some(pred) => {
                        let mut check = |row: &Row| {
                            let mut probe = combined.clone();
                            probe.extend(row.values().iter().cloned());
                            evaluate(pred, &probe, &[])
                                .and_then(|v| v.as_bool())
                                .unwrap_or(false)
                        };
                        table.latest_where(index, &key, None, &mut check)
                    }
                }
            })?;
            match matched {
                Some(row) => combined.extend(row.values().iter().cloned()),
                None => combined.extend((0..join.schema.len()).map(|_| Value::Null)),
            }
        }
        Ok(())
    })?;

    // 2. WHERE filter (a request failing the predicate yields an all-NULL
    // feature row rather than an error).
    if let Some(pred) = &q.where_clause {
        if !evaluate(pred, &combined, &[])?.as_bool()? {
            let nulls = vec![Value::Null; q.output_schema.len()];
            return Ok(Row::new(nulls));
        }
    }

    // 3. Windows: compute every aggregate.
    let by_window = q.aggregates_by_window();
    let mut agg_values = vec![Value::Null; q.aggregates.len()];
    for (wid, window) in q.windows.iter().enumerate() {
        if by_window[wid].is_empty() {
            continue;
        }
        // After an earlier window degraded, `ctx.check` is lenient so the
        // request can still finish — but later windows must not start an
        // unbudgeted full scan. Send them straight to their own degraded
        // path (or a plain Timeout if they have no pre-aggregation).
        let full = if ctx.degraded() && ctx.deadline_expired() {
            Err(Error::Timeout {
                stage: "window_dispatch",
                budget_ms: ctx.opts.deadline.budget_ms(),
            })
        } else {
            obs::span(obs::Stage::WindowDispatch, || -> Result<()> {
                ctx.check("window_dispatch")?;
                let anchor_ts = request.ts_at(window.order_col);
                let agg_refs: Vec<_> = by_window[wid].iter().map(|&i| &q.aggregates[i]).collect();

                // Pre-aggregation fast path: only for pure range frames, and not
                // for INSTANCE_NOT_IN_WINDOW (buckets mix base and union rows and
                // cannot exclude the base table per query).
                if let (Some(preagg), Frame::RowsRange { preceding_ms }, false) = (
                    &dep.preaggs[wid],
                    window.frame,
                    window.instance_not_in_window,
                ) {
                    let key = request.key_for(&window.partition_cols);
                    let lower = anchor_ts - preceding_ms;
                    // The request row is part of the window unless excluded — it
                    // is not yet in storage, so it is folded in after the bucket
                    // merge.
                    let include_request = !window.exclude_current_row;
                    let extra = include_request.then_some(request);
                    let outs = obs::span(obs::Stage::Aggregate, || {
                        retry_transient(ctx, || {
                            preagg.query_with_extra_row(&key, lower, anchor_ts, extra, |lo, hi| {
                                raw_window_rows(provider, q, window, &key, lo, hi, ctx)
                            })
                        })
                    });
                    match outs {
                        Ok(outs) => {
                            crate::metrics::preagg_hits().inc();
                            openmldb_obs::profile::record_preagg_hit();
                            flight::event(FlightEventKind::PreaggHit, wid as u32, 0);
                            for (slot, v) in by_window[wid].iter().zip(outs) {
                                agg_values[*slot] = v;
                            }
                            return Ok(());
                        }
                        // The lookup itself kept faulting past its retry
                        // budget: fall through to the raw scan, which reads
                        // through the full resilience ladder.
                        Err(e) if e.is_transient() => {
                            crate::metrics::preagg_skips().inc();
                            openmldb_obs::profile::record_preagg_skip();
                            flight::event(FlightEventKind::PreaggSkip, wid as u32, 0);
                        }
                        Err(e) => return Err(e),
                    }
                } else if dep.preaggs[wid].is_some() {
                    crate::metrics::preagg_skips().inc();
                    openmldb_obs::profile::record_preagg_skip();
                    flight::event(FlightEventKind::PreaggSkip, wid as u32, 0);
                }

                // Scan path: gather window rows (request row is the anchor),
                // decoding only the columns this window's aggregates read.
                let wanted = Some(dep.window_projections[wid].as_slice());
                let rows = obs::span(obs::Stage::StorageSeek, || {
                    collect_window_rows_ctx(provider, q, window, request, anchor_ts, wanted, ctx)
                })?;
                obs::span(obs::Stage::Aggregate, || -> Result<()> {
                    ctx.check("aggregate")?;
                    let mut set = WindowAggSet::new(&agg_refs)?;
                    for r in &rows {
                        set.update(r.values())?;
                    }
                    for (slot, v) in by_window[wid].iter().zip(set.outputs()) {
                        agg_values[*slot] = v;
                    }
                    Ok(())
                })?;
                Ok(())
            })
        };
        if let Err(e) = full {
            // Degradation tier: the full path ran out of budget, but a
            // pre-aggregated window can still answer from buckets alone —
            // raw edge reads skipped, result flagged `degraded`.
            if ctx.opts.allow_degraded && matches!(e, Error::Timeout { .. }) {
                if let (Some(preagg), Frame::RowsRange { preceding_ms }, false) = (
                    &dep.preaggs[wid],
                    window.frame,
                    window.instance_not_in_window,
                ) {
                    let anchor_ts = request.ts_at(window.order_col);
                    let key = request.key_for(&window.partition_cols);
                    let lower = anchor_ts - preceding_ms;
                    let extra = (!window.exclude_current_row).then_some(request);
                    let outs =
                        preagg.query_with_extra_row(&key, lower, anchor_ts, extra, |_, _| {
                            Ok(Vec::new())
                        })?;
                    for (slot, v) in by_window[wid].iter().zip(outs) {
                        agg_values[*slot] = v;
                    }
                    ctx.note_degraded();
                    continue;
                }
            }
            return Err(e);
        }
    }

    // 4. Project the select list.
    obs::span(obs::Stage::Encode, || -> Result<Row> {
        ctx.check("encode")?;
        let mut out = Vec::with_capacity(q.select.len());
        for col in &q.select {
            out.push(evaluate(&col.expr, &combined, &agg_values)?);
        }
        Ok(Row::new(out))
    })
}

/// Raw rows for a window's key within `[lo, hi]`, from the base table and
/// every union table (chronological order not required — pre-agg aggregates
/// are order-free).
fn raw_window_rows(
    provider: &dyn TableProvider,
    q: &CompiledQuery,
    window: &BoundWindow,
    key: &[KeyValue],
    lo: i64,
    hi: i64,
    ctx: &Ctx,
) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    for name in
        std::iter::once(q.base_table.as_str()).chain(window.union_tables.iter().map(String::as_str))
    {
        let rows = resilient_read(ctx, provider, name, |table| {
            let index = table
                .find_index(&window.partition_cols, Some(window.order_col))
                .ok_or_else(|| Error::Storage(format!("no window index on `{name}`")))?;
            table.range_projected(index, key, lo, hi, None)
        })?;
        for (_ts, row) in rows {
            out.push(row);
        }
    }
    Ok(out)
}

/// Collect the window's rows for a request: stored rows from the base table
/// and union tables, plus the request row itself (subject to the window
/// attributes), in chronological order, capped by MAXSIZE.
pub fn collect_window_rows(
    provider: &dyn TableProvider,
    q: &CompiledQuery,
    window: &BoundWindow,
    request: &Row,
    anchor_ts: i64,
) -> Result<Vec<Row>> {
    collect_window_rows_projected(provider, q, window, request, anchor_ts, None)
}

/// [`collect_window_rows`] decoding only the columns marked in `wanted`.
pub fn collect_window_rows_projected(
    provider: &dyn TableProvider,
    q: &CompiledQuery,
    window: &BoundWindow,
    request: &Row,
    anchor_ts: i64,
    wanted: Option<&[bool]>,
) -> Result<Vec<Row>> {
    let opts = RequestOptions::default();
    let ctx = Ctx::new(&opts);
    collect_window_rows_ctx(provider, q, window, request, anchor_ts, wanted, &ctx)
}

/// [`collect_window_rows_projected`] threading the per-request resilience
/// context: deadline checks, retries, and failover around every table read.
#[allow(clippy::too_many_arguments)]
fn collect_window_rows_ctx(
    provider: &dyn TableProvider,
    q: &CompiledQuery,
    window: &BoundWindow,
    request: &Row,
    anchor_ts: i64,
    wanted: Option<&[bool]>,
    ctx: &Ctx,
) -> Result<Vec<Row>> {
    let key = request.key_for(&window.partition_cols);
    let mut stamped: Vec<(i64, Row)> = Vec::new();

    // EXCLUDE CURRENT_ROW drops the request tuple from the aggregates;
    // INSTANCE_NOT_IN_WINDOW keeps the request tuple but drops the *other*
    // rows of the instance's (base) table — the window then aggregates the
    // union tables' data anchored at the request (OpenMLDB semantics).
    let include_request = !window.exclude_current_row;
    let per_table_limit = match window.frame {
        // +1 row budget: the request row occupies one slot if included.
        Frame::Rows { preceding } => Some(preceding as usize + usize::from(!include_request)),
        _ => None,
    };
    let lower = match window.frame {
        Frame::RowsRange { preceding_ms } => anchor_ts - preceding_ms,
        _ => i64::MIN,
    };

    let base_iter = if window.instance_not_in_window {
        None
    } else {
        Some(q.base_table.as_str())
    };
    for name in base_iter
        .into_iter()
        .chain(window.union_tables.iter().map(String::as_str))
    {
        let rows = resilient_read(ctx, provider, name, |table| {
            let index = table
                .find_index(&window.partition_cols, Some(window.order_col))
                .ok_or_else(|| Error::Storage(format!("no window index on `{name}`")))?;
            match per_table_limit {
                Some(n) => table.latest_n_projected(index, &key, anchor_ts, n, wanted),
                None => table.range_projected(index, &key, lower, anchor_ts, wanted),
            }
        })?;
        stamped.extend(rows);
    }
    if include_request {
        stamped.push((anchor_ts, request.clone()));
    }

    // Chronological order (time-series aggregates depend on it); newest
    // entries win the per-frame caps.
    stamped.sort_by_key(|(ts, _)| *ts);
    if let Frame::Rows { preceding } = window.frame {
        let keep = preceding as usize + 1;
        if stamped.len() > keep {
            stamped.drain(..stamped.len() - keep);
        }
    }
    if let Some(maxsize) = window.maxsize {
        if stamped.len() > maxsize {
            stamped.drain(..stamped.len() - maxsize);
        }
    }
    Ok(stamped.into_iter().map(|(_, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_sql::{compile_select, parse_select, Catalog};
    use openmldb_storage::{IndexSpec, Ttl};
    use openmldb_types::{DataType, Schema};

    struct Cat(HashMap<String, Schema>);
    impl Catalog for Cat {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            self.0.get(name).cloned()
        }
    }

    fn action_schema() -> Schema {
        Schema::from_pairs(&[
            ("userid", DataType::Bigint),
            ("category", DataType::String),
            ("price", DataType::Double),
            ("quantity", DataType::Int),
            ("ts", DataType::Timestamp),
        ])
        .unwrap()
    }

    fn profile_schema() -> Schema {
        Schema::from_pairs(&[
            ("userid", DataType::Bigint),
            ("age", DataType::Int),
            ("updated", DataType::Timestamp),
        ])
        .unwrap()
    }

    fn setup() -> (MapProvider, Cat) {
        let mut cat = HashMap::new();
        cat.insert("actions".to_string(), action_schema());
        cat.insert("orders".to_string(), action_schema());
        cat.insert("profiles".to_string(), profile_schema());
        let mut provider = MapProvider::default();
        for name in ["actions", "orders"] {
            provider.insert(Arc::new(
                MemTable::new(
                    name,
                    action_schema(),
                    vec![IndexSpec {
                        name: "by_user".into(),
                        key_cols: vec![0],
                        ts_col: Some(4),
                        ttl: Ttl::Unlimited,
                    }],
                )
                .unwrap(),
            ));
        }
        provider.insert(Arc::new(
            MemTable::new(
                "profiles",
                profile_schema(),
                vec![IndexSpec {
                    name: "by_user".into(),
                    key_cols: vec![0],
                    ts_col: Some(2),
                    ttl: Ttl::Unlimited,
                }],
            )
            .unwrap(),
        ));
        (provider, Cat(cat))
    }

    fn action(user: i64, cat: &str, price: f64, qty: i32, ts: i64) -> Row {
        Row::new(vec![
            Value::Bigint(user),
            Value::string(cat),
            Value::Double(price),
            Value::Int(qty),
            Value::Timestamp(ts),
        ])
    }

    #[test]
    fn request_window_aggregation() {
        let (provider, cat) = setup();
        let actions = provider.table("actions").unwrap();
        for i in 0..5 {
            actions
                .put(&action(1, "a", i as f64, 1, 1_000 + i * 100))
                .unwrap();
        }
        actions.put(&action(2, "b", 99.0, 1, 1_200)).unwrap();
        let q = Arc::new(
            compile_select(
                &parse_select(
                    "SELECT userid, sum(price) OVER w AS total, count(price) OVER w AS cnt \
                     FROM actions WINDOW w AS (PARTITION BY userid ORDER BY ts \
                     ROWS_RANGE BETWEEN 250 PRECEDING AND CURRENT ROW)",
                )
                .unwrap(),
                &cat,
            )
            .unwrap(),
        );
        let dep = Deployment::new("d", q);
        // Request at ts=1450 for user 1: stored rows in [1200, 1450] are
        // ts 1200(2.0), 1300(3.0), 1400(4.0) + request row 7.0.
        let out = execute_request(&provider, &dep, &action(1, "a", 7.0, 1, 1_450)).unwrap();
        assert_eq!(out[0], Value::Bigint(1));
        assert_eq!(out[1], Value::Double(16.0));
        assert_eq!(out[2], Value::Bigint(4));
    }

    #[test]
    fn request_rows_frame_counts_request_row() {
        let (provider, cat) = setup();
        let actions = provider.table("actions").unwrap();
        for i in 0..10 {
            actions.put(&action(1, "a", 1.0, 1, 1_000 + i)).unwrap();
        }
        let q = Arc::new(
            compile_select(
                &parse_select(
                    "SELECT count(price) OVER w AS cnt FROM actions WINDOW w AS \
                     (PARTITION BY userid ORDER BY ts ROWS BETWEEN 2 PRECEDING AND CURRENT ROW)",
                )
                .unwrap(),
                &cat,
            )
            .unwrap(),
        );
        let dep = Deployment::new("d", q);
        let out = execute_request(&provider, &dep, &action(1, "a", 1.0, 1, 2_000)).unwrap();
        assert_eq!(out[0], Value::Bigint(3), "2 preceding + current");
    }

    #[test]
    fn window_union_merges_tables() {
        let (provider, cat) = setup();
        provider
            .table("actions")
            .unwrap()
            .put(&action(1, "a", 1.0, 1, 100))
            .unwrap();
        provider
            .table("orders")
            .unwrap()
            .put(&action(1, "o", 10.0, 1, 150))
            .unwrap();
        provider
            .table("orders")
            .unwrap()
            .put(&action(1, "o", 20.0, 1, 10_000))
            .unwrap(); // outside
        let q = Arc::new(
            compile_select(
                &parse_select(
                    "SELECT sum(price) OVER w AS total FROM actions WINDOW w AS \
                     (UNION orders PARTITION BY userid ORDER BY ts \
                     ROWS_RANGE BETWEEN 3s PRECEDING AND CURRENT ROW)",
                )
                .unwrap(),
                &cat,
            )
            .unwrap(),
        );
        let dep = Deployment::new("d", q);
        let out = execute_request(&provider, &dep, &action(1, "a", 5.0, 1, 200)).unwrap();
        assert_eq!(
            out[0],
            Value::Double(16.0),
            "action 1.0 + order 10.0 + request 5.0"
        );
    }

    #[test]
    fn last_join_picks_latest_match() {
        let (provider, cat) = setup();
        let profiles = provider.table("profiles").unwrap();
        profiles
            .put(&Row::new(vec![
                Value::Bigint(1),
                Value::Int(20),
                Value::Timestamp(100),
            ]))
            .unwrap();
        profiles
            .put(&Row::new(vec![
                Value::Bigint(1),
                Value::Int(21),
                Value::Timestamp(200),
            ]))
            .unwrap();
        let q = Arc::new(
            compile_select(
                &parse_select(
                    "SELECT actions.userid, profiles.age FROM actions \
                     LAST JOIN profiles ORDER BY profiles.updated \
                     ON actions.userid = profiles.userid",
                )
                .unwrap(),
                &cat,
            )
            .unwrap(),
        );
        let dep = Deployment::new("d", q);
        let out = execute_request(&provider, &dep, &action(1, "a", 0.0, 1, 500)).unwrap();
        assert_eq!(out[1], Value::Int(21), "latest profile row wins");
        // No match → NULL-padded.
        let out = execute_request(&provider, &dep, &action(9, "a", 0.0, 1, 500)).unwrap();
        assert_eq!(out[1], Value::Null);
    }

    #[test]
    fn last_join_residual_predicate() {
        let (provider, cat) = setup();
        let profiles = provider.table("profiles").unwrap();
        profiles
            .put(&Row::new(vec![
                Value::Bigint(1),
                Value::Int(15),
                Value::Timestamp(100),
            ]))
            .unwrap();
        profiles
            .put(&Row::new(vec![
                Value::Bigint(1),
                Value::Int(30),
                Value::Timestamp(50),
            ]))
            .unwrap();
        let q = Arc::new(
            compile_select(
                &parse_select(
                    "SELECT profiles.age FROM actions \
                     LAST JOIN profiles ON actions.userid = profiles.userid \
                     AND profiles.age > 18",
                )
                .unwrap(),
                &cat,
            )
            .unwrap(),
        );
        let dep = Deployment::new("d", q);
        let out = execute_request(&provider, &dep, &action(1, "a", 0.0, 1, 500)).unwrap();
        assert_eq!(
            out[0],
            Value::Int(30),
            "newest row failing the predicate is skipped"
        );
    }

    #[test]
    fn where_clause_filters_request() {
        let (provider, cat) = setup();
        let q = Arc::new(
            compile_select(
                &parse_select("SELECT userid FROM actions WHERE quantity > 5").unwrap(),
                &cat,
            )
            .unwrap(),
        );
        let dep = Deployment::new("d", q);
        let hit = execute_request(&provider, &dep, &action(1, "a", 0.0, 9, 1)).unwrap();
        assert_eq!(hit[0], Value::Bigint(1));
        let miss = execute_request(&provider, &dep, &action(1, "a", 0.0, 1, 1)).unwrap();
        assert_eq!(miss[0], Value::Null);
    }

    #[test]
    fn exclude_current_row_attribute() {
        let (provider, cat) = setup();
        let actions = provider.table("actions").unwrap();
        actions.put(&action(1, "a", 10.0, 1, 100)).unwrap();
        let q = Arc::new(
            compile_select(
                &parse_select(
                    "SELECT sum(price) OVER w AS s FROM actions WINDOW w AS \
                     (PARTITION BY userid ORDER BY ts \
                     ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW EXCLUDE CURRENT_ROW)",
                )
                .unwrap(),
                &cat,
            )
            .unwrap(),
        );
        let dep = Deployment::new("d", q);
        let out = execute_request(&provider, &dep, &action(1, "a", 99.0, 1, 200)).unwrap();
        assert_eq!(out[0], Value::Double(10.0), "request row excluded");
    }

    #[test]
    fn preagg_path_matches_scan_path() {
        let (provider, cat) = setup();
        let actions = provider.table("actions").unwrap();
        let q = Arc::new(
            compile_select(
                &parse_select(
                    "SELECT sum(price) OVER w AS s, count(price) OVER w AS c \
                     FROM actions WINDOW w AS (PARTITION BY userid ORDER BY ts \
                     ROWS_RANGE BETWEEN 100000 PRECEDING AND CURRENT ROW)",
                )
                .unwrap(),
                &cat,
            )
            .unwrap(),
        );
        let preagg = PreAggregator::new(&q.windows[0], &q.aggregates, vec![1_000]).unwrap();
        preagg.attach(
            actions.replicator(),
            openmldb_types::CompactCodec::new(action_schema()),
        );
        for i in 0..500 {
            actions
                .put(&action(1, "a", (i % 10) as f64, 1, i * 37))
                .unwrap();
        }
        actions.replicator().flush();

        let scan_dep = Deployment::new("scan", q.clone());
        let preagg_dep = Deployment::new("fast", q).with_preagg(0, preagg.clone());
        let request = action(1, "a", 3.0, 1, 500 * 37);
        let a = execute_request(&provider, &scan_dep, &request).unwrap();
        let b = execute_request(&provider, &preagg_dep, &request).unwrap();
        assert_eq!(a, b, "pre-aggregation must not change results");
        assert!(preagg.queries() > 0);
    }
}

#[cfg(test)]
mod instance_window_tests {
    use super::*;
    use openmldb_sql::{compile_select, parse_select, Catalog};
    use openmldb_storage::{IndexSpec, MemTable, Ttl};
    use openmldb_types::{DataType, Schema};

    struct Cat(Schema);
    impl Catalog for Cat {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            matches!(name, "main" | "side").then(|| self.0.clone())
        }
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("k", DataType::Bigint),
            ("v", DataType::Double),
            ("ts", DataType::Timestamp),
        ])
        .unwrap()
    }

    fn mk_table(name: &str) -> Arc<MemTable> {
        Arc::new(
            MemTable::new(
                name,
                schema(),
                vec![IndexSpec {
                    name: "i".into(),
                    key_cols: vec![0],
                    ts_col: Some(2),
                    ttl: Ttl::Unlimited,
                }],
            )
            .unwrap(),
        )
    }

    fn row(k: i64, v: f64, ts: i64) -> Row {
        Row::new(vec![
            Value::Bigint(k),
            Value::Double(v),
            Value::Timestamp(ts),
        ])
    }

    /// INSTANCE_NOT_IN_WINDOW: the main table's stored rows stay out; the
    /// union table's rows and the request row itself aggregate.
    #[test]
    fn instance_not_in_window_excludes_main_table_history() {
        let mut provider = MapProvider::default();
        let main = mk_table("main");
        let side = mk_table("side");
        main.put(&row(1, 100.0, 50)).unwrap(); // must NOT count
        side.put(&row(1, 10.0, 60)).unwrap(); // counts
        provider.insert(main);
        provider.insert(side);
        let q = Arc::new(
            compile_select(
                &parse_select(
                    "SELECT sum(v) OVER w AS s, count(v) OVER w AS c FROM main \
                     WINDOW w AS (UNION side PARTITION BY k ORDER BY ts \
                     ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW \
                     INSTANCE_NOT_IN_WINDOW)",
                )
                .unwrap(),
                &Cat(schema()),
            )
            .unwrap(),
        );
        let dep = Deployment::new("d", q);
        let out = execute_request(&provider, &dep, &row(1, 1.0, 100)).unwrap();
        assert_eq!(
            out[0],
            Value::Double(11.0),
            "side row + request, not main history"
        );
        assert_eq!(out[1], Value::Bigint(2));
    }

    /// EXCLUDE CURRENT_ROW composes with INSTANCE_NOT_IN_WINDOW: only the
    /// union rows remain.
    #[test]
    fn instance_not_in_window_with_exclude_current_row() {
        let mut provider = MapProvider::default();
        let main = mk_table("main");
        let side = mk_table("side");
        main.put(&row(1, 100.0, 50)).unwrap();
        side.put(&row(1, 10.0, 60)).unwrap();
        provider.insert(main);
        provider.insert(side);
        let q = Arc::new(
            compile_select(
                &parse_select(
                    "SELECT sum(v) OVER w AS s FROM main \
                     WINDOW w AS (UNION side PARTITION BY k ORDER BY ts \
                     ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW \
                     EXCLUDE CURRENT_ROW INSTANCE_NOT_IN_WINDOW)",
                )
                .unwrap(),
                &Cat(schema()),
            )
            .unwrap(),
        );
        let dep = Deployment::new("d", q);
        let out = execute_request(&provider, &dep, &row(1, 1.0, 100)).unwrap();
        assert_eq!(out[0], Value::Double(10.0), "only the union row");
    }
}
