//! Segment tree over pre-aggregation buckets (paper Section 5.1 cites
//! segment trees for managing aggregator history).
//!
//! Two uses here:
//!
//! * [`SegmentTree`] — generic range-merge structure: point updates and
//!   O(log n) range queries over any associative merge;
//! * [`FrequencyTracker`] — a concrete instance counting how often each
//!   bucket range is queried, which drives the adaptive aggregator-hierarchy
//!   decisions ("adopt daily and monthly aggregators if hourly ones are
//!   seldom queried").

/// Associative merge for segment-tree elements.
pub trait Mergeable: Clone {
    fn identity() -> Self;
    fn merge(&self, other: &Self) -> Self;
}

impl Mergeable for u64 {
    fn identity() -> Self {
        0
    }
    fn merge(&self, other: &Self) -> Self {
        self + other
    }
}

impl Mergeable for f64 {
    fn identity() -> Self {
        0.0
    }
    fn merge(&self, other: &Self) -> Self {
        self + other
    }
}

/// Iterative segment tree with fixed capacity.
#[derive(Debug, Clone)]
pub struct SegmentTree<T: Mergeable> {
    size: usize,
    nodes: Vec<T>,
}

impl<T: Mergeable> SegmentTree<T> {
    /// A tree over `len` slots (rounded up to a power of two internally).
    pub fn new(len: usize) -> Self {
        let size = len.next_power_of_two().max(1);
        SegmentTree {
            size,
            nodes: vec![T::identity(); 2 * size],
        }
    }

    pub fn len(&self) -> usize {
        self.size
    }

    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Replace slot `i` and propagate to ancestors.
    pub fn set(&mut self, i: usize, value: T) {
        assert!(i < self.size, "index {i} out of bounds {}", self.size);
        let mut n = self.size + i;
        self.nodes[n] = value;
        n /= 2;
        while n >= 1 {
            self.nodes[n] = self.nodes[2 * n].merge(&self.nodes[2 * n + 1]);
            if n == 1 {
                break;
            }
            n /= 2;
        }
    }

    /// Merge slot `i` with `value` in place.
    pub fn update(&mut self, i: usize, value: T) {
        let merged = self.nodes[self.size + i].merge(&value);
        self.set(i, merged);
    }

    /// Read slot `i`.
    pub fn get(&self, i: usize) -> &T {
        &self.nodes[self.size + i]
    }

    /// Merge of slots `[lo, hi)` in O(log n).
    pub fn query(&self, lo: usize, hi: usize) -> T {
        let (mut lo, mut hi) = (self.size + lo.min(self.size), self.size + hi.min(self.size));
        let mut left = T::identity();
        let mut right = T::identity();
        while lo < hi {
            if lo % 2 == 1 {
                left = left.merge(&self.nodes[lo]);
                lo += 1;
            }
            if hi % 2 == 1 {
                hi -= 1;
                right = self.nodes[hi].merge(&right);
            }
            lo /= 2;
            hi /= 2;
        }
        left.merge(&right)
    }
}

/// Query-frequency statistics per time bucket, used to adapt the
/// pre-aggregation hierarchy.
#[derive(Debug)]
pub struct FrequencyTracker {
    tree: SegmentTree<u64>,
    bucket_ms: i64,
    origin_ms: i64,
}

impl FrequencyTracker {
    /// Track `slots` buckets of `bucket_ms` starting at `origin_ms`.
    pub fn new(origin_ms: i64, bucket_ms: i64, slots: usize) -> Self {
        FrequencyTracker {
            tree: SegmentTree::new(slots),
            bucket_ms: bucket_ms.max(1),
            origin_ms,
        }
    }

    fn slot(&self, ts: i64) -> Option<usize> {
        let rel = ts - self.origin_ms;
        if rel < 0 {
            return None;
        }
        let slot = (rel / self.bucket_ms) as usize;
        (slot < self.tree.len()).then_some(slot)
    }

    /// Record a query touching `[lower_ts, upper_ts]`.
    pub fn record(&mut self, lower_ts: i64, upper_ts: i64) {
        let lo = self.slot(lower_ts.max(self.origin_ms)).unwrap_or(0);
        let hi = self
            .slot(upper_ts)
            .map(|s| s + 1)
            .unwrap_or(self.tree.len());
        for s in lo..hi {
            self.tree.update(s, 1);
        }
    }

    /// Total queries over a time range.
    pub fn frequency(&self, lower_ts: i64, upper_ts: i64) -> u64 {
        let lo = self.slot(lower_ts.max(self.origin_ms)).unwrap_or(0);
        let hi = self
            .slot(upper_ts)
            .map(|s| s + 1)
            .unwrap_or(self.tree.len());
        self.tree.query(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_update_range_query() {
        let mut t: SegmentTree<u64> = SegmentTree::new(10);
        for i in 0..10 {
            t.set(i, i as u64);
        }
        assert_eq!(t.query(0, 10), 45);
        assert_eq!(t.query(3, 7), 3 + 4 + 5 + 6);
        assert_eq!(t.query(5, 5), 0);
        assert_eq!(*t.get(4), 4);
    }

    #[test]
    fn update_accumulates() {
        let mut t: SegmentTree<u64> = SegmentTree::new(4);
        t.update(2, 5);
        t.update(2, 7);
        assert_eq!(*t.get(2), 12);
        assert_eq!(t.query(0, 4), 12);
    }

    #[test]
    fn matches_naive_on_random_ops() {
        let mut t: SegmentTree<u64> = SegmentTree::new(33); // non power of two
        let mut model = vec![0u64; 33];
        let mut x: u64 = 42;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (x >> 33) as usize % 33;
            let v = x % 100;
            t.update(i, v);
            model[i] += v;
            let lo = (x >> 17) as usize % 34;
            let hi = (x >> 5) as usize % 34;
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            assert_eq!(t.query(lo, hi), model[lo..hi].iter().sum::<u64>());
        }
    }

    #[test]
    fn frequency_tracker_localizes_hot_ranges() {
        let mut f = FrequencyTracker::new(0, 100, 100);
        for _ in 0..10 {
            f.record(0, 299); // hot: first 3 buckets
        }
        f.record(5_000, 5_099); // cold single bucket
        assert_eq!(f.frequency(0, 299), 30);
        assert_eq!(f.frequency(5_000, 5_099), 1);
        assert_eq!(f.frequency(8_000, 9_000), 0);
    }
}
