//! Consistency sentinel: continuous online/offline audit of served results.
//!
//! The serving path samples 1-in-N requests (see
//! [`execute_request_with`](crate::engine::execute_request_with)): for a
//! sampled request it arms the scratch's [`ScanDigest`] so the window scan
//! folds a digest of every raw input row, then captures the request row
//! bytes, the served output digest, and a version signature of every table
//! the deployment reads. Capture is allocation-recycling — samples come
//! from a pool and the encoded request row reuses the pooled buffer — and
//! strictly off the unsampled warm path.
//!
//! A background auditor ([`drain`]) re-executes each sample through two
//! independent oracles — the interpreted streaming path (compiled kernels
//! forced off) and the materializing reference pipeline — and compares
//! bit-for-bit: output value digests and per-window scan-input digests.
//! Divergences at an unchanged table version are confirmed faults: they
//! increment per-deployment labeled counters, publish a
//! `consistency_divergence` flight-recorder post-mortem carrying both row
//! encodings, and land in the bounded divergence log
//! ([`openmldb_obs::audit`]). Audits whose table version moved between
//! capture and replay are counted as stale skips, never as divergences.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use openmldb_exec::RequestScratch;
use openmldb_obs::audit::{publish_divergence, DivergenceKind, DivergenceReport};
use openmldb_obs::flight::{self, PostMortem, NUM_STAGES};
use openmldb_obs::{Fnv, Outcome, ScanDigest};
use openmldb_types::codec::RowCodec;
use openmldb_types::{Result, Row, Value};

use crate::engine::{
    execute_request_inner_materialized, execute_streaming, Deployment, TableProvider,
};
use crate::resilience::{Ctx, RequestOptions, RequestOutput};

/// Bound on captured-but-unaudited samples. A full queue drops new samples
/// (counted) rather than stalling the serving path.
pub const MAX_QUEUE: usize = 1024;

/// One captured serve awaiting audit. All owned buffers are recycled
/// through the sample pool, so steady-state capture performs no allocation
/// once the pool and buffers are warm.
#[derive(Default)]
struct AuditSample {
    /// Deployment name (reused String buffer).
    deployment: String,
    /// Request row, compact-encoded with the deployment's base codec.
    request: Vec<u8>,
    /// FNV digest of the served output row's values.
    row_digest: u64,
    /// Debug render of the served output row (for the divergence report).
    row_repr: String,
    /// Per-window digests of the raw rows the serve actually scanned.
    scan: ScanDigest,
    /// Version signature of every read table at capture time.
    version_sig: u64,
    /// Trace id of the served request (links the post-mortem back).
    trace_id: u64,
}

struct Sentinel {
    /// Sample 1-in-N requests; 0 disables sampling entirely.
    every: AtomicU32,
    /// Monotonic request counter driving the 1-in-N decision.
    counter: AtomicU64,
    /// Captured samples awaiting audit, oldest first.
    queue: Mutex<VecDeque<AuditSample>>,
    /// Recycled sample shells (buffers keep their capacity).
    pool: Mutex<Vec<AuditSample>>,
    /// Interpreted oracle twins, keyed by deployment name. Invalidated
    /// when the live deployment's compiled query is replaced.
    twins: Mutex<HashMap<String, Arc<Deployment>>>,
}

fn sentinel() -> &'static Sentinel {
    static S: OnceLock<Sentinel> = OnceLock::new();
    S.get_or_init(|| Sentinel {
        every: AtomicU32::new(0),
        counter: AtomicU64::new(0),
        queue: Mutex::new(VecDeque::new()),
        pool: Mutex::new(Vec::new()),
        twins: Mutex::new(HashMap::new()),
    })
}

/// Set the sampling rate: audit one in `n` served requests (`0` = off,
/// the default — serving pays one atomic add and a branch per request).
pub fn set_sample_every(n: u32) {
    sentinel().every.store(n, Ordering::Relaxed);
}

/// The current 1-in-N sampling rate (`0` = off).
pub fn sample_every() -> u32 {
    sentinel().every.load(Ordering::Relaxed)
}

/// Captured samples currently waiting in the audit queue.
pub fn queue_len() -> usize {
    sentinel().queue.lock().map(|q| q.len()).unwrap_or(0)
}

/// Drop all pending samples and cached oracle twins and restart the
/// sampling counter. Cumulative metrics are left alone (they are
/// process-wide monotonic counters); tests work with deltas.
pub fn reset() {
    let s = sentinel();
    s.counter.store(0, Ordering::Relaxed);
    if let Ok(mut q) = s.queue.lock() {
        q.clear();
    }
    if let Ok(mut t) = s.twins.lock() {
        t.clear();
    }
    crate::metrics::sentinel_lag().set(0.0);
}

/// Per-request sampling decision.
// HOT: one relaxed fetch_add + modulo on the sampled path; a single load
// and branch when sampling is off or observability is compiled out.
pub(crate) fn should_sample() -> bool {
    if !openmldb_obs::enabled() {
        return false;
    }
    let every = sentinel().every.load(Ordering::Relaxed);
    if every == 0 {
        return false;
    }
    sentinel()
        .counter
        .fetch_add(1, Ordering::Relaxed)
        .is_multiple_of(u64::from(every))
}

/// Hash every read table's replication offset into one signature. Two
/// equal signatures mean no write landed in any table the deployment reads
/// between the two observations, so a replay must reproduce the serve
/// bit-for-bit.
pub(crate) fn version_signature(provider: &dyn TableProvider, dep: &Deployment) -> u64 {
    let mut f = Fnv::new();
    for name in dep.read_tables() {
        f.write(name.as_bytes());
        match provider.table(name) {
            Some(table) => f.write_u64(table.replicator().len()),
            None => f.write_u64(u64::MAX),
        }
    }
    f.finish()
}

/// FNV digest over a row's values: type discriminant plus exact bit
/// pattern per value, so any served/oracle difference — including a float
/// ULP or a NULL flip — changes the digest.
fn digest_row(values: &[Value]) -> u64 {
    let mut f = Fnv::new();
    for v in values {
        match v {
            Value::Null => f.write_u64(0),
            Value::Bool(b) => {
                f.write_u64(1);
                f.write_u64(u64::from(*b));
            }
            Value::Int(x) => {
                f.write_u64(2);
                f.write_u64(*x as u64);
            }
            Value::Bigint(x) => {
                f.write_u64(3);
                f.write_u64(*x as u64);
            }
            Value::Float(x) => {
                f.write_u64(4);
                f.write_u64(u64::from(x.to_bits()));
            }
            Value::Double(x) => {
                f.write_u64(5);
                f.write_u64(x.to_bits());
            }
            Value::Timestamp(x) => {
                f.write_u64(6);
                f.write_u64(*x as u64);
            }
            Value::Str(s) => {
                f.write_u64(7);
                f.write(s.as_bytes());
            }
        }
    }
    f.finish()
}

/// Capture one sampled serve onto the audit queue. Called by the engine
/// after the request finished, outside the latency measurement; only
/// clean (non-degraded, non-error) serves are auditable.
pub(crate) fn capture(
    provider: &dyn TableProvider,
    dep: &Deployment,
    request: &Row,
    scratch: &RequestScratch,
    result: &Result<RequestOutput>,
    pre_sig: u64,
) {
    let out = match result {
        Ok(out) if !out.degraded => out,
        // Errors and degraded answers are already surfaced through their
        // own metrics; the sentinel audits only answers claimed correct.
        _ => return,
    };
    // A write landed mid-serve: the scan digests describe a state no
    // replay can reproduce. Skip, counted.
    if version_signature(provider, dep) != pre_sig {
        crate::metrics::sentinel_stale_skips().inc();
        return;
    }
    let s = sentinel();
    // Pool and queue are never held together: the pool guard lives only
    // inside this block, and the overflow path below recycles after the
    // queue guard has been released.
    let mut sample = {
        let popped = s.pool.lock().ok().and_then(|mut p| p.pop());
        popped.unwrap_or_default()
    };
    sample.deployment.clear();
    sample.deployment.push_str(&dep.name);
    if dep.codec.encode_into(request, &mut sample.request).is_err() {
        // The serve validated this row already; an encode failure here is
        // unreachable in practice but must not panic the serving path.
        recycle(sample);
        return;
    }
    sample.row_digest = digest_row(out.row.values());
    sample.row_repr.clear();
    let _ = write!(sample.row_repr, "{:?}", out.row.values());
    sample.scan = scratch.audit;
    sample.version_sig = pre_sig;
    sample.trace_id = out.trace_id;

    crate::metrics::sentinel_samples().inc();
    let mut overflow = None;
    let depth = {
        match s.queue.lock() {
            Ok(mut q) if q.len() < MAX_QUEUE => {
                q.push_back(sample);
                q.len()
            }
            Ok(_) => {
                overflow = Some(sample);
                0
            }
            Err(_) => return,
        }
    };
    if let Some(sample) = overflow {
        crate::metrics::sentinel_dropped().inc();
        recycle(sample);
        return;
    }
    crate::metrics::sentinel_lag().set(depth as f64);
}

fn recycle(mut sample: AuditSample) {
    sample.scan.clear();
    if let Ok(mut pool) = sentinel().pool.lock() {
        if pool.len() < 64 {
            pool.push(sample);
        }
    }
}

/// The oracle twin for a live deployment: same compiled query, every
/// window and expression forced onto the interpreted path, no
/// pre-aggregators — so the twin always raw-scans and its scan digests are
/// comparable to a raw-scanned serve. Cached per name; invalidated when
/// the live deployment's query is replaced.
fn twin_for(dep: &Arc<Deployment>) -> Arc<Deployment> {
    let s = sentinel();
    if let Ok(mut twins) = s.twins.lock() {
        if let Some(twin) = twins.get(&dep.name) {
            if Arc::ptr_eq(&twin.query, &dep.query) {
                return Arc::clone(twin);
            }
        }
        let twin = Arc::new(
            Deployment::new(dep.name.clone(), Arc::clone(&dep.query)).with_interpreted_windows(),
        );
        twins.insert(dep.name.clone(), Arc::clone(&twin));
        twin
    } else {
        Arc::new(
            Deployment::new(dep.name.clone(), Arc::clone(&dep.query)).with_interpreted_windows(),
        )
    }
}

/// Outcome of one [`drain`] call.
#[derive(Debug, Default, Clone, Copy)]
pub struct AuditStats {
    /// Samples replayed through both oracles.
    pub audited: u64,
    /// Confirmed divergences among them.
    pub divergences: u64,
    /// Samples skipped because the table version moved.
    pub stale_skips: u64,
    /// Replays that errored (deployment gone, oracle failure).
    pub errors: u64,
    /// Samples still queued after this drain.
    pub remaining: usize,
}

/// Cumulative sentinel state, read from the process-wide metrics.
#[derive(Debug, Default, Clone, Copy)]
pub struct SentinelStats {
    pub samples: u64,
    pub audits: u64,
    pub divergences: u64,
    pub stale_skips: u64,
    pub dropped: u64,
    pub errors: u64,
    pub queue: usize,
}

/// Cumulative totals since process start.
pub fn stats() -> SentinelStats {
    use crate::metrics as m;
    SentinelStats {
        samples: m::sentinel_samples().value(),
        audits: m::sentinel_audits().value(),
        divergences: m::sentinel_divergences().value(),
        stale_skips: m::sentinel_stale_skips().value(),
        dropped: m::sentinel_dropped().value(),
        errors: m::sentinel_errors().value(),
        queue: queue_len(),
    }
}

/// Audit up to `max` queued samples: replay each through the interpreted
/// and materialized oracles and compare digests. `lookup` resolves a
/// deployment name to its live deployment (samples for dropped
/// deployments count as errors).
pub fn drain(
    provider: &dyn TableProvider,
    lookup: &dyn Fn(&str) -> Option<Arc<Deployment>>,
    max: usize,
) -> AuditStats {
    let s = sentinel();
    let mut stats = AuditStats::default();
    let mut scratch = RequestScratch::new();
    for _ in 0..max {
        let Some(sample) = s.queue.lock().ok().and_then(|mut q| q.pop_front()) else {
            break;
        };
        audit_one(provider, lookup, &sample, &mut scratch, &mut stats);
        recycle(sample);
    }
    stats.remaining = queue_len();
    crate::metrics::sentinel_lag().set(stats.remaining as f64);
    stats
}

fn audit_one(
    provider: &dyn TableProvider,
    lookup: &dyn Fn(&str) -> Option<Arc<Deployment>>,
    sample: &AuditSample,
    scratch: &mut RequestScratch,
    stats: &mut AuditStats,
) {
    let Some(dep) = lookup(&sample.deployment) else {
        crate::metrics::sentinel_errors().inc();
        stats.errors += 1;
        return;
    };
    // The table moved since capture: replays would legitimately differ.
    if version_signature(provider, &dep) != sample.version_sig {
        crate::metrics::sentinel_stale_skips().inc();
        stats.stale_skips += 1;
        return;
    }
    let request = match dep.codec.decode(&sample.request) {
        Ok(row) => row,
        Err(_) => {
            crate::metrics::sentinel_errors().inc();
            stats.errors += 1;
            return;
        }
    };
    let twin = twin_for(&dep);

    // Oracle 1: interpreted streaming replay, scan digests armed.
    scratch.reset();
    scratch.audit.arm();
    let opts = RequestOptions::default();
    let ctx = Ctx::new(&opts);
    let interpreted = execute_streaming(provider, &twin, &request, &ctx, scratch);
    // Oracle 2: the materializing reference pipeline.
    let ctx2 = Ctx::new(&opts);
    let materialized = execute_request_inner_materialized(provider, &twin, &request, &ctx2);
    let (interpreted, materialized) = match (interpreted, materialized) {
        (Ok(a), Ok(b)) => (a, b),
        _ => {
            crate::metrics::sentinel_errors().inc();
            stats.errors += 1;
            return;
        }
    };
    crate::metrics::sentinel_audits().inc();
    stats.audited += 1;

    let mismatch = first_mismatch(sample, &interpreted, &materialized, &scratch.audit);
    let Some((kind, window, oracle)) = mismatch else {
        return;
    };
    // Confirm before reporting: a write that landed during the replay
    // makes the disagreement stale, not wrong.
    if version_signature(provider, &dep) != sample.version_sig {
        crate::metrics::sentinel_stale_skips().inc();
        stats.stale_skips += 1;
        return;
    }
    stats.divergences += 1;
    crate::metrics::sentinel_divergences().inc();
    crate::metrics::deployment_divergences().inc(dep.label());
    let report = DivergenceReport {
        deployment: sample.deployment.clone(),
        trace_id: sample.trace_id,
        kind,
        window,
        served: sample.row_repr.clone(),
        oracle,
    };
    let mut note = String::new();
    let _ = write!(
        note,
        "{}: served={} oracle={}",
        kind.name(),
        report.served,
        report.oracle
    );
    flight::publish(PostMortem {
        trace_id: sample.trace_id,
        outcome: Outcome::Divergence,
        culprit: "consistency",
        total_ns: 0,
        stage_self_ns: [0; NUM_STAGES],
        other_ns: 0,
        retries: 0,
        failovers: 0,
        faults: 0,
        dropped_events: 0,
        events: Vec::new(),
        note,
    });
    publish_divergence(report);
}

/// Compare the served sample against both oracle replays; the first
/// disagreement wins (output mismatches before scan-input mismatches, the
/// interpreted oracle before the materialized one).
fn first_mismatch(
    sample: &AuditSample,
    interpreted: &Row,
    materialized: &Row,
    replay_scan: &ScanDigest,
) -> Option<(DivergenceKind, Option<usize>, String)> {
    if digest_row(interpreted.values()) != sample.row_digest {
        return Some((
            DivergenceKind::OutputInterpreted,
            None,
            format!("{:?}", interpreted.values()),
        ));
    }
    if digest_row(materialized.values()) != sample.row_digest {
        return Some((
            DivergenceKind::OutputMaterialized,
            None,
            format!("{:?}", materialized.values()),
        ));
    }
    for wid in 0..openmldb_obs::audit::DIGEST_WINDOWS {
        if let (Some(served), Some(oracle)) = (sample.scan.slot(wid), replay_scan.slot(wid)) {
            if served != oracle {
                return Some((
                    DivergenceKind::ScanInput,
                    Some(wid),
                    format!("scan digest {oracle:#018x} (served {served:#018x})"),
                ));
            }
        }
    }
    None
}
