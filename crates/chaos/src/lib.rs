//! # openmldb-chaos
//!
//! Deterministic fault injection for the online serving path.
//!
//! Real deployments of the paper's system survive tablet loss and storage
//! stalls through replica failover (§3.1); this crate gives the
//! reproduction a way to *prove* those properties instead of assuming
//! them. Named [`InjectionPoint`]s are compiled into storage, online, and
//! core; a seeded [`Plan`] arms each point with an error rate, a latency
//! rate + duration, and (for subscriber delivery) a kill rate.
//!
//! Design rules:
//!
//! * **Zero overhead when off.** Without the `chaos` cargo feature every
//!   hook is an `#[inline]` constant (`Ok(())` / `false`), mirroring the
//!   `obs-off` pattern with inverted polarity.
//! * **Deterministic.** No wall-clock, no OS entropy. Each injection point
//!   owns a splitmix64 counter stream keyed by `(seed, point)`; every
//!   [`inject`] / [`inject_kill`] call consumes exactly one draw, so the
//!   multiset of outcomes for N calls at a point is a pure function of the
//!   seed — regardless of thread interleaving.
//! * **Typed transiency.** Injected errors are
//!   `Error::Storage("transient fault injected at <point>")`; the
//!   `transient` prefix is what `Error::is_transient` keys on, so the
//!   retry machinery in `openmldb-online` treats them as retryable.

use std::time::Duration;

#[cfg(feature = "chaos")]
use openmldb_types::Error;
use openmldb_types::Result;

/// Compile-time switch: true when the `chaos` feature is active.
pub const fn enabled() -> bool {
    cfg!(feature = "chaos")
}

/// Faults fired by the injector (errors + delays), visible on the shared
/// metric surface so chaos runs can be correlated with serving metrics.
#[cfg(feature = "chaos")]
fn injected_faults() -> &'static std::sync::Arc<openmldb_obs::Counter> {
    static C: std::sync::OnceLock<std::sync::Arc<openmldb_obs::Counter>> =
        std::sync::OnceLock::new();
    C.get_or_init(|| {
        openmldb_obs::Registry::global().counter(
            "openmldb_chaos_injected_faults_total",
            "faults (transient errors + latency delays) fired by the chaos injector",
        )
    })
}

/// Named hooks compiled into the engine. The order defines the stable
/// index used by the per-point PRNG streams and counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InjectionPoint {
    /// `MemTable` skiplist probes (`latest` / `range` / `latest_n`).
    SkiplistSeek,
    /// `Replicator::append_entry` (latency only — appends are infallible).
    BinlogAppend,
    /// Binlog worker → subscriber delivery (kill = dropped delivery).
    BinlogDelivery,
    /// `ReplicaTable` catch-up closure applying a decoded row.
    ReplicaApply,
    /// `DiskTable` read paths.
    DiskRead,
    /// `WindowUnion::push` worker dispatch.
    UnionDispatch,
    /// `PreAggregator` bucket lookup.
    PreaggLookup,
    /// `Database::insert_row` memory admission.
    MemoryAdmission,
    /// WAL group-commit fsync (kill = the sync never reached the platter:
    /// the durable watermark does not advance, modelling a crash window).
    WalFsync,
    /// Snapshot writer (kill = the process died mid-write: a partial temp
    /// file is left behind and never renamed into place).
    SnapshotWrite,
    /// Compiled window kernel outputs (kill = the specialized bytecode
    /// silently corrupts its aggregate outputs — types and nulls preserved,
    /// values perturbed). Exercises the consistency sentinel: only the
    /// compiled serving path is affected, so the interpreted and
    /// materialized oracle replays must detect the divergence.
    CompiledKernel,
}

/// Number of injection points (array sizes below).
pub const POINTS: usize = 11;

impl InjectionPoint {
    /// Every point, in index order.
    pub const ALL: [InjectionPoint; POINTS] = [
        InjectionPoint::SkiplistSeek,
        InjectionPoint::BinlogAppend,
        InjectionPoint::BinlogDelivery,
        InjectionPoint::ReplicaApply,
        InjectionPoint::DiskRead,
        InjectionPoint::UnionDispatch,
        InjectionPoint::PreaggLookup,
        InjectionPoint::MemoryAdmission,
        InjectionPoint::WalFsync,
        InjectionPoint::SnapshotWrite,
        InjectionPoint::CompiledKernel,
    ];

    /// Stable index into per-point state arrays.
    pub const fn index(self) -> usize {
        match self {
            InjectionPoint::SkiplistSeek => 0,
            InjectionPoint::BinlogAppend => 1,
            InjectionPoint::BinlogDelivery => 2,
            InjectionPoint::ReplicaApply => 3,
            InjectionPoint::DiskRead => 4,
            InjectionPoint::UnionDispatch => 5,
            InjectionPoint::PreaggLookup => 6,
            InjectionPoint::MemoryAdmission => 7,
            InjectionPoint::WalFsync => 8,
            InjectionPoint::SnapshotWrite => 9,
            InjectionPoint::CompiledKernel => 10,
        }
    }

    /// Snake-case name used in error messages and the bench JSON.
    pub const fn name(self) -> &'static str {
        match self {
            InjectionPoint::SkiplistSeek => "skiplist_seek",
            InjectionPoint::BinlogAppend => "binlog_append",
            InjectionPoint::BinlogDelivery => "binlog_delivery",
            InjectionPoint::ReplicaApply => "replica_apply",
            InjectionPoint::DiskRead => "disk_read",
            InjectionPoint::UnionDispatch => "union_dispatch",
            InjectionPoint::PreaggLookup => "preagg_lookup",
            InjectionPoint::MemoryAdmission => "memory_admission",
            InjectionPoint::WalFsync => "wal_fsync",
            InjectionPoint::SnapshotWrite => "snapshot_write",
            InjectionPoint::CompiledKernel => "compiled_kernel",
        }
    }
}

/// Fault configuration for one injection point. Rates are probabilities in
/// `[0, 1]`; a single uniform draw per call selects at most one outcome:
/// `draw < error_rate` → error, else `draw < error_rate + latency_rate` →
/// sleep `latency`, else clean. Kill draws (where the hook supports kills)
/// come from the same per-point stream and compare against `kill_rate`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultSpec {
    pub error_rate: f64,
    pub latency_rate: f64,
    pub latency: Duration,
    pub kill_rate: f64,
}

impl FaultSpec {
    #[cfg(feature = "chaos")]
    fn is_armed(&self) -> bool {
        self.error_rate > 0.0 || self.latency_rate > 0.0 || self.kill_rate > 0.0
    }
}

/// A seeded fault plan: which points misbehave, how often, and how. Built
/// with the fluent setters and activated with [`install`].
#[derive(Clone, Debug)]
pub struct Plan {
    seed: u64,
    specs: [FaultSpec; POINTS],
}

impl Plan {
    /// A plan with every point clean; `seed` keys the PRNG streams.
    pub fn new(seed: u64) -> Self {
        Plan {
            seed,
            specs: [FaultSpec::default(); POINTS],
        }
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Inject `Error::Storage("transient …")` at `point` with probability
    /// `rate` per call.
    pub fn error_rate(mut self, point: InjectionPoint, rate: f64) -> Self {
        self.specs[point.index()].error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sleep `latency` at `point` with probability `rate` per call.
    pub fn latency(mut self, point: InjectionPoint, rate: f64, latency: Duration) -> Self {
        let spec = &mut self.specs[point.index()];
        spec.latency_rate = rate.clamp(0.0, 1.0);
        spec.latency = latency;
        self
    }

    /// Drop (kill) a delivery at `point` with probability `rate` per call.
    pub fn kill_rate(mut self, point: InjectionPoint, rate: f64) -> Self {
        self.specs[point.index()].kill_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// The spec configured for `point`.
    pub fn spec(&self, point: InjectionPoint) -> FaultSpec {
        self.specs[point.index()]
    }
}

/// Counter snapshot for one injection point (all zero when chaos is off or
/// the point never fired).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PointStats {
    /// `inject` + `inject_kill` calls that consumed a draw.
    pub calls: u64,
    pub errors: u64,
    pub delays: u64,
    pub kills: u64,
}

/// splitmix64 finalizer: statistically strong mixing of a counter. Shared by
/// the per-point PRNG streams and the (always-compiled) crash schedule.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Process-model crash harness: a seeded schedule of "the process died with
/// exactly `k` durable WAL bytes" points, plus seeded decisions about torn
/// snapshot files. Unlike the injection hooks this is compiled
/// unconditionally — it drives *offline* byte-level surgery on a copied
/// data directory, so it needs no in-process hook and must stay available
/// to the default-feature recovery tests.
#[derive(Clone, Copy, Debug)]
pub struct CrashSchedule {
    seed: u64,
}

impl CrashSchedule {
    pub fn new(seed: u64) -> Self {
        CrashSchedule { seed }
    }

    /// Byte length the WAL is severed at for the `k`-th crash, uniform over
    /// `[0, max_bytes]` — any offset, including mid-record torn writes.
    pub fn crash_bytes(&self, k: u64, max_bytes: u64) -> u64 {
        if max_bytes == 0 {
            return 0;
        }
        splitmix64(self.seed ^ k.wrapping_mul(0xA076_1D64_78BD_642F)) % (max_bytes + 1)
    }

    /// Whether the `k`-th crash also tore the newest surviving snapshot
    /// mid-write (roughly one crash in four).
    pub fn tear_snapshot(&self, k: u64) -> bool {
        splitmix64(self.seed.rotate_left(17) ^ k).is_multiple_of(4)
    }
}

// ---------------------------------------------------------------------------
// Active implementation (feature = "chaos")
// ---------------------------------------------------------------------------

#[cfg(feature = "chaos")]
mod active {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::RwLock;

    pub(super) struct PointState {
        /// Draw counter: `fetch_add(1)` hands every call a unique index
        /// into the point's splitmix64 stream.
        pub draws: AtomicU64,
        pub calls: AtomicU64,
        pub errors: AtomicU64,
        pub delays: AtomicU64,
        pub kills: AtomicU64,
    }

    impl PointState {
        const fn new() -> Self {
            PointState {
                draws: AtomicU64::new(0),
                calls: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                delays: AtomicU64::new(0),
                kills: AtomicU64::new(0),
            }
        }

        fn reset(&self) {
            self.draws.store(0, Ordering::Relaxed);
            self.calls.store(0, Ordering::Relaxed);
            self.errors.store(0, Ordering::Relaxed);
            self.delays.store(0, Ordering::Relaxed);
            self.kills.store(0, Ordering::Relaxed);
        }
    }

    pub(super) static STATE: [PointState; POINTS] = [
        PointState::new(),
        PointState::new(),
        PointState::new(),
        PointState::new(),
        PointState::new(),
        PointState::new(),
        PointState::new(),
        PointState::new(),
        PointState::new(),
        PointState::new(),
        PointState::new(),
    ];

    pub(super) static PLAN: RwLock<Option<Plan>> = RwLock::new(None);

    /// The `k`-th uniform draw in `[0, 1)` of `point`'s stream under `seed`.
    fn uniform(seed: u64, point: InjectionPoint, k: u64) -> f64 {
        let stream = seed ^ (point.index() as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        let bits = splitmix64(splitmix64(stream).wrapping_add(k));
        // 53 high-quality mantissa bits → uniform in [0, 1).
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }

    /// One draw from `point`'s stream, or `None` when no plan is installed
    /// or the point is clean (clean points consume no draws, so arming one
    /// point does not perturb another's stream).
    pub(super) fn draw(point: InjectionPoint) -> Option<(FaultSpec, f64)> {
        let spec;
        let seed;
        {
            let guard = PLAN.read().unwrap_or_else(|p| p.into_inner());
            let plan = guard.as_ref()?;
            spec = plan.spec(point);
            seed = plan.seed;
        }
        if !spec.is_armed() {
            return None;
        }
        let st = &STATE[point.index()];
        let k = st.draws.fetch_add(1, Ordering::Relaxed);
        st.calls.fetch_add(1, Ordering::Relaxed);
        Some((spec, uniform(seed, point, k)))
    }

    pub(super) fn reset_state() {
        for st in &STATE {
            st.reset();
        }
    }
}

/// Install `plan`, resetting all per-point counters and PRNG streams.
/// Replaces any previously installed plan. No-op without the feature.
pub fn install(plan: Plan) {
    #[cfg(feature = "chaos")]
    {
        let mut guard = active::PLAN.write().unwrap_or_else(|p| p.into_inner());
        active::reset_state();
        *guard = Some(plan);
    }
    #[cfg(not(feature = "chaos"))]
    {
        let _ = plan;
    }
}

/// Remove the installed plan and zero all counters.
pub fn reset() {
    #[cfg(feature = "chaos")]
    {
        let mut guard = active::PLAN.write().unwrap_or_else(|p| p.into_inner());
        *guard = None;
        active::reset_state();
    }
}

/// The fault hook. With the feature off this is a constant `Ok(())`; with
/// it on, consumes one draw from `point`'s stream and either returns a
/// transient storage error, sleeps the configured latency, or passes.
#[inline]
pub fn inject(point: InjectionPoint) -> Result<()> {
    #[cfg(feature = "chaos")]
    {
        use std::sync::atomic::Ordering;
        let Some((spec, r)) = active::draw(point) else {
            return Ok(());
        };
        let st = &active::STATE[point.index()];
        if r < spec.error_rate {
            st.errors.fetch_add(1, Ordering::Relaxed);
            injected_faults().inc();
            openmldb_obs::flight::event(
                openmldb_obs::FlightEventKind::FaultInjected,
                point.index() as u32,
                0,
            );
            return Err(Error::Storage(format!(
                "transient fault injected at {}",
                point.name()
            )));
        }
        if r < spec.error_rate + spec.latency_rate {
            st.delays.fetch_add(1, Ordering::Relaxed);
            injected_faults().inc();
            openmldb_obs::flight::event(
                openmldb_obs::FlightEventKind::FaultInjected,
                point.index() as u32,
                spec.latency.as_nanos() as u64,
            );
            std::thread::sleep(spec.latency);
        }
        Ok(())
    }
    #[cfg(not(feature = "chaos"))]
    {
        let _ = point;
        Ok(())
    }
}

/// Kill hook for subscriber delivery: true means "drop this delivery".
/// Constant `false` without the feature.
#[inline]
pub fn inject_kill(point: InjectionPoint) -> bool {
    #[cfg(feature = "chaos")]
    {
        use std::sync::atomic::Ordering;
        let Some((spec, r)) = active::draw(point) else {
            return false;
        };
        if r < spec.kill_rate {
            active::STATE[point.index()]
                .kills
                .fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }
    #[cfg(not(feature = "chaos"))]
    {
        let _ = point;
        false
    }
}

/// Counter snapshot for `point`. All zeros when chaos is off.
pub fn stats(point: InjectionPoint) -> PointStats {
    #[cfg(feature = "chaos")]
    {
        use std::sync::atomic::Ordering;
        let st = &active::STATE[point.index()];
        PointStats {
            calls: st.calls.load(Ordering::Relaxed),
            errors: st.errors.load(Ordering::Relaxed),
            delays: st.delays.load(Ordering::Relaxed),
            kills: st.kills.load(Ordering::Relaxed),
        }
    }
    #[cfg(not(feature = "chaos"))]
    {
        let _ = point;
        PointStats::default()
    }
}

/// Total injected faults (errors + delays + kills) across all points.
pub fn total_faults() -> u64 {
    InjectionPoint::ALL
        .iter()
        .map(|p| {
            let s = stats(*p);
            s.errors + s.delays + s.kills
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that mutate the global plan.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn no_plan_means_no_faults() {
        let _g = lock();
        reset();
        for p in InjectionPoint::ALL {
            assert!(inject(p).is_ok());
            assert!(!inject_kill(p));
            assert_eq!(stats(p), PointStats::default());
        }
    }

    #[test]
    fn zero_rate_plan_is_clean_and_consumes_no_draws() {
        let _g = lock();
        install(Plan::new(7));
        for _ in 0..100 {
            assert!(inject(InjectionPoint::SkiplistSeek).is_ok());
        }
        assert_eq!(stats(InjectionPoint::SkiplistSeek).calls, 0);
        reset();
    }

    #[test]
    fn error_rate_one_always_fails_with_transient_error() {
        let _g = lock();
        install(Plan::new(1).error_rate(InjectionPoint::DiskRead, 1.0));
        let err = inject(InjectionPoint::DiskRead);
        if enabled() {
            let e = err.expect_err("rate 1.0 must fault");
            assert!(e.is_transient(), "{e}");
            assert!(e.to_string().contains("disk_read"), "{e}");
            assert_eq!(stats(InjectionPoint::DiskRead).errors, 1);
        } else {
            assert!(err.is_ok());
        }
        reset();
    }

    #[test]
    fn same_seed_same_outcomes() {
        let _g = lock();
        let run = |seed: u64| -> (Vec<bool>, u64) {
            install(
                Plan::new(seed)
                    .error_rate(InjectionPoint::SkiplistSeek, 0.3)
                    .kill_rate(InjectionPoint::BinlogDelivery, 0.5),
            );
            let outcomes: Vec<bool> = (0..200)
                .map(|_| inject(InjectionPoint::SkiplistSeek).is_err())
                .collect();
            let kills = (0..200)
                .filter(|_| inject_kill(InjectionPoint::BinlogDelivery))
                .count() as u64;
            reset();
            (outcomes, kills)
        };
        let (a1, k1) = run(42);
        let (a2, k2) = run(42);
        assert_eq!(a1, a2);
        assert_eq!(k1, k2);
        if enabled() {
            let (b, kb) = run(43);
            // Different seeds should give a different sequence (overwhelmingly).
            assert!(a1 != b || k1 != kb);
            assert!(a1.iter().any(|e| *e), "rate 0.3 over 200 draws must hit");
            assert!(a1.iter().any(|e| !*e), "rate 0.3 over 200 draws must miss");
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let _g = lock();
        if !enabled() {
            return;
        }
        install(Plan::new(9).error_rate(InjectionPoint::PreaggLookup, 0.2));
        let n = 5_000;
        let errors = (0..n)
            .filter(|_| inject(InjectionPoint::PreaggLookup).is_err())
            .count();
        let rate = errors as f64 / n as f64;
        assert!((0.15..0.25).contains(&rate), "observed {rate}");
        reset();
    }

    #[test]
    fn latency_injection_sleeps() {
        let _g = lock();
        if !enabled() {
            return;
        }
        install(Plan::new(3).latency(InjectionPoint::UnionDispatch, 1.0, Duration::from_millis(2)));
        let t0 = std::time::Instant::now();
        assert!(inject(InjectionPoint::UnionDispatch).is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(2));
        assert_eq!(stats(InjectionPoint::UnionDispatch).delays, 1);
        assert_eq!(total_faults(), 1);
        reset();
    }

    #[test]
    fn point_names_are_stable() {
        assert_eq!(InjectionPoint::ALL.len(), POINTS);
        let names: Vec<&str> = InjectionPoint::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "skiplist_seek",
                "binlog_append",
                "binlog_delivery",
                "replica_apply",
                "disk_read",
                "union_dispatch",
                "preagg_lookup",
                "memory_admission",
                "wal_fsync",
                "snapshot_write",
                "compiled_kernel",
            ]
        );
        for (i, p) in InjectionPoint::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn crash_schedule_is_seeded_and_bounded() {
        let s = CrashSchedule::new(42);
        let a: Vec<u64> = (0..64).map(|k| s.crash_bytes(k, 1_000)).collect();
        let b: Vec<u64> = (0..64)
            .map(|k| CrashSchedule::new(42).crash_bytes(k, 1_000))
            .collect();
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.iter().all(|&x| x <= 1_000), "points stay in range");
        let c: Vec<u64> = (0..64)
            .map(|k| CrashSchedule::new(43).crash_bytes(k, 1_000))
            .collect();
        assert_ne!(a, c, "different seeds diverge");
        assert_eq!(s.crash_bytes(7, 0), 0, "empty WAL crashes at zero");
        let tears = (0..1_000).filter(|&k| s.tear_snapshot(k)).count();
        assert!(
            (150..350).contains(&tears),
            "~25% of crashes tear a snapshot, got {tears}"
        );
    }
}
