//! Scalar built-in function implementations, including the paper's string
//! parsing (`split_by_key`) and feature-signature functions (`continuous`,
//! `discrete`, `multiclass_label`) of Section 4.1, plus the geo helpers used
//! by the GLQ workload.

use std::sync::OnceLock;

use openmldb_sql::functions::{FunctionDef, BUILTINS};
use openmldb_types::{Error, Result, Value};

/// Compile-time identity of a scalar builtin.
///
/// Resolved from a name exactly once — at plan specialization, or lazily via
/// [`resolve_def`] for the interpreted path — so per-row dispatch is an
/// integer jump table instead of a string match per evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFuncId {
    IfNull,
    If,
    Abs,
    Ceil,
    Floor,
    Round,
    Sqrt,
    Log,
    Exp,
    Pow,
    Upper,
    Lower,
    CharLength,
    Substr,
    Concat,
    IsIn,
    SplitByKey,
    SplitByValue,
    MulticlassLabel,
    BinaryLabel,
    Continuous,
    Discrete,
    Hash64,
    Day,
    Hour,
    Minute,
    GeoDistance,
    GeoHash,
    Sin,
    Cos,
    Tan,
    Atan,
    Log2,
    Log10,
    Truncate,
    Sign,
    Greatest,
    Least,
    Degrees,
    Radians,
    Trim,
    Ltrim,
    Rtrim,
    Replace,
    Reverse,
    Strcmp,
    StartsWith,
    EndsWith,
    Lcase,
    Ucase,
    Lpad,
    Rpad,
    StringCast,
    Year,
    Month,
    DayOfMonth,
    DayOfWeek,
    Week,
    Double,
    Bigint,
}

/// Resolve a builtin name to its dispatch id (`None` for names this library
/// does not implement — calling those is a runtime [`Error::Eval`]).
pub fn from_name(name: &str) -> Option<ScalarFuncId> {
    use ScalarFuncId::*;
    Some(match name {
        "if_null" => IfNull,
        "if" => If,
        "abs" => Abs,
        "ceil" => Ceil,
        "floor" => Floor,
        "round" => Round,
        "sqrt" => Sqrt,
        "log" => Log,
        "exp" => Exp,
        "pow" => Pow,
        "upper" => Upper,
        "lower" => Lower,
        "char_length" => CharLength,
        "substr" => Substr,
        "concat" => Concat,
        "is_in" => IsIn,
        "split_by_key" => SplitByKey,
        "split_by_value" => SplitByValue,
        "multiclass_label" => MulticlassLabel,
        "binary_label" => BinaryLabel,
        "continuous" => Continuous,
        "discrete" => Discrete,
        "hash64" => Hash64,
        "day" => Day,
        "hour" => Hour,
        "minute" => Minute,
        "geo_distance" => GeoDistance,
        "geo_hash" => GeoHash,
        "sin" => Sin,
        "cos" => Cos,
        "tan" => Tan,
        "atan" => Atan,
        "log2" => Log2,
        "log10" => Log10,
        "truncate" => Truncate,
        "sign" => Sign,
        "greatest" => Greatest,
        "least" => Least,
        "degrees" => Degrees,
        "radians" => Radians,
        "trim" => Trim,
        "ltrim" => Ltrim,
        "rtrim" => Rtrim,
        "replace" => Replace,
        "reverse" => Reverse,
        "strcmp" => Strcmp,
        "starts_with" => StartsWith,
        "ends_with" => EndsWith,
        "lcase" => Lcase,
        "ucase" => Ucase,
        "lpad" => Lpad,
        "rpad" => Rpad,
        "string" => StringCast,
        "year" => Year,
        "month" => Month,
        "dayofmonth" => DayOfMonth,
        "dayofweek" => DayOfWeek,
        "week" => Week,
        "double" => Double,
        "bigint" => Bigint,
        _ => return None,
    })
}

/// Resolve a planner-bound `&'static FunctionDef` to its dispatch id in
/// O(1), via the def's position within the static `BUILTINS` table (the
/// planner only ever binds entries of that table, so the pointer offset is
/// the ordinal). Defs from elsewhere fall back to the name lookup.
pub fn resolve_def(def: &'static FunctionDef) -> Option<ScalarFuncId> {
    static TABLE: OnceLock<Vec<Option<ScalarFuncId>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| BUILTINS.iter().map(|d| from_name(d.name)).collect());
    let base = BUILTINS.as_ptr() as usize;
    let p = def as *const FunctionDef as usize;
    let size = std::mem::size_of::<FunctionDef>();
    if p < base || !(p - base).is_multiple_of(size) {
        return from_name(def.name);
    }
    match table.get((p - base) / size) {
        Some(id) => *id,
        None => from_name(def.name),
    }
}

/// Dispatch a scalar builtin by name. NULL handling is per-function: most
/// propagate NULL, `if_null` exists to replace it.
///
/// Cold-path entry point: resolves the name per call. Per-row evaluation
/// goes through [`call_id`] with an id resolved once at compile time.
pub fn call(name: &str, args: &[Value]) -> Result<Value> {
    match from_name(name) {
        Some(id) => call_id(id, args),
        None => Err(Error::Eval(format!("unknown scalar function `{name}`"))),
    }
}

// HOT: per-row scalar dispatch — an integer match, no string comparison.
/// Dispatch a scalar builtin by its pre-resolved id.
pub fn call_id(id: ScalarFuncId, args: &[Value]) -> Result<Value> {
    use ScalarFuncId::*;
    // Functions with explicit NULL semantics first.
    match id {
        IfNull => {
            return Ok(if args[0].is_null() {
                args[1].clone()
            } else {
                args[0].clone()
            })
        }
        If => {
            return Ok(if args[0].as_bool()? {
                args[1].clone()
            } else {
                args[2].clone()
            })
        }
        _ => {}
    }
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    Ok(match id {
        IfNull | If => unreachable!("handled above"),
        Abs => match &args[0] {
            Value::Int(v) => Value::Int(v.abs()),
            Value::Bigint(v) => Value::Bigint(v.abs()),
            Value::Float(v) => Value::Float(v.abs()),
            v => Value::Double(v.as_f64()?.abs()),
        },
        Ceil => Value::Bigint(args[0].as_f64()?.ceil() as i64),
        Floor => Value::Bigint(args[0].as_f64()?.floor() as i64),
        Round => Value::Bigint(args[0].as_f64()?.round() as i64),
        Sqrt => Value::Double(args[0].as_f64()?.sqrt()),
        Log => Value::Double(args[0].as_f64()?.ln()),
        Exp => Value::Double(args[0].as_f64()?.exp()),
        Pow => Value::Double(args[0].as_f64()?.powf(args[1].as_f64()?)),
        Upper => Value::string(args[0].as_str()?.to_uppercase()),
        Lower => Value::string(args[0].as_str()?.to_lowercase()),
        CharLength => Value::Int(args[0].as_str()?.chars().count() as i32),
        Substr => {
            let s = args[0].as_str()?;
            let start = (args[1].as_i64()?.max(1) - 1) as usize; // SQL is 1-based
            let len = match args.get(2) {
                Some(v) => v.as_i64()?.max(0) as usize,
                None => usize::MAX,
            };
            Value::string(s.chars().skip(start).take(len).collect::<String>())
        }
        Concat => {
            let mut out = String::new();
            for a in args {
                match a {
                    Value::Str(s) => out.push_str(s),
                    other => out.push_str(&other.to_string()),
                }
            }
            Value::string(out)
        }
        IsIn => {
            let needle = args[0].as_str()?;
            let hay = args[1].as_str()?;
            Value::Bool(hay.split(',').any(|p| p.trim() == needle))
        }
        SplitByKey => split_by_key(args, true)?,
        SplitByValue => split_by_key(args, false)?,
        MulticlassLabel => Value::Bigint(args[0].as_i64()?),
        BinaryLabel => Value::Int(
            if args[0]
                .as_bool()
                .or_else(|_| args[0].as_i64().map(|v| v != 0))?
            {
                1
            } else {
                0
            },
        ),
        Continuous => Value::Double(args[0].as_f64()?),
        Discrete => {
            // Feature-hash a value into `dim` buckets (default 1 << 20),
            // the high-dimensional sparse encoding of Section 4.1.
            let dim = match args.get(1) {
                Some(v) => v.as_i64()?.max(1),
                None => 1 << 20,
            };
            Value::Bigint((hash_value(&args[0]) % dim as u64) as i64)
        }
        Hash64 => Value::Bigint(hash_value(&args[0]) as i64),
        Day => Value::Int(((args[0].as_i64()? / 86_400_000) % 365) as i32),
        Hour => Value::Int(((args[0].as_i64()? / 3_600_000) % 24) as i32),
        Minute => Value::Int(((args[0].as_i64()? / 60_000) % 60) as i32),
        GeoDistance => {
            let (lat1, lon1) = (args[0].as_f64()?, args[1].as_f64()?);
            let (lat2, lon2) = (args[2].as_f64()?, args[3].as_f64()?);
            Value::Double(haversine_m(lat1, lon1, lat2, lon2))
        }
        GeoHash => {
            let (lat, lon) = (args[0].as_f64()?, args[1].as_f64()?);
            let precision = args[2].as_i64()?.clamp(1, 30) as u32;
            Value::Bigint(geo_hash(lat, lon, precision))
        }
        // ---- additional math -------------------------------------------
        Sin => Value::Double(args[0].as_f64()?.sin()),
        Cos => Value::Double(args[0].as_f64()?.cos()),
        Tan => Value::Double(args[0].as_f64()?.tan()),
        Atan => Value::Double(args[0].as_f64()?.atan()),
        Log2 => Value::Double(args[0].as_f64()?.log2()),
        Log10 => Value::Double(args[0].as_f64()?.log10()),
        Truncate => {
            let d = args[1].as_i64()?.clamp(0, 18) as u32;
            let scale = 10f64.powi(d as i32);
            Value::Double((args[0].as_f64()? * scale).trunc() / scale)
        }
        Sign => Value::Int({
            let v = args[0].as_f64()?;
            if v > 0.0 {
                1
            } else if v < 0.0 {
                -1
            } else {
                0
            }
        }),
        Greatest => args
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null),
        Least => args
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null),
        Degrees => Value::Double(args[0].as_f64()?.to_degrees()),
        Radians => Value::Double(args[0].as_f64()?.to_radians()),
        // ---- additional strings -----------------------------------------
        Trim => Value::string(args[0].as_str()?.trim()),
        Ltrim => Value::string(args[0].as_str()?.trim_start()),
        Rtrim => Value::string(args[0].as_str()?.trim_end()),
        Replace => Value::string(
            args[0]
                .as_str()?
                .replace(args[1].as_str()?, args[2].as_str()?),
        ),
        Reverse => Value::string(args[0].as_str()?.chars().rev().collect::<String>()),
        Strcmp => Value::Int(match args[0].as_str()?.cmp(args[1].as_str()?) {
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Greater => 1,
        }),
        StartsWith => Value::Bool(args[0].as_str()?.starts_with(args[1].as_str()?)),
        EndsWith => Value::Bool(args[0].as_str()?.ends_with(args[1].as_str()?)),
        Lcase => Value::string(args[0].as_str()?.to_lowercase()),
        Ucase => Value::string(args[0].as_str()?.to_uppercase()),
        Lpad | Rpad => {
            let s = args[0].as_str()?;
            let target = args[1].as_i64()?.max(0) as usize;
            let pad = args[2].as_str()?;
            let current = s.chars().count();
            if current >= target || pad.is_empty() {
                Value::string(s.chars().take(target).collect::<String>())
            } else {
                let fill: String = pad.chars().cycle().take(target - current).collect();
                if id == Lpad {
                    Value::string(format!("{fill}{s}"))
                } else {
                    Value::string(format!("{s}{fill}"))
                }
            }
        }
        StringCast => Value::string(args[0].to_string()),
        // ---- additional time (civil-calendar on epoch millis, UTC) ------
        Year => Value::Int(civil_from_ms(args[0].as_i64()?).0),
        Month => Value::Int(civil_from_ms(args[0].as_i64()?).1),
        DayOfMonth => Value::Int(civil_from_ms(args[0].as_i64()?).2),
        DayOfWeek => {
            // 1 = Sunday .. 7 = Saturday (MySQL convention); epoch day 0
            // (1970-01-01) was a Thursday.
            let days = args[0].as_i64()?.div_euclid(86_400_000);
            Value::Int(((days + 4).rem_euclid(7) + 1) as i32)
        }
        Week => {
            let days = args[0].as_i64()?.div_euclid(86_400_000);
            Value::Int(((days + 3).rem_euclid(371) / 7 + 1).min(53) as i32)
        }
        // ---- conversions --------------------------------------------------
        Double => Value::Double(match &args[0] {
            Value::Str(s) => s.trim().parse::<f64>().unwrap_or(f64::NAN),
            other => other.as_f64()?,
        }),
        Bigint => Value::Bigint(match &args[0] {
            Value::Str(s) => s
                .trim()
                .parse::<i64>()
                .map_err(|e| Error::Eval(format!("cannot cast `{s}` to BIGINT: {e}")))?,
            other => other.as_i64().unwrap_or(other.as_f64()? as i64),
        }),
    })
}

/// `split_by_key(input, delim, kv_delim)` splits `input` by `delim`, treats
/// each part as `key<kv_delim>value`, and returns the keys (or values) joined
/// by commas. Example: `split_by_key("a:1|b:2", "|", ":")` → `"a,b"`.
fn split_by_key(args: &[Value], keys: bool) -> Result<Value> {
    let input = args[0].as_str()?;
    let delim = args[1].as_str()?;
    let kv_delim = args[2].as_str()?;
    if delim.is_empty() || kv_delim.is_empty() {
        return Err(Error::Eval(
            "split_by_key delimiters must be non-empty".into(),
        ));
    }
    let mut out = Vec::new();
    for part in input.split(delim) {
        if let Some((k, v)) = part.split_once(kv_delim) {
            out.push(if keys { k } else { v });
        }
    }
    Ok(Value::string(out.join(",")))
}

/// Convert epoch milliseconds (UTC) to `(year, month, day)` using the civil
/// calendar algorithm (Howard Hinnant's `civil_from_days`).
pub fn civil_from_ms(ms: i64) -> (i32, i32, i32) {
    let z = ms.div_euclid(86_400_000) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    (y as i32, m as i32, d as i32)
}

/// FNV-1a over the canonical rendering — stable across runs (unlike
/// `DefaultHasher`, which is seeded), so feature hashes are reproducible.
pub fn hash_value(v: &Value) -> u64 {
    let rendered = match v {
        Value::Str(s) => s.to_string(),
        other => other.to_string(),
    };
    fnv1a(rendered.as_bytes())
}

/// Stable FNV-1a hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Great-circle distance in meters.
pub fn haversine_m(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    const R: f64 = 6_371_000.0;
    let (p1, p2) = (lat1.to_radians(), lat2.to_radians());
    let dp = (lat2 - lat1).to_radians();
    let dl = (lon2 - lon1).to_radians();
    let a = (dp / 2.0).sin().powi(2) + p1.cos() * p2.cos() * (dl / 2.0).sin().powi(2);
    2.0 * R * a.sqrt().asin()
}

/// Interleaved-bit geo cell id at `precision` bits per axis (geohash-like).
/// Higher precision → smaller cells → more cells per dataset.
pub fn geo_hash(lat: f64, lon: f64, precision: u32) -> i64 {
    let lat_n = ((lat + 90.0) / 180.0).clamp(0.0, 1.0);
    let lon_n = ((lon + 180.0) / 360.0).clamp(0.0, 1.0);
    let scale = (1u64 << precision) as f64;
    let lat_b = (lat_n * scale).min(scale - 1.0) as u64;
    let lon_b = (lon_n * scale).min(scale - 1.0) as u64;
    let mut out: u64 = 0;
    for i in 0..precision {
        out |= ((lat_b >> i) & 1) << (2 * i);
        out |= ((lon_b >> i) & 1) << (2 * i + 1);
    }
    out as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn math_functions() {
        assert_eq!(call("abs", &[Value::Int(-3)]).unwrap(), Value::Int(3));
        assert_eq!(
            call("ceil", &[Value::Double(1.2)]).unwrap(),
            Value::Bigint(2)
        );
        assert_eq!(
            call("floor", &[Value::Double(1.8)]).unwrap(),
            Value::Bigint(1)
        );
        assert_eq!(
            call("pow", &[Value::Int(2), Value::Int(10)]).unwrap(),
            Value::Double(1024.0)
        );
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            call("upper", &[Value::string("ab")]).unwrap(),
            Value::string("AB")
        );
        assert_eq!(
            call(
                "substr",
                &[Value::string("hello"), Value::Int(2), Value::Int(3)]
            )
            .unwrap(),
            Value::string("ell")
        );
        assert_eq!(
            call("concat", &[Value::string("a"), Value::Int(1)]).unwrap(),
            Value::string("a1")
        );
        assert_eq!(
            call("char_length", &[Value::string("héllo")]).unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn split_by_key_parses_kv_pairs() {
        let out = call(
            "split_by_key",
            &[
                Value::string("shoes:20|bags:35|shoes:10"),
                Value::string("|"),
                Value::string(":"),
            ],
        )
        .unwrap();
        assert_eq!(out, Value::string("shoes,bags,shoes"));
        let out = call(
            "split_by_value",
            &[
                Value::string("a:1|b:2"),
                Value::string("|"),
                Value::string(":"),
            ],
        )
        .unwrap();
        assert_eq!(out, Value::string("1,2"));
        // Segments without the kv delimiter are skipped.
        let out = call(
            "split_by_key",
            &[
                Value::string("a:1|oops|b:2"),
                Value::string("|"),
                Value::string(":"),
            ],
        )
        .unwrap();
        assert_eq!(out, Value::string("a,b"));
    }

    #[test]
    fn feature_signatures() {
        assert_eq!(
            call("continuous", &[Value::Int(7)]).unwrap(),
            Value::Double(7.0)
        );
        let d1 = call("discrete", &[Value::string("product_123")]).unwrap();
        let d2 = call("discrete", &[Value::string("product_123")]).unwrap();
        assert_eq!(d1, d2, "feature hashing is deterministic");
        let Value::Bigint(b) = call("discrete", &[Value::string("x"), Value::Int(100)]).unwrap()
        else {
            panic!()
        };
        assert!((0..100).contains(&b), "hash respects dimension bound");
        assert_eq!(
            call("binary_label", &[Value::Int(5)]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            call("binary_label", &[Value::Int(0)]).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn null_propagation_and_if_null() {
        assert_eq!(call("abs", &[Value::Null]).unwrap(), Value::Null);
        assert_eq!(
            call("if_null", &[Value::Null, Value::Int(9)]).unwrap(),
            Value::Int(9)
        );
        assert_eq!(
            call("if_null", &[Value::Int(1), Value::Int(9)]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            call("if", &[Value::Bool(true), Value::Int(1), Value::Int(2)]).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn geo_functions() {
        // Beijing → Shanghai is about 1,070 km.
        let d = call(
            "geo_distance",
            &[
                Value::Double(39.9042),
                Value::Double(116.4074),
                Value::Double(31.2304),
                Value::Double(121.4737),
            ],
        )
        .unwrap();
        let Value::Double(m) = d else { panic!() };
        assert!((1_000_000.0..1_150_000.0).contains(&m), "{m}");

        // Same point → same cell at any precision; nearby points separate at
        // high precision.
        let h1 = geo_hash(31.0, 121.0, 20);
        let h2 = geo_hash(31.0, 121.0, 20);
        assert_eq!(h1, h2);
        assert_ne!(geo_hash(31.0, 121.0, 20), geo_hash(31.5, 121.0, 20));
        // Coarser precision merges nearby points.
        assert_eq!(
            geo_hash(31.0001, 121.0001, 3),
            geo_hash(31.0002, 121.0002, 3)
        );
    }

    #[test]
    fn stable_hash_is_stable() {
        assert_eq!(fnv1a(b"hello"), fnv1a(b"hello"));
        assert_ne!(fnv1a(b"hello"), fnv1a(b"hellp"));
    }

    #[test]
    fn extended_math_and_strings() {
        assert_eq!(
            call("sign", &[Value::Double(-3.0)]).unwrap(),
            Value::Int(-1)
        );
        assert_eq!(call("sign", &[Value::Int(0)]).unwrap(), Value::Int(0));
        assert_eq!(
            call("truncate", &[Value::Double(9.87654), Value::Int(2)]).unwrap(),
            Value::Double(9.87)
        );
        assert_eq!(
            call("greatest", &[Value::Int(3), Value::Int(9), Value::Int(5)]).unwrap(),
            Value::Int(9)
        );
        assert_eq!(
            call("least", &[Value::Double(1.5), Value::Double(-2.0)]).unwrap(),
            Value::Double(-2.0)
        );
        assert_eq!(
            call("trim", &[Value::string("  hi  ")]).unwrap(),
            Value::string("hi")
        );
        assert_eq!(
            call("ltrim", &[Value::string("  hi")]).unwrap(),
            Value::string("hi")
        );
        assert_eq!(
            call(
                "replace",
                &[
                    Value::string("a-b-c"),
                    Value::string("-"),
                    Value::string("+")
                ]
            )
            .unwrap(),
            Value::string("a+b+c")
        );
        assert_eq!(
            call("reverse", &[Value::string("abc")]).unwrap(),
            Value::string("cba")
        );
        assert_eq!(
            call("strcmp", &[Value::string("a"), Value::string("b")]).unwrap(),
            Value::Int(-1)
        );
        assert_eq!(
            call(
                "starts_with",
                &[Value::string("openmldb"), Value::string("open")]
            )
            .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            call(
                "lpad",
                &[Value::string("7"), Value::Int(3), Value::string("0")]
            )
            .unwrap(),
            Value::string("007")
        );
        assert_eq!(
            call(
                "rpad",
                &[Value::string("ab"), Value::Int(4), Value::string("xy")]
            )
            .unwrap(),
            Value::string("abxy")
        );
        assert_eq!(
            call(
                "lpad",
                &[Value::string("hello"), Value::Int(3), Value::string("0")]
            )
            .unwrap(),
            Value::string("hel"),
            "lpad truncates when over target"
        );
    }

    #[test]
    fn calendar_functions() {
        // 2021-06-15T12:00:00Z = 1623758400000 ms; a Tuesday.
        let ts = Value::Timestamp(1_623_758_400_000);
        assert_eq!(
            call("year", std::slice::from_ref(&ts)).unwrap(),
            Value::Int(2021)
        );
        assert_eq!(
            call("month", std::slice::from_ref(&ts)).unwrap(),
            Value::Int(6)
        );
        assert_eq!(
            call("dayofmonth", std::slice::from_ref(&ts)).unwrap(),
            Value::Int(15)
        );
        assert_eq!(
            call("dayofweek", &[ts]).unwrap(),
            Value::Int(3),
            "Tuesday = 3"
        );
        // Epoch start.
        let epoch = Value::Timestamp(0);
        assert_eq!(
            call("year", std::slice::from_ref(&epoch)).unwrap(),
            Value::Int(1970)
        );
        assert_eq!(
            call("month", std::slice::from_ref(&epoch)).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            call("dayofmonth", std::slice::from_ref(&epoch)).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            call("dayofweek", &[epoch]).unwrap(),
            Value::Int(5),
            "Thursday = 5"
        );
        // Pre-epoch timestamps work (euclidean division).
        assert_eq!(
            call("year", &[Value::Timestamp(-86_400_000)]).unwrap(),
            Value::Int(1969)
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(
            call("double", &[Value::string("2.5")]).unwrap(),
            Value::Double(2.5)
        );
        assert_eq!(
            call("bigint", &[Value::string(" 42 ")]).unwrap(),
            Value::Bigint(42)
        );
        assert!(call("bigint", &[Value::string("nope")]).is_err());
        assert_eq!(
            call("string", &[Value::Int(7)]).unwrap(),
            Value::string("7")
        );
        assert_eq!(
            call("bigint", &[Value::Double(3.9)]).unwrap(),
            Value::Bigint(3)
        );
    }

    #[test]
    fn is_in_membership() {
        assert_eq!(
            call("is_in", &[Value::string("b"), Value::string("a, b, c")]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            call("is_in", &[Value::string("z"), Value::string("a,b")]).unwrap(),
            Value::Bool(false)
        );
    }
}
