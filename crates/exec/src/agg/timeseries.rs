//! Order-dependent time-series aggregates (paper Section 4.1, category 3):
//! `drawdown`, `ew_avg`, `lag`, `first_value`.
//!
//! These depend on chronological feed order, so they are neither retractable
//! nor mergeable — queries using them fall back to window scans (which the
//! pre-ranked skiplist of Section 7.2 keeps cheap) instead of
//! pre-aggregation.

use std::collections::VecDeque;

use openmldb_types::{Result, Value};

use super::Aggregator;

/// Maximum decline percentage from a running peak to a subsequent trough —
/// the quantitative-trading loss measure from the paper.
///
/// Fed oldest → newest; output in `[0, 1]`.
#[derive(Debug, Default, Clone)]
pub struct DrawdownAgg {
    peak: Option<f64>,
    max_drawdown: f64,
    saw_value: bool,
}

impl Aggregator for DrawdownAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        if args[0].is_null() {
            return Ok(());
        }
        let v = args[0].as_f64()?;
        self.saw_value = true;
        match &mut self.peak {
            None => self.peak = Some(v),
            Some(p) => {
                if v > *p {
                    *p = v;
                } else if *p > 0.0 {
                    self.max_drawdown = self.max_drawdown.max((*p - v) / *p);
                }
            }
        }
        Ok(())
    }

    fn output(&self) -> Value {
        if self.saw_value {
            Value::Double(self.max_drawdown)
        } else {
            Value::Null
        }
    }

    fn reset(&mut self) {
        *self = DrawdownAgg::default();
    }
}

/// Exponentially weighted average with smoothing factor `alpha`:
/// `ew = alpha * v + (1 - alpha) * ew`, fed oldest → newest so recent values
/// weigh more.
#[derive(Debug, Clone)]
pub struct EwAvgAgg {
    alpha: f64,
    current: Option<f64>,
}

impl EwAvgAgg {
    pub fn new(alpha: f64) -> Self {
        EwAvgAgg {
            alpha,
            current: None,
        }
    }
}

impl Aggregator for EwAvgAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        if args[0].is_null() {
            return Ok(());
        }
        let v = args[0].as_f64()?;
        self.current = Some(match self.current {
            None => v,
            Some(ew) => self.alpha * v + (1.0 - self.alpha) * ew,
        });
        Ok(())
    }

    fn output(&self) -> Value {
        self.current.map(Value::Double).unwrap_or(Value::Null)
    }

    fn reset(&mut self) {
        self.current = None;
    }
}

/// `lag(col, n)`: the value `n` rows before the newest row (lag(col, 0) is
/// the newest row's value).
#[derive(Debug, Clone)]
pub struct LagAgg {
    n: usize,
    buf: VecDeque<Value>,
}

impl LagAgg {
    pub fn new(n: usize) -> Self {
        LagAgg {
            n,
            buf: VecDeque::with_capacity(n + 1),
        }
    }
}

impl Aggregator for LagAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        if self.buf.len() > self.n {
            self.buf.pop_front();
        }
        self.buf.push_back(args[0].clone());
        Ok(())
    }

    fn output(&self) -> Value {
        if self.buf.len() > self.n {
            self.buf[self.buf.len() - 1 - self.n].clone()
        } else {
            Value::Null
        }
    }

    fn reset(&mut self) {
        self.buf.clear();
    }
}

/// The newest row's value (windows are fed oldest → newest; the final update
/// is the most recent tuple, which in request mode is the request row).
#[derive(Debug, Default, Clone)]
pub struct FirstValueAgg {
    latest: Option<Value>,
}

impl Aggregator for FirstValueAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        self.latest = Some(args[0].clone());
        Ok(())
    }

    fn output(&self) -> Value {
        self.latest.clone().unwrap_or(Value::Null)
    }

    fn reset(&mut self) {
        self.latest = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(agg: &mut dyn Aggregator, vals: &[f64]) {
        for v in vals {
            agg.update(&[Value::Double(*v)]).unwrap();
        }
    }

    #[test]
    fn drawdown_peak_to_trough() {
        let mut d = DrawdownAgg::default();
        // Peak 100, trough 60 → 40% drawdown; later peak 120 trough 90 → 25%.
        feed(&mut d, &[80.0, 100.0, 60.0, 120.0, 90.0]);
        let Value::Double(v) = d.output() else {
            panic!()
        };
        assert!((v - 0.4).abs() < 1e-9, "{v}");
    }

    #[test]
    fn drawdown_monotone_rise_is_zero() {
        let mut d = DrawdownAgg::default();
        feed(&mut d, &[1.0, 2.0, 3.0]);
        assert_eq!(d.output(), Value::Double(0.0));
        assert_eq!(DrawdownAgg::default().output(), Value::Null);
    }

    #[test]
    fn ew_avg_weights_recent_values() {
        let mut e = EwAvgAgg::new(0.5);
        feed(&mut e, &[0.0, 10.0]);
        assert_eq!(e.output(), Value::Double(5.0));
        e.update(&[Value::Double(10.0)]).unwrap();
        assert_eq!(e.output(), Value::Double(7.5));
        // alpha = 1 → only the latest value matters.
        let mut last = EwAvgAgg::new(1.0);
        feed(&mut last, &[1.0, 2.0, 99.0]);
        assert_eq!(last.output(), Value::Double(99.0));
    }

    #[test]
    fn lag_returns_nth_previous() {
        let mut l = LagAgg::new(2);
        assert_eq!(l.output(), Value::Null);
        for v in [1, 2, 3, 4] {
            l.update(&[Value::Int(v)]).unwrap();
        }
        assert_eq!(l.output(), Value::Int(2), "two rows before the newest (4)");
        let mut l0 = LagAgg::new(0);
        l0.update(&[Value::Int(7)]).unwrap();
        assert_eq!(l0.output(), Value::Int(7));
    }

    #[test]
    fn first_value_is_newest() {
        let mut f = FirstValueAgg::default();
        for v in [1, 2, 3] {
            f.update(&[Value::Int(v)]).unwrap();
        }
        assert_eq!(f.output(), Value::Int(3));
    }

    #[test]
    fn timeseries_aggs_not_invertible_or_mergeable() {
        let d = DrawdownAgg::default();
        assert!(!d.invertible());
        assert!(d.partial_state().is_none());
        let e = EwAvgAgg::new(0.5);
        assert!(!e.invertible());
        assert!(e.partial_state().is_none());
    }
}
