//! Frequency- and category-based aggregates (paper Section 4.1, categories
//! 1 and 2): `distinct_count`, `topn_frequency`, `top`, and the
//! `*_cate_where` family, plus the GLQ geo-grid aggregate.
//!
//! All of these keep count-maps, which makes them retractable (decrement)
//! and mergeable (add count-maps) — so they work with both the
//! subtract-and-evict incremental scheme and long-window pre-aggregation.

use std::collections::HashMap;

use openmldb_types::{Error, KeyValue, Result, Value};

use crate::scalar::geo_hash;

use super::{AggState, Aggregator, OrdVal};

/// Number of distinct non-null values.
#[derive(Debug, Default, Clone)]
pub struct DistinctCountAgg {
    counts: HashMap<KeyValue, u64>,
}

impl Aggregator for DistinctCountAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        if !args[0].is_null() {
            *self.counts.entry(KeyValue::from(&args[0])).or_insert(0) += 1;
        }
        Ok(())
    }

    fn retract(&mut self, args: &[Value]) -> Result<()> {
        if args[0].is_null() {
            return Ok(());
        }
        let k = KeyValue::from(&args[0]);
        if let Some(c) = self.counts.get_mut(&k) {
            *c -= 1;
            if *c == 0 {
                self.counts.remove(&k);
            }
        }
        Ok(())
    }

    fn invertible(&self) -> bool {
        true
    }

    fn output(&self) -> Value {
        Value::Bigint(self.counts.len() as i64)
    }

    fn partial_state(&self) -> Option<AggState> {
        Some(AggState::Counts(self.counts.clone()))
    }

    fn merge_state(&mut self, state: &AggState) -> Result<()> {
        let AggState::Counts(m) = state else {
            return Err(Error::Eval(
                "distinct_count expects a Counts partial state".into(),
            ));
        };
        for (k, c) in m {
            *self.counts.entry(k.clone()).or_insert(0) += c;
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.counts.clear();
    }
}

/// `topn_frequency(col, n)`: the `n` most frequent values, joined by commas,
/// ordered by descending frequency then ascending key for determinism.
#[derive(Debug, Clone)]
pub struct TopNFrequencyAgg {
    counts: HashMap<KeyValue, u64>,
    n: usize,
}

impl TopNFrequencyAgg {
    pub fn new(n: usize) -> Self {
        TopNFrequencyAgg {
            counts: HashMap::new(),
            n,
        }
    }
}

impl Aggregator for TopNFrequencyAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        if !args[0].is_null() {
            *self.counts.entry(KeyValue::from(&args[0])).or_insert(0) += 1;
        }
        Ok(())
    }

    fn retract(&mut self, args: &[Value]) -> Result<()> {
        if args[0].is_null() {
            return Ok(());
        }
        let k = KeyValue::from(&args[0]);
        if let Some(c) = self.counts.get_mut(&k) {
            *c -= 1;
            if *c == 0 {
                self.counts.remove(&k);
            }
        }
        Ok(())
    }

    fn invertible(&self) -> bool {
        true
    }

    fn output(&self) -> Value {
        let mut entries: Vec<(&KeyValue, &u64)> = self.counts.iter().collect();
        entries.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        let joined = entries
            .into_iter()
            .take(self.n)
            .map(|(k, _)| k.render())
            .collect::<Vec<_>>()
            .join(",");
        Value::string(joined)
    }

    fn partial_state(&self) -> Option<AggState> {
        Some(AggState::Counts(self.counts.clone()))
    }

    fn merge_state(&mut self, state: &AggState) -> Result<()> {
        let AggState::Counts(m) = state else {
            return Err(Error::Eval(
                "topn_frequency expects a Counts partial state".into(),
            ));
        };
        for (k, c) in m {
            *self.counts.entry(k.clone()).or_insert(0) += c;
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.counts.clear();
    }
}

/// `top(col, n)`: the `n` largest values, descending, joined by commas.
#[derive(Debug, Clone)]
pub struct TopAgg {
    values: std::collections::BTreeMap<OrdVal, u64>,
    n: usize,
}

impl TopAgg {
    pub fn new(n: usize) -> Self {
        TopAgg {
            values: std::collections::BTreeMap::new(),
            n,
        }
    }
}

impl Aggregator for TopAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        if !args[0].is_null() {
            *self.values.entry(OrdVal(args[0].clone())).or_insert(0) += 1;
        }
        Ok(())
    }

    fn retract(&mut self, args: &[Value]) -> Result<()> {
        if args[0].is_null() {
            return Ok(());
        }
        let k = OrdVal(args[0].clone());
        if let Some(c) = self.values.get_mut(&k) {
            *c -= 1;
            if *c == 0 {
                self.values.remove(&k);
            }
        }
        Ok(())
    }

    fn invertible(&self) -> bool {
        true
    }

    fn output(&self) -> Value {
        let mut out = Vec::with_capacity(self.n);
        'outer: for (v, c) in self.values.iter().rev() {
            for _ in 0..*c {
                if out.len() == self.n {
                    break 'outer;
                }
                out.push(v.0.to_string());
            }
        }
        Value::string(out.join(","))
    }

    /// Only the top `n` values: `top_n(A ∪ B) = top_n(top_n(A) ∪ top_n(B))`,
    /// so pre-aggregation buckets carry at most `n` entries.
    fn partial_state(&self) -> Option<AggState> {
        let mut kept = 0u64;
        let mut out = Vec::new();
        for (v, c) in self.values.iter().rev() {
            if kept >= self.n as u64 {
                break;
            }
            let take = (*c).min(self.n as u64 - kept);
            out.push((v.0.clone(), take));
            kept += take;
        }
        Some(AggState::ValueCounts(out))
    }

    fn merge_state(&mut self, state: &AggState) -> Result<()> {
        let AggState::ValueCounts(vals) = state else {
            return Err(Error::Eval(
                "top expects a ValueCounts partial state".into(),
            ));
        };
        for (v, c) in vals {
            *self.values.entry(OrdVal(v.clone())).or_insert(0) += c;
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.values.clear();
    }
}

/// Which statistic the category-keyed aggregate reports per category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CateVariant {
    Avg,
    Sum,
    Count,
}

/// The `avg_cate_where(value, condition, category)` family: group rows by a
/// category key and report a per-category statistic, rendered as
/// `"cate1:stat,cate2:stat"` with categories sorted for determinism. This is
/// the paper's worked example of a feature that would need CASE/WHERE/ORDER
/// gymnastics in standard SQL.
#[derive(Debug, Clone)]
pub struct AvgCateAgg {
    sums: HashMap<KeyValue, (f64, i64)>,
    variant: CateVariant,
    conditional: bool,
}

impl AvgCateAgg {
    pub fn new(variant: CateVariant, conditional: bool) -> Self {
        AvgCateAgg {
            sums: HashMap::new(),
            variant,
            conditional,
        }
    }

    /// arg layout: `[value, condition, category]` or `[value, category]`.
    fn split<'v>(&self, args: &'v [Value]) -> Result<(&'v Value, bool, &'v Value)> {
        if self.conditional {
            Ok((&args[0], args[1].as_bool()?, &args[2]))
        } else {
            Ok((&args[0], true, &args[1]))
        }
    }
}

impl Aggregator for AvgCateAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        let (value, cond, cate) = self.split(args)?;
        if !cond || cate.is_null() || value.is_null() {
            return Ok(());
        }
        let entry = self.sums.entry(KeyValue::from(cate)).or_insert((0.0, 0));
        entry.0 += value.as_f64()?;
        entry.1 += 1;
        Ok(())
    }

    fn retract(&mut self, args: &[Value]) -> Result<()> {
        let (value, cond, cate) = self.split(args)?;
        if !cond || cate.is_null() || value.is_null() {
            return Ok(());
        }
        let k = KeyValue::from(cate);
        if let Some(entry) = self.sums.get_mut(&k) {
            entry.0 -= value.as_f64()?;
            entry.1 -= 1;
            if entry.1 <= 0 {
                self.sums.remove(&k);
            }
        }
        Ok(())
    }

    fn invertible(&self) -> bool {
        true
    }

    fn output(&self) -> Value {
        let mut entries: Vec<(&KeyValue, &(f64, i64))> = self.sums.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let joined = entries
            .into_iter()
            .map(|(k, (sum, count))| {
                let stat = match self.variant {
                    CateVariant::Avg => sum / *count as f64,
                    CateVariant::Sum => *sum,
                    CateVariant::Count => *count as f64,
                };
                format!("{}:{stat}", k.render())
            })
            .collect::<Vec<_>>()
            .join(",");
        Value::string(joined)
    }

    fn partial_state(&self) -> Option<AggState> {
        Some(AggState::CateSums(self.sums.clone()))
    }

    fn merge_state(&mut self, state: &AggState) -> Result<()> {
        let AggState::CateSums(m) = state else {
            return Err(Error::Eval(
                "cate aggregate expects a CateSums partial state".into(),
            ));
        };
        for (k, (s, c)) in m {
            let entry = self.sums.entry(k.clone()).or_insert((0.0, 0));
            entry.0 += s;
            entry.1 += c;
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.sums.clear();
    }
}

/// `geo_grid_count(lat, lon, precision)`: the number of distinct geo-grid
/// cells covered by the window's coordinates — the GLQ-style whole-table
/// spatial statistic (paper Section 9.2.2).
#[derive(Debug, Clone)]
pub struct GeoGridCountAgg {
    cells: HashMap<KeyValue, u64>,
    precision: u32,
}

impl GeoGridCountAgg {
    pub fn new(precision: u32) -> Self {
        GeoGridCountAgg {
            cells: HashMap::new(),
            precision,
        }
    }
}

impl Aggregator for GeoGridCountAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        if args[0].is_null() || args[1].is_null() {
            return Ok(());
        }
        let cell = geo_hash(args[0].as_f64()?, args[1].as_f64()?, self.precision);
        *self.cells.entry(KeyValue::Int(cell)).or_insert(0) += 1;
        Ok(())
    }

    fn retract(&mut self, args: &[Value]) -> Result<()> {
        if args[0].is_null() || args[1].is_null() {
            return Ok(());
        }
        let cell = KeyValue::Int(geo_hash(
            args[0].as_f64()?,
            args[1].as_f64()?,
            self.precision,
        ));
        if let Some(c) = self.cells.get_mut(&cell) {
            *c -= 1;
            if *c == 0 {
                self.cells.remove(&cell);
            }
        }
        Ok(())
    }

    fn invertible(&self) -> bool {
        true
    }

    fn output(&self) -> Value {
        Value::Bigint(self.cells.len() as i64)
    }

    fn partial_state(&self) -> Option<AggState> {
        Some(AggState::Counts(self.cells.clone()))
    }

    fn merge_state(&mut self, state: &AggState) -> Result<()> {
        let AggState::Counts(m) = state else {
            return Err(Error::Eval(
                "geo_grid_count expects a Counts partial state".into(),
            ));
        };
        for (k, c) in m {
            *self.cells.entry(k.clone()).or_insert(0) += c;
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.cells.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_count_with_retraction() {
        let mut d = DistinctCountAgg::default();
        for v in ["a", "b", "a"] {
            d.update(&[Value::string(v)]).unwrap();
        }
        assert_eq!(d.output(), Value::Bigint(2));
        d.retract(&[Value::string("a")]).unwrap();
        assert_eq!(d.output(), Value::Bigint(2), "one `a` still present");
        d.retract(&[Value::string("a")]).unwrap();
        assert_eq!(d.output(), Value::Bigint(1));
    }

    #[test]
    fn topn_frequency_orders_by_freq_then_key() {
        let mut t = TopNFrequencyAgg::new(2);
        for v in ["x", "y", "y", "z", "z"] {
            t.update(&[Value::string(v)]).unwrap();
        }
        // y and z tie at 2 → key ascending picks y first.
        assert_eq!(t.output(), Value::string("y,z"));
        t.update(&[Value::string("z")]).unwrap();
        assert_eq!(t.output(), Value::string("z,y"));
    }

    #[test]
    fn topn_merge_states() {
        let mut a = TopNFrequencyAgg::new(1);
        a.update(&[Value::string("p")]).unwrap();
        let mut b = TopNFrequencyAgg::new(1);
        for _ in 0..3 {
            b.update(&[Value::string("q")]).unwrap();
        }
        a.merge_state(&b.partial_state().unwrap()).unwrap();
        assert_eq!(a.output(), Value::string("q"));
    }

    #[test]
    fn top_returns_largest_values_desc() {
        let mut t = TopAgg::new(3);
        for v in [5, 1, 9, 9, 3] {
            t.update(&[Value::Int(v)]).unwrap();
        }
        assert_eq!(t.output(), Value::string("9,9,5"));
        t.retract(&[Value::Int(9)]).unwrap();
        assert_eq!(t.output(), Value::string("9,5,3"));
    }

    #[test]
    fn avg_cate_where_groups_and_filters() {
        // The paper's Figure 1 feature: average product price by category,
        // where quantity > 1.
        let mut a = AvgCateAgg::new(CateVariant::Avg, true);
        let rows = [
            (20.0, true, "shoes"),
            (40.0, true, "shoes"),
            (99.0, false, "shoes"), // filtered by the condition
            (10.0, true, "bags"),
        ];
        for (v, c, k) in rows {
            a.update(&[Value::Double(v), Value::Bool(c), Value::string(k)])
                .unwrap();
        }
        assert_eq!(a.output(), Value::string("bags:10,shoes:30"));
        a.retract(&[
            Value::Double(40.0),
            Value::Bool(true),
            Value::string("shoes"),
        ])
        .unwrap();
        assert_eq!(a.output(), Value::string("bags:10,shoes:20"));
    }

    #[test]
    fn sum_and_count_cate_variants() {
        let mut s = AvgCateAgg::new(CateVariant::Sum, true);
        let mut c = AvgCateAgg::new(CateVariant::Count, true);
        for v in [1.0, 2.0] {
            let args = [Value::Double(v), Value::Bool(true), Value::string("k")];
            s.update(&args).unwrap();
            c.update(&args).unwrap();
        }
        assert_eq!(s.output(), Value::string("k:3"));
        assert_eq!(c.output(), Value::string("k:2"));
    }

    #[test]
    fn avg_cate_unconditional_arity() {
        let mut a = AvgCateAgg::new(CateVariant::Avg, false);
        a.update(&[Value::Double(4.0), Value::string("k")]).unwrap();
        assert_eq!(a.output(), Value::string("k:4"));
    }

    #[test]
    fn geo_grid_count_distinct_cells() {
        let mut g = GeoGridCountAgg::new(8);
        g.update(&[Value::Double(31.0), Value::Double(121.0)])
            .unwrap();
        g.update(&[Value::Double(31.0001), Value::Double(121.0001)])
            .unwrap(); // same cell
        g.update(&[Value::Double(39.9), Value::Double(116.4)])
            .unwrap(); // different cell
        assert_eq!(g.output(), Value::Bigint(2));
    }

    #[test]
    fn empty_outputs() {
        assert_eq!(TopNFrequencyAgg::new(3).output(), Value::string(""));
        assert_eq!(
            AvgCateAgg::new(CateVariant::Avg, true).output(),
            Value::string("")
        );
        assert_eq!(DistinctCountAgg::default().output(), Value::Bigint(0));
    }
}
