//! Window aggregate function implementations.
//!
//! Every aggregate implements [`Aggregator`]:
//!
//! * `update` feeds rows **oldest-to-newest** (time-series functions like
//!   `drawdown` and `ew_avg` depend on this order — the storage layer
//!   pre-ranks tuples by timestamp exactly so this contract is cheap to
//!   satisfy, paper Section 7.2);
//! * `retract` removes a row for the subtract-and-evict incremental scheme
//!   of Section 5.2 — only invertible aggregates support it;
//! * `partial_state` / `merge_state` expose mergeable partial aggregates for
//!   the long-window pre-aggregation of Section 5.1 — only decomposable
//!   aggregates support them.

mod categorical;
mod numeric;
mod timeseries;

pub use categorical::{AvgCateAgg, CateVariant, DistinctCountAgg, TopAgg, TopNFrequencyAgg};
pub use numeric::{AvgAgg, CountAgg, MedianAgg, MinMaxAgg, StddevAgg, SumAgg, WhereAgg};
pub use timeseries::{DrawdownAgg, EwAvgAgg, FirstValueAgg, LagAgg};

use std::cmp::Ordering;
use std::collections::HashMap;

use openmldb_sql::plan::PhysExpr;
use openmldb_sql::FunctionDef;
use openmldb_types::{Error, KeyValue, Result, Value};

/// A window aggregate's running state.
pub trait Aggregator: Send + Sync {
    /// Feed one row's evaluated arguments (oldest → newest).
    fn update(&mut self, args: &[Value]) -> Result<()>;

    /// Remove a previously fed row (subtract-and-evict). Errors unless
    /// [`Aggregator::invertible`] is true.
    fn retract(&mut self, _args: &[Value]) -> Result<()> {
        Err(Error::Eval("aggregate does not support retraction".into()))
    }

    /// Whether `retract` is supported.
    fn invertible(&self) -> bool {
        false
    }

    /// The current aggregate value.
    fn output(&self) -> Value;

    /// Mergeable partial state, or `None` if this aggregate cannot be
    /// decomposed (then it is ineligible for pre-aggregation).
    fn partial_state(&self) -> Option<AggState> {
        None
    }

    /// Merge a partial state produced by an aggregator of the same kind.
    fn merge_state(&mut self, _state: &AggState) -> Result<()> {
        Err(Error::Eval(
            "aggregate does not support partial-state merging".into(),
        ))
    }

    /// Clear back to the initial state.
    fn reset(&mut self);
}

/// Serializable partial aggregate, stored in pre-aggregation buckets.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// count / sum / sumsq summary, integer-preserving.
    Numeric {
        count: u64,
        sum_i: i64,
        sum_f: f64,
        sum_sq: f64,
        all_int: bool,
    },
    /// Value → multiplicity, for min/max/median/distinct/top-n.
    Counts(HashMap<KeyValue, u64>),
    /// Ordered value multiset (min/max/median keep real values).
    ValueCounts(Vec<(Value, u64)>),
    /// Category → (sum, count).
    CateSums(HashMap<KeyValue, (f64, i64)>),
}

/// `Value` wrapper ordered by [`Value::total_cmp`], for multiset-backed
/// aggregates (min/max/median/top).
#[derive(Debug, Clone)]
pub struct OrdVal(pub Value);

impl PartialEq for OrdVal {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for OrdVal {}
impl PartialOrd for OrdVal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdVal {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Extract a constant expression argument (used for parameters like the `N`
/// of `topn_frequency(col, N)`), which must be literal at plan time.
pub fn const_arg(args: &[PhysExpr], idx: usize, func: &str) -> Result<Value> {
    match args.get(idx) {
        Some(PhysExpr::Literal(v)) => Ok(v.clone()),
        _ => Err(Error::Plan(format!(
            "argument {idx} of `{func}` must be a constant literal"
        ))),
    }
}

/// Instantiate the aggregator implementing `func` with the given bound
/// argument expressions (const parameters are extracted here).
pub fn create_aggregator(
    func: &'static FunctionDef,
    args: &[PhysExpr],
) -> Result<Box<dyn Aggregator>> {
    Ok(match func.name {
        "sum" => Box::new(SumAgg::default()),
        "count" => Box::new(CountAgg::default()),
        "avg" => Box::new(AvgAgg::default()),
        "min" => Box::new(MinMaxAgg::min()),
        "max" => Box::new(MinMaxAgg::max()),
        "stddev" => Box::new(StddevAgg::default()),
        "median" => Box::new(MedianAgg::default()),
        "sum_where" => Box::new(WhereAgg::new(Box::new(SumAgg::default()))),
        "count_where" => Box::new(WhereAgg::new(Box::new(CountAgg::default()))),
        "avg_where" => Box::new(WhereAgg::new(Box::new(AvgAgg::default()))),
        "min_where" => Box::new(WhereAgg::new(Box::new(MinMaxAgg::min()))),
        "max_where" => Box::new(WhereAgg::new(Box::new(MinMaxAgg::max()))),
        "distinct_count" => Box::new(DistinctCountAgg::default()),
        "topn_frequency" => {
            let n = const_arg(args, 1, func.name)?.as_i64()?.max(0) as usize;
            Box::new(TopNFrequencyAgg::new(n))
        }
        "top" => {
            let n = const_arg(args, 1, func.name)?.as_i64()?.max(0) as usize;
            Box::new(TopAgg::new(n))
        }
        "avg_cate" => Box::new(AvgCateAgg::new(CateVariant::Avg, false)),
        "avg_cate_where" => Box::new(AvgCateAgg::new(CateVariant::Avg, true)),
        "sum_cate_where" => Box::new(AvgCateAgg::new(CateVariant::Sum, true)),
        "count_cate_where" => Box::new(AvgCateAgg::new(CateVariant::Count, true)),
        "drawdown" => Box::new(DrawdownAgg::default()),
        "ew_avg" => {
            let alpha = const_arg(args, 1, func.name)?.as_f64()?;
            if !(0.0..=1.0).contains(&alpha) {
                return Err(Error::Plan(format!(
                    "ew_avg smoothing factor must be in [0, 1], got {alpha}"
                )));
            }
            Box::new(EwAvgAgg::new(alpha))
        }
        "lag" => {
            let n = const_arg(args, 1, func.name)?.as_i64()?.max(0) as usize;
            Box::new(LagAgg::new(n))
        }
        "first_value" => Box::new(FirstValueAgg::default()),
        "geo_grid_count" => {
            let precision = const_arg(args, 2, func.name)?.as_i64()?.clamp(1, 30) as u32;
            Box::new(categorical::GeoGridCountAgg::new(precision))
        }
        other => return Err(Error::Plan(format!("`{other}` is not an aggregate"))),
    })
}

/// Whether `func`'s aggregator exposes mergeable partial state — i.e. is
/// eligible for long-window pre-aggregation (Section 5.1).
pub fn supports_preagg(func: &FunctionDef) -> bool {
    matches!(
        func.name,
        "sum"
            | "count"
            | "avg"
            | "min"
            | "max"
            | "stddev"
            | "median"
            | "distinct_count"
            | "topn_frequency"
            | "top"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_sql::functions::lookup;

    #[test]
    fn factory_covers_all_registered_aggregates() {
        use openmldb_sql::functions::{FunctionKind, BUILTINS};
        for def in BUILTINS
            .iter()
            .filter(|d| d.kind == FunctionKind::Aggregate)
        {
            // Provide plausible constant args.
            let args = [
                PhysExpr::Column(0),
                PhysExpr::Literal(Value::Bigint(1)),
                PhysExpr::Literal(Value::Bigint(3)),
            ];
            let args = &args[..def.max_args.min(3)];
            create_aggregator(def, args)
                .unwrap_or_else(|e| panic!("factory missing for {}: {e}", def.name));
        }
    }

    #[test]
    fn const_arg_rejects_non_literals() {
        let def = lookup("topn_frequency").unwrap();
        let err = match create_aggregator(def, &[PhysExpr::Column(0), PhysExpr::Column(1)]) {
            Err(e) => e,
            Ok(_) => panic!("non-literal N should be rejected"),
        };
        assert!(err.to_string().contains("constant"));
    }

    #[test]
    fn ew_avg_alpha_validated() {
        let def = lookup("ew_avg").unwrap();
        assert!(create_aggregator(
            def,
            &[PhysExpr::Column(0), PhysExpr::Literal(Value::Double(1.5))]
        )
        .is_err());
    }

    #[test]
    fn ordval_total_order() {
        let mut v = [
            OrdVal(Value::Double(2.0)),
            OrdVal(Value::Null),
            OrdVal(Value::Double(f64::NAN)),
            OrdVal(Value::Double(1.0)),
        ];
        v.sort();
        assert!(v[0].0.is_null());
        assert_eq!(v[1].0, Value::Double(1.0));
    }
}
