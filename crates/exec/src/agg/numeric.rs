//! Numeric aggregates: sum / count / avg / min / max / stddev / median and
//! the conditional `*_where` wrappers (paper Section 4.1, category 2).
//!
//! All of these are invertible (support subtract-and-evict) and mergeable
//! (support pre-aggregation partial states).

use std::collections::BTreeMap;

use openmldb_types::{Error, Result, Value};

use super::{AggState, Aggregator, OrdVal};

/// Shared integer-preserving running sum.
#[derive(Debug, Default, Clone)]
pub struct SumAgg {
    count: u64,
    sum_i: i64,
    sum_f: f64,
    all_int: bool,
}

impl SumAgg {
    fn add(&mut self, v: &Value, sign: i64) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        if self.count == 0 && sign > 0 {
            self.all_int = true;
        }
        let integral = v.as_i64().is_ok() && !matches!(v, Value::Float(_) | Value::Double(_));
        if integral {
            self.sum_i = self
                .sum_i
                .checked_add(sign * v.as_i64()?)
                .ok_or_else(|| Error::Eval("sum overflow".into()))?;
        } else {
            self.all_int = false;
        }
        self.sum_f += sign as f64 * v.as_f64()?;
        self.count = if sign > 0 {
            self.count + 1
        } else {
            self.count.saturating_sub(1)
        };
        Ok(())
    }
}

impl Aggregator for SumAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        self.add(&args[0], 1)
    }

    fn retract(&mut self, args: &[Value]) -> Result<()> {
        self.add(&args[0], -1)
    }

    fn invertible(&self) -> bool {
        true
    }

    fn output(&self) -> Value {
        if self.count == 0 {
            Value::Null
        } else if self.all_int {
            Value::Bigint(self.sum_i)
        } else {
            Value::Double(self.sum_f)
        }
    }

    fn partial_state(&self) -> Option<AggState> {
        Some(AggState::Numeric {
            count: self.count,
            sum_i: self.sum_i,
            sum_f: self.sum_f,
            sum_sq: 0.0,
            all_int: self.all_int,
        })
    }

    fn merge_state(&mut self, state: &AggState) -> Result<()> {
        let AggState::Numeric {
            count,
            sum_i,
            sum_f,
            all_int,
            ..
        } = state
        else {
            return Err(Error::Eval("sum expects a Numeric partial state".into()));
        };
        if *count == 0 {
            return Ok(());
        }
        if self.count == 0 {
            self.all_int = true;
        }
        self.all_int &= all_int;
        self.sum_i = self
            .sum_i
            .checked_add(*sum_i)
            .ok_or_else(|| Error::Eval("sum overflow".into()))?;
        self.sum_f += sum_f;
        self.count += count;
        Ok(())
    }

    fn reset(&mut self) {
        *self = SumAgg::default();
    }
}

/// Non-null row count.
#[derive(Debug, Default, Clone)]
pub struct CountAgg {
    count: u64,
}

impl Aggregator for CountAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        if !args[0].is_null() {
            self.count += 1;
        }
        Ok(())
    }

    fn retract(&mut self, args: &[Value]) -> Result<()> {
        if !args[0].is_null() {
            self.count = self.count.saturating_sub(1);
        }
        Ok(())
    }

    fn invertible(&self) -> bool {
        true
    }

    fn output(&self) -> Value {
        Value::Bigint(self.count as i64)
    }

    fn partial_state(&self) -> Option<AggState> {
        Some(AggState::Numeric {
            count: self.count,
            sum_i: 0,
            sum_f: 0.0,
            sum_sq: 0.0,
            all_int: true,
        })
    }

    fn merge_state(&mut self, state: &AggState) -> Result<()> {
        let AggState::Numeric { count, .. } = state else {
            return Err(Error::Eval("count expects a Numeric partial state".into()));
        };
        self.count += count;
        Ok(())
    }

    fn reset(&mut self) {
        self.count = 0;
    }
}

/// Average — derived from sum and count, the canonical cyclic-binding case
/// (Section 4.2: avg reuses the simpler intermediates).
#[derive(Debug, Default, Clone)]
pub struct AvgAgg {
    inner: SumAgg,
}

impl Aggregator for AvgAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        self.inner.update(args)
    }

    fn retract(&mut self, args: &[Value]) -> Result<()> {
        self.inner.retract(args)
    }

    fn invertible(&self) -> bool {
        true
    }

    fn output(&self) -> Value {
        if self.inner.count == 0 {
            Value::Null
        } else {
            Value::Double(self.inner.sum_f / self.inner.count as f64)
        }
    }

    fn partial_state(&self) -> Option<AggState> {
        self.inner.partial_state()
    }

    fn merge_state(&mut self, state: &AggState) -> Result<()> {
        self.inner.merge_state(state)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Min or max over an ordered multiset — retractable because the full value
/// distribution is retained.
#[derive(Debug, Clone)]
pub struct MinMaxAgg {
    values: BTreeMap<OrdVal, u64>,
    is_min: bool,
}

impl MinMaxAgg {
    pub fn min() -> Self {
        MinMaxAgg {
            values: BTreeMap::new(),
            is_min: true,
        }
    }

    pub fn max() -> Self {
        MinMaxAgg {
            values: BTreeMap::new(),
            is_min: false,
        }
    }
}

impl Aggregator for MinMaxAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        if !args[0].is_null() {
            *self.values.entry(OrdVal(args[0].clone())).or_insert(0) += 1;
        }
        Ok(())
    }

    fn retract(&mut self, args: &[Value]) -> Result<()> {
        if args[0].is_null() {
            return Ok(());
        }
        let key = OrdVal(args[0].clone());
        if let Some(c) = self.values.get_mut(&key) {
            *c -= 1;
            if *c == 0 {
                self.values.remove(&key);
            }
        }
        Ok(())
    }

    fn invertible(&self) -> bool {
        true
    }

    fn output(&self) -> Value {
        let entry = if self.is_min {
            self.values.keys().next()
        } else {
            self.values.keys().next_back()
        };
        entry.map(|o| o.0.clone()).unwrap_or(Value::Null)
    }

    /// Only the extremes: min/max is decomposable as min-of-mins /
    /// max-of-maxes, so pre-aggregation buckets stay O(1) regardless of
    /// bucket size (the full multiset exists only for window retraction).
    fn partial_state(&self) -> Option<AggState> {
        let mut extremes = Vec::with_capacity(2);
        if let Some(first) = self.values.keys().next() {
            extremes.push((first.0.clone(), 1));
        }
        if let Some(last) = self.values.keys().next_back() {
            if self.values.len() > 1 {
                extremes.push((last.0.clone(), 1));
            }
        }
        Some(AggState::ValueCounts(extremes))
    }

    fn merge_state(&mut self, state: &AggState) -> Result<()> {
        let AggState::ValueCounts(vals) = state else {
            return Err(Error::Eval(
                "min/max expects a ValueCounts partial state".into(),
            ));
        };
        for (v, c) in vals {
            *self.values.entry(OrdVal(v.clone())).or_insert(0) += c;
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.values.clear();
    }
}

/// Sample standard deviation from (count, sum, sum of squares).
#[derive(Debug, Default, Clone)]
pub struct StddevAgg {
    count: u64,
    sum: f64,
    sum_sq: f64,
}

impl Aggregator for StddevAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        if !args[0].is_null() {
            let v = args[0].as_f64()?;
            self.count += 1;
            self.sum += v;
            self.sum_sq += v * v;
        }
        Ok(())
    }

    fn retract(&mut self, args: &[Value]) -> Result<()> {
        if !args[0].is_null() {
            let v = args[0].as_f64()?;
            self.count = self.count.saturating_sub(1);
            self.sum -= v;
            self.sum_sq -= v * v;
        }
        Ok(())
    }

    fn invertible(&self) -> bool {
        true
    }

    fn output(&self) -> Value {
        if self.count < 2 {
            return Value::Null;
        }
        let n = self.count as f64;
        let var = ((self.sum_sq - self.sum * self.sum / n) / (n - 1.0)).max(0.0);
        Value::Double(var.sqrt())
    }

    fn partial_state(&self) -> Option<AggState> {
        Some(AggState::Numeric {
            count: self.count,
            sum_i: 0,
            sum_f: self.sum,
            sum_sq: self.sum_sq,
            all_int: false,
        })
    }

    fn merge_state(&mut self, state: &AggState) -> Result<()> {
        let AggState::Numeric {
            count,
            sum_f,
            sum_sq,
            ..
        } = state
        else {
            return Err(Error::Eval("stddev expects a Numeric partial state".into()));
        };
        self.count += count;
        self.sum += sum_f;
        self.sum_sq += sum_sq;
        Ok(())
    }

    fn reset(&mut self) {
        *self = StddevAgg::default();
    }
}

/// Exact median over an ordered multiset.
#[derive(Debug, Default, Clone)]
pub struct MedianAgg {
    values: BTreeMap<OrdVal, u64>,
    count: u64,
}

impl Aggregator for MedianAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        if !args[0].is_null() {
            *self.values.entry(OrdVal(args[0].clone())).or_insert(0) += 1;
            self.count += 1;
        }
        Ok(())
    }

    fn retract(&mut self, args: &[Value]) -> Result<()> {
        if args[0].is_null() {
            return Ok(());
        }
        let key = OrdVal(args[0].clone());
        if let Some(c) = self.values.get_mut(&key) {
            *c -= 1;
            if *c == 0 {
                self.values.remove(&key);
            }
            self.count = self.count.saturating_sub(1);
        }
        Ok(())
    }

    fn invertible(&self) -> bool {
        true
    }

    fn output(&self) -> Value {
        if self.count == 0 {
            return Value::Null;
        }
        // Walk to the middle (and middle+1 for even counts).
        let lo_rank = (self.count - 1) / 2;
        let hi_rank = self.count / 2;
        let mut seen = 0u64;
        let mut lo = None;
        let mut hi = None;
        for (v, c) in &self.values {
            let next = seen + c;
            if lo.is_none() && lo_rank < next {
                lo = Some(v.0.clone());
            }
            if hi.is_none() && hi_rank < next {
                hi = Some(v.0.clone());
                break;
            }
            seen = next;
        }
        match (lo, hi) {
            (Some(a), Some(b)) => match (a.as_f64(), b.as_f64()) {
                (Ok(x), Ok(y)) => Value::Double((x + y) / 2.0),
                _ => a
                    .clone()
                    .cast_to(openmldb_types::DataType::String)
                    .unwrap_or(a),
            },
            _ => Value::Null,
        }
    }

    fn partial_state(&self) -> Option<AggState> {
        Some(AggState::ValueCounts(
            self.values.iter().map(|(k, c)| (k.0.clone(), *c)).collect(),
        ))
    }

    fn merge_state(&mut self, state: &AggState) -> Result<()> {
        let AggState::ValueCounts(vals) = state else {
            return Err(Error::Eval(
                "median expects a ValueCounts partial state".into(),
            ));
        };
        for (v, c) in vals {
            *self.values.entry(OrdVal(v.clone())).or_insert(0) += c;
            self.count += c;
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.values.clear();
        self.count = 0;
    }
}

/// Conditional wrapper: `f_where(value, condition)` updates the inner
/// aggregate only when the condition argument is true.
pub struct WhereAgg {
    inner: Box<dyn Aggregator>,
}

impl WhereAgg {
    pub fn new(inner: Box<dyn Aggregator>) -> Self {
        WhereAgg { inner }
    }

    fn passes(args: &[Value]) -> Result<bool> {
        match args.get(1) {
            Some(c) => c.as_bool(),
            None => Err(Error::Eval(
                "conditional aggregate missing condition".into(),
            )),
        }
    }
}

impl Aggregator for WhereAgg {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        if Self::passes(args)? {
            self.inner.update(&args[..1])?;
        }
        Ok(())
    }

    fn retract(&mut self, args: &[Value]) -> Result<()> {
        if Self::passes(args)? {
            self.inner.retract(&args[..1])?;
        }
        Ok(())
    }

    fn invertible(&self) -> bool {
        self.inner.invertible()
    }

    fn output(&self) -> Value {
        self.inner.output()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(agg: &mut dyn Aggregator, vals: &[Value]) {
        for v in vals {
            agg.update(std::slice::from_ref(v)).unwrap();
        }
    }

    #[test]
    fn sum_integer_preserving() {
        let mut s = SumAgg::default();
        feed(&mut s, &[Value::Int(1), Value::Bigint(2), Value::Null]);
        assert_eq!(s.output(), Value::Bigint(3));
        s.update(&[Value::Double(0.5)]).unwrap();
        assert_eq!(s.output(), Value::Double(3.5));
    }

    #[test]
    fn sum_retract_roundtrip() {
        let mut s = SumAgg::default();
        feed(&mut s, &[Value::Int(5), Value::Int(7)]);
        s.retract(&[Value::Int(5)]).unwrap();
        assert_eq!(s.output(), Value::Bigint(7));
        s.retract(&[Value::Int(7)]).unwrap();
        assert_eq!(s.output(), Value::Null, "empty window sums to NULL");
    }

    #[test]
    fn sum_merge_partial_states() {
        let mut a = SumAgg::default();
        feed(&mut a, &[Value::Int(1), Value::Int(2)]);
        let mut b = SumAgg::default();
        feed(&mut b, &[Value::Int(10)]);
        a.merge_state(&b.partial_state().unwrap()).unwrap();
        assert_eq!(a.output(), Value::Bigint(13));
    }

    #[test]
    fn count_ignores_nulls() {
        let mut c = CountAgg::default();
        feed(&mut c, &[Value::Int(1), Value::Null, Value::Int(2)]);
        assert_eq!(c.output(), Value::Bigint(2));
        c.retract(&[Value::Int(1)]).unwrap();
        assert_eq!(c.output(), Value::Bigint(1));
    }

    #[test]
    fn avg_is_sum_over_count() {
        let mut a = AvgAgg::default();
        feed(&mut a, &[Value::Int(1), Value::Int(2), Value::Int(6)]);
        assert_eq!(a.output(), Value::Double(3.0));
        assert_eq!(AvgAgg::default().output(), Value::Null);
    }

    #[test]
    fn minmax_with_retraction() {
        let mut mx = MinMaxAgg::max();
        feed(&mut mx, &[Value::Int(3), Value::Int(9), Value::Int(5)]);
        assert_eq!(mx.output(), Value::Int(9));
        mx.retract(&[Value::Int(9)]).unwrap();
        assert_eq!(mx.output(), Value::Int(5));

        let mut mn = MinMaxAgg::min();
        feed(&mut mn, &[Value::string("b"), Value::string("a")]);
        assert_eq!(mn.output(), Value::string("a"));
    }

    #[test]
    fn minmax_merge() {
        let mut a = MinMaxAgg::max();
        feed(&mut a, &[Value::Int(3)]);
        let mut b = MinMaxAgg::max();
        feed(&mut b, &[Value::Int(11)]);
        a.merge_state(&b.partial_state().unwrap()).unwrap();
        assert_eq!(a.output(), Value::Int(11));
    }

    #[test]
    fn stddev_sample() {
        let mut s = StddevAgg::default();
        feed(
            &mut s,
            &[
                Value::Int(2),
                Value::Int(4),
                Value::Int(4),
                Value::Int(4),
                Value::Int(5),
                Value::Int(5),
                Value::Int(7),
                Value::Int(9),
            ],
        );
        let Value::Double(v) = s.output() else {
            panic!()
        };
        assert!((v - 2.138).abs() < 0.01, "{v}");
        assert_eq!(StddevAgg::default().output(), Value::Null);
    }

    #[test]
    fn median_odd_even() {
        let mut m = MedianAgg::default();
        feed(&mut m, &[Value::Int(1), Value::Int(3), Value::Int(2)]);
        assert_eq!(m.output(), Value::Double(2.0));
        m.update(&[Value::Int(10)]).unwrap();
        assert_eq!(m.output(), Value::Double(2.5));
        m.retract(&[Value::Int(10)]).unwrap();
        assert_eq!(m.output(), Value::Double(2.0));
    }

    #[test]
    fn where_wrapper_gates_updates() {
        let mut s = WhereAgg::new(Box::new(SumAgg::default()));
        s.update(&[Value::Int(10), Value::Bool(true)]).unwrap();
        s.update(&[Value::Int(99), Value::Bool(false)]).unwrap();
        assert_eq!(s.output(), Value::Bigint(10));
        assert!(s.invertible());
        s.retract(&[Value::Int(10), Value::Bool(true)]).unwrap();
        assert_eq!(s.output(), Value::Null);
    }
}
