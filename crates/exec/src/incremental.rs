//! Incremental sliding-window aggregation — the **Subtract-and-Evict**
//! scheme of paper Section 5.2.
//!
//! A [`SlidingWindow`] keeps the rows currently inside the frame. When a new
//! tuple arrives, expired tuples are *retracted* from each invertible
//! aggregate in O(1) each, instead of recomputing the window from scratch.
//! If any aggregate is not invertible (e.g. `drawdown`), the window falls
//! back to recomputation — the same policy the online engine uses.

use std::collections::VecDeque;

use openmldb_sql::ast::Frame;
use openmldb_sql::plan::{BoundAggregate, PhysExpr};
use openmldb_types::{Result, Value};

use crate::agg::{create_aggregator, Aggregator};
use crate::eval::evaluate;

struct Entry {
    ts: i64,
    /// Insertion sequence number, to tell apart entries with equal ts.
    seq: u64,
    /// Evaluated arguments per aggregate, cached so retraction does not
    /// re-evaluate expressions.
    arg_vals: Vec<Vec<Value>>,
}

/// A continuously maintained window over one key's stream.
pub struct SlidingWindow {
    frame: Frame,
    arg_exprs: Vec<Vec<PhysExpr>>,
    aggs: Vec<Box<dyn Aggregator>>,
    buffer: VecDeque<Entry>,
    next_seq: u64,
    all_invertible: bool,
    /// Counts of incremental vs full recomputations, for the ablation bench.
    pub incremental_steps: u64,
    pub recompute_steps: u64,
}

impl SlidingWindow {
    pub fn new(frame: Frame, aggs: &[&BoundAggregate]) -> Result<Self> {
        let mut instances = Vec::with_capacity(aggs.len());
        let mut arg_exprs = Vec::with_capacity(aggs.len());
        for a in aggs {
            instances.push(create_aggregator(a.func, &a.args)?);
            arg_exprs.push(a.args.clone());
        }
        let all_invertible = instances.iter().all(|a| a.invertible());
        Ok(SlidingWindow {
            frame,
            arg_exprs,
            aggs: instances,
            buffer: VecDeque::new(),
            next_seq: 0,
            all_invertible,
            incremental_steps: 0,
            recompute_steps: 0,
        })
    }

    /// Whether the subtract-and-evict fast path is active.
    pub fn incremental(&self) -> bool {
        self.all_invertible
    }

    /// Rows currently inside the frame.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Current aggregate outputs without ingesting a tuple (used by the
    /// offline sweep to emit peer-inclusive results after a run of
    /// equal-timestamp rows).
    pub fn outputs(&self) -> Vec<Value> {
        self.aggs.iter().map(|a| a.output()).collect()
    }

    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Ingest a tuple and return the aggregate outputs for the window as of
    /// this tuple. Handles out-of-order arrivals by keeping the buffer
    /// sorted on timestamp (paper Section 5.2 / the interval-join work it
    /// cites).
    pub fn push(&mut self, ts: i64, row: &[Value]) -> Result<Vec<Value>> {
        // Evaluate this row's aggregate arguments once.
        let mut arg_vals = Vec::with_capacity(self.arg_exprs.len());
        for exprs in &self.arg_exprs {
            let mut vals = Vec::with_capacity(exprs.len());
            for e in exprs {
                vals.push(evaluate(e, row, &[])?);
            }
            arg_vals.push(vals);
        }

        // Insert keeping the buffer time-ordered (out-of-order tolerant).
        let seq = self.next_seq;
        self.next_seq += 1;
        let insert_at = self.buffer.partition_point(|e| e.ts <= ts);
        self.buffer.insert(insert_at, Entry { ts, seq, arg_vals });

        // Evict rows that fall outside the frame anchored at the max ts.
        let anchor = self.buffer.back().map(|e| e.ts).unwrap_or(ts);
        let mut evicted = Vec::new();
        loop {
            let expired = {
                let Some(front) = self.buffer.front() else {
                    break;
                };
                match self.frame {
                    Frame::RowsRange { preceding_ms } => anchor - front.ts > preceding_ms,
                    Frame::Rows { preceding } => self.buffer.len() as u64 > preceding + 1,
                    Frame::Unbounded => false,
                }
            };
            if !expired {
                break;
            }
            // analysis:allow(panic-path): the `expired` guard above only
            // passes when `front()` saw an entry, so the buffer is non-empty.
            evicted.push(self.buffer.pop_front().expect("non-empty"));
        }

        crate::metrics::window_evictions().add(evicted.len() as u64);
        if self.all_invertible {
            self.incremental_steps += 1;
            crate::metrics::incremental_steps().inc();
            // The just-inserted entry was never applied to the aggregates:
            // retract only genuinely old evictions, and apply the new entry
            // only if it survived (a very late tuple can expire on arrival).
            let mut new_entry_evicted = false;
            for e in &evicted {
                if e.seq == seq {
                    new_entry_evicted = true;
                    continue;
                }
                for (agg, vals) in self.aggs.iter_mut().zip(&e.arg_vals) {
                    agg.retract(vals)?;
                }
            }
            if !new_entry_evicted {
                // Search from the back: in-order streams insert at the end.
                let inserted = self
                    .buffer
                    .iter()
                    .rev()
                    .find(|e| e.seq == seq)
                    // analysis:allow(panic-path): `!new_entry_evicted` means
                    // the entry with this seq is still in the buffer.
                    .expect("inserted entry survived eviction");
                for (agg, vals) in self.aggs.iter_mut().zip(&inserted.arg_vals) {
                    agg.update(vals)?;
                }
            }
        } else {
            // Full recomputation in chronological order.
            self.recompute_steps += 1;
            crate::metrics::recompute_steps().inc();
            for agg in &mut self.aggs {
                agg.reset();
            }
            for e in &self.buffer {
                for (agg, vals) in self.aggs.iter_mut().zip(&e.arg_vals) {
                    agg.update(vals)?;
                }
            }
        }

        Ok(self.aggs.iter().map(|a| a.output()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_sql::functions::lookup;
    use openmldb_types::DataType;

    fn bound(func: &str, args: Vec<PhysExpr>) -> BoundAggregate {
        BoundAggregate {
            window_id: 0,
            func: lookup(func).unwrap(),
            args,
            output_type: DataType::Double,
        }
    }

    fn sum_window(frame: Frame) -> SlidingWindow {
        let aggs = [bound("sum", vec![PhysExpr::Column(0)])];
        let refs: Vec<&BoundAggregate> = aggs.iter().collect();
        SlidingWindow::new(frame, &refs).unwrap()
    }

    #[test]
    fn range_frame_evicts_by_time() {
        let mut w = sum_window(Frame::RowsRange { preceding_ms: 100 });
        assert_eq!(
            w.push(0, &[Value::Bigint(1)]).unwrap(),
            vec![Value::Bigint(1)]
        );
        assert_eq!(
            w.push(50, &[Value::Bigint(2)]).unwrap(),
            vec![Value::Bigint(3)]
        );
        assert_eq!(
            w.push(100, &[Value::Bigint(4)]).unwrap(),
            vec![Value::Bigint(7)]
        );
        // ts=0 and ts=50 now fall out (151 - 50 > 100).
        assert_eq!(
            w.push(151, &[Value::Bigint(8)]).unwrap(),
            vec![Value::Bigint(12)]
        );
        assert_eq!(w.len(), 2);
        assert!(w.incremental());
        assert_eq!(w.recompute_steps, 0);
    }

    #[test]
    fn rows_frame_caps_row_count() {
        let mut w = sum_window(Frame::Rows { preceding: 1 });
        w.push(1, &[Value::Bigint(1)]).unwrap();
        w.push(2, &[Value::Bigint(2)]).unwrap();
        let out = w.push(3, &[Value::Bigint(4)]).unwrap();
        assert_eq!(out, vec![Value::Bigint(6)], "only 2 newest rows remain");
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn out_of_order_arrivals_are_ordered() {
        let mut w = sum_window(Frame::RowsRange {
            preceding_ms: 1_000,
        });
        w.push(100, &[Value::Bigint(1)]).unwrap();
        w.push(300, &[Value::Bigint(4)]).unwrap();
        // A late tuple from t=200 still lands inside the window.
        let out = w.push(200, &[Value::Bigint(2)]).unwrap();
        assert_eq!(out, vec![Value::Bigint(7)]);
    }

    #[test]
    fn non_invertible_falls_back_to_recompute() {
        let aggs = [bound("drawdown", vec![PhysExpr::Column(0)])];
        let refs: Vec<&BoundAggregate> = aggs.iter().collect();
        let mut w = SlidingWindow::new(
            Frame::RowsRange {
                preceding_ms: 1_000,
            },
            &refs,
        )
        .unwrap();
        assert!(!w.incremental());
        w.push(0, &[Value::Double(100.0)]).unwrap();
        let out = w.push(10, &[Value::Double(60.0)]).unwrap();
        let Value::Double(dd) = out[0] else { panic!() };
        assert!((dd - 0.4).abs() < 1e-9);
        assert!(w.recompute_steps >= 2);
    }

    #[test]
    fn sliding_matches_full_recompute() {
        // Differential test: incremental result == scratch recompute.
        let aggs = [
            bound("sum", vec![PhysExpr::Column(0)]),
            bound("distinct_count", vec![PhysExpr::Column(0)]),
            bound("max", vec![PhysExpr::Column(0)]),
        ];
        let refs: Vec<&BoundAggregate> = aggs.iter().collect();
        let mut w = SlidingWindow::new(Frame::RowsRange { preceding_ms: 50 }, &refs).unwrap();
        let data: Vec<(i64, i64)> = (0..200).map(|i| (i * 7 % 400, (i * 13) % 10)).collect();
        let mut sorted_so_far: Vec<(i64, i64)> = Vec::new();
        for (ts, v) in data {
            let out = w.push(ts, &[Value::Bigint(v)]).unwrap();
            sorted_so_far.push((ts, v));
            sorted_so_far.sort_unstable();
            let anchor = sorted_so_far.iter().map(|(t, _)| *t).max().unwrap();
            let in_frame: Vec<i64> = sorted_so_far
                .iter()
                .filter(|(t, _)| anchor - t <= 50)
                .map(|(_, v)| *v)
                .collect();
            let expect_sum: i64 = in_frame.iter().sum();
            let expect_distinct = in_frame
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len() as i64;
            let expect_max = in_frame.iter().max().copied().unwrap();
            assert_eq!(out[0], Value::Bigint(expect_sum), "at ts {ts}");
            assert_eq!(out[1], Value::Bigint(expect_distinct), "at ts {ts}");
            assert_eq!(out[2], Value::Bigint(expect_max), "at ts {ts}");
        }
        assert!(w.incremental());
    }
}
