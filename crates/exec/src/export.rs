//! ML-friendly feature export (paper Section 4.1, category 5).
//!
//! Feature-signature functions (`label`-style, `continuous`, `discrete`)
//! mark how each output column feeds the model; this module renders feature
//! rows directly into LibSVM lines or dense CSV, so users never export raw
//! ultra-high-dimensional tables and post-process them in Pandas.

use openmldb_sql::plan::{CompiledQuery, PhysExpr};
use openmldb_types::{DataType, Error, Result, Row, Value};

use crate::scalar::hash_value;

/// Default dimensionality of a hashed discrete feature.
pub const DEFAULT_DISCRETE_DIM: i64 = 1 << 20;

/// How one output column participates in the exported feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// The training label; exactly one per export schema (first wins).
    Label,
    /// One dense dimension holding the value itself.
    Continuous,
    /// `dim` sparse dimensions; the value hashes to one hot index.
    Discrete { dim: i64 },
    /// Excluded from the feature vector (identifiers, debug columns).
    Skip,
}

/// Derive each output column's [`FeatureKind`] from the compiled query:
/// explicit signature functions win; otherwise numeric columns become
/// continuous features and strings become hashed discrete features.
pub fn infer_feature_kinds(query: &CompiledQuery) -> Vec<FeatureKind> {
    query
        .select
        .iter()
        .map(|col| match &col.expr {
            PhysExpr::ScalarCall { func, args } => match func.name {
                "multiclass_label" | "binary_label" => FeatureKind::Label,
                "continuous" => FeatureKind::Continuous,
                "discrete" => {
                    let dim = match args.get(1) {
                        Some(PhysExpr::Literal(v)) => v.as_i64().unwrap_or(DEFAULT_DISCRETE_DIM),
                        _ => DEFAULT_DISCRETE_DIM,
                    };
                    FeatureKind::Discrete { dim }
                }
                _ => default_kind(col.data_type),
            },
            _ => default_kind(col.data_type),
        })
        .collect()
}

fn default_kind(dt: DataType) -> FeatureKind {
    match dt {
        DataType::String => FeatureKind::Discrete {
            dim: DEFAULT_DISCRETE_DIM,
        },
        DataType::Timestamp => FeatureKind::Skip,
        _ => FeatureKind::Continuous,
    }
}

/// Render one feature row as a LibSVM line: `label idx:value idx:value ...`
/// with strictly increasing indices. Discrete columns occupy a dedicated
/// `dim`-sized index range; continuous columns occupy one index each.
pub fn to_libsvm(row: &Row, kinds: &[FeatureKind]) -> Result<String> {
    if row.len() != kinds.len() {
        return Err(Error::Schema(format!(
            "row arity {} does not match feature kinds {}",
            row.len(),
            kinds.len()
        )));
    }
    let mut label = String::from("0");
    let mut parts: Vec<(i64, f64)> = Vec::new();
    let mut base: i64 = 0;
    let mut label_seen = false;
    for (v, kind) in row.values().iter().zip(kinds) {
        match kind {
            FeatureKind::Label => {
                if !label_seen {
                    label = match v {
                        Value::Null => "0".to_string(),
                        other => other.to_string(),
                    };
                    label_seen = true;
                }
            }
            FeatureKind::Continuous => {
                if !v.is_null() {
                    parts.push((base, v.as_f64()?));
                }
                base += 1;
            }
            FeatureKind::Discrete { dim } => {
                if !v.is_null() {
                    let idx = (hash_value(v) % *dim as u64) as i64;
                    parts.push((base + idx, 1.0));
                }
                base += dim;
            }
            FeatureKind::Skip => {}
        }
    }
    let mut line = label;
    for (i, v) in parts {
        line.push(' ');
        line.push_str(&format!("{i}:{v}"));
    }
    Ok(line)
}

/// Render a feature row as dense CSV (NULL → empty field).
pub fn to_csv(row: &Row) -> String {
    row.values()
        .iter()
        .map(|v| match v {
            Value::Null => String::new(),
            Value::Str(s) if s.contains(',') || s.contains('"') => {
                format!("\"{}\"", s.replace('"', "\"\""))
            }
            other => other.to_string(),
        })
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libsvm_layout_is_deterministic() {
        let kinds = [
            FeatureKind::Label,
            FeatureKind::Continuous,
            FeatureKind::Discrete { dim: 10 },
            FeatureKind::Continuous,
        ];
        let row = Row::new(vec![
            Value::Int(1),
            Value::Double(0.5),
            Value::string("shoes"),
            Value::Double(2.0),
        ]);
        let a = to_libsvm(&row, &kinds).unwrap();
        let b = to_libsvm(&row, &kinds).unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with("1 0:0.5 "), "{a}");
        // Continuous after the 10-dim discrete block lands at index 11.
        assert!(a.ends_with("11:2"), "{a}");
        let hot: i64 = a
            .split(' ')
            .nth(2)
            .unwrap()
            .split(':')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            (1..11).contains(&hot),
            "discrete one-hot within its block: {a}"
        );
    }

    #[test]
    fn libsvm_skips_nulls_and_skip_columns() {
        let kinds = [
            FeatureKind::Continuous,
            FeatureKind::Skip,
            FeatureKind::Continuous,
        ];
        let row = Row::new(vec![Value::Null, Value::Timestamp(5), Value::Double(3.0)]);
        let line = to_libsvm(&row, &kinds).unwrap();
        assert_eq!(line, "0 1:3");
    }

    #[test]
    fn libsvm_arity_checked() {
        let row = Row::new(vec![Value::Int(1)]);
        assert!(to_libsvm(&row, &[]).is_err());
    }

    #[test]
    fn csv_escapes_quotes_and_commas() {
        let row = Row::new(vec![
            Value::Int(1),
            Value::Null,
            Value::string("a,b"),
            Value::string("say \"hi\""),
        ]);
        assert_eq!(to_csv(&row), "1,,\"a,b\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn default_kinds_by_type() {
        assert_eq!(default_kind(DataType::Double), FeatureKind::Continuous);
        assert!(matches!(
            default_kind(DataType::String),
            FeatureKind::Discrete { .. }
        ));
        assert_eq!(default_kind(DataType::Timestamp), FeatureKind::Skip);
    }
}
