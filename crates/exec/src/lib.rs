//! # openmldb-exec
//!
//! Shared execution library: the expression interpreter, the scalar and
//! aggregate function implementations (paper Section 4.1's extended SQL),
//! cyclic-binding window evaluation (Section 4.2), subtract-and-evict
//! incremental windows (Section 5.2), and ML-format feature export.
//!
//! This crate is the reproduction's analogue of the "C++ library functions
//! shared by the offline and online execution engines": both engines call
//! into exactly these functions, so a feature value computed offline is
//! bit-identical to the one computed online.

pub mod agg;
pub mod eval;
pub mod export;
pub mod incremental;
pub mod metrics;
pub mod program;
pub mod scalar;
pub mod scratch;
pub mod window;

pub use agg::{create_aggregator, supports_preagg, AggState, Aggregator};
pub use eval::{evaluate, evaluate_with, ColumnSource};
pub use export::{infer_feature_kinds, to_csv, to_libsvm, FeatureKind};
pub use incremental::SlidingWindow;
pub use program::{specialize, EntryOrder, ExprProgram, Program, WindowProgram, WindowState};
pub use scratch::{RequestScratch, ScanEntry, REQUEST_ROW};
pub use window::WindowAggSet;

#[cfg(test)]
mod proptests {
    use super::*;
    use openmldb_sql::ast::Frame;
    use openmldb_sql::functions::lookup;
    use openmldb_sql::plan::{BoundAggregate, PhysExpr};
    use openmldb_types::{DataType, Value};
    use proptest::prelude::*;

    fn bound(func: &str) -> BoundAggregate {
        BoundAggregate {
            window_id: 0,
            func: lookup(func).unwrap(),
            args: vec![PhysExpr::Column(0)],
            output_type: DataType::Double,
        }
    }

    proptest! {
        /// Subtract-and-evict must agree with from-scratch recomputation for
        /// every invertible aggregate, on arbitrary (ts, value) streams.
        #[test]
        fn incremental_equals_recompute(
            stream in proptest::collection::vec((0i64..500, -50i64..50), 1..120),
            frame_ms in 1i64..200,
        ) {
            for func in ["sum", "count", "avg", "min", "max", "distinct_count"] {
                let agg = bound(func);
                let refs = vec![&agg];
                let mut sliding =
                    SlidingWindow::new(Frame::RowsRange { preceding_ms: frame_ms }, &refs).unwrap();
                let mut seen: Vec<(i64, i64)> = Vec::new();
                for (ts, v) in &stream {
                    let out = sliding.push(*ts, &[Value::Bigint(*v)]).unwrap();
                    seen.push((*ts, *v));
                    let anchor = seen.iter().map(|(t, _)| *t).max().unwrap();
                    let in_frame: Vec<i64> = seen
                        .iter()
                        .filter(|(t, _)| anchor - t <= frame_ms)
                        .map(|(_, v)| *v)
                        .collect();
                    let expected = match func {
                        "sum" => Value::Bigint(in_frame.iter().sum()),
                        "count" => Value::Bigint(in_frame.len() as i64),
                        "avg" => Value::Double(
                            in_frame.iter().sum::<i64>() as f64 / in_frame.len() as f64,
                        ),
                        "min" => Value::Bigint(*in_frame.iter().min().unwrap()),
                        "max" => Value::Bigint(*in_frame.iter().max().unwrap()),
                        "distinct_count" => Value::Bigint(
                            in_frame.iter().collect::<std::collections::HashSet<_>>().len()
                                as i64,
                        ),
                        _ => unreachable!(),
                    };
                    prop_assert_eq!(&out[0], &expected, "func={} ts={}", func, ts);
                }
            }
        }

        /// Merging partial states must equal feeding all rows into one
        /// aggregator (the pre-aggregation correctness invariant).
        #[test]
        fn merge_equals_single_pass(
            left in proptest::collection::vec(-100i64..100, 0..40),
            right in proptest::collection::vec(-100i64..100, 0..40),
        ) {
            for func in ["sum", "count", "avg", "min", "max", "distinct_count", "median", "stddev"] {
                let spec = bound(func);
                let mk = || agg::create_aggregator(spec.func, &spec.args).unwrap();
                let mut whole = mk();
                let mut a = mk();
                let mut b = mk();
                for v in &left {
                    whole.update(&[Value::Bigint(*v)]).unwrap();
                    a.update(&[Value::Bigint(*v)]).unwrap();
                }
                for v in &right {
                    whole.update(&[Value::Bigint(*v)]).unwrap();
                    b.update(&[Value::Bigint(*v)]).unwrap();
                }
                let mut merged = mk();
                merged.merge_state(&a.partial_state().unwrap()).unwrap();
                merged.merge_state(&b.partial_state().unwrap()).unwrap();
                let (w, m) = (whole.output(), merged.output());
                // Float-valued outputs tolerate rounding differences.
                match (&w, &m) {
                    (Value::Double(x), Value::Double(y)) => {
                        prop_assert!((x - y).abs() < 1e-9, "func={} {} vs {}", func, x, y)
                    }
                    _ => prop_assert_eq!(&w, &m, "func={}", func),
                }
            }
        }

        /// update/retract round-trips leave invertible aggregates unchanged.
        #[test]
        fn update_retract_identity(
            base in proptest::collection::vec(-100i64..100, 1..30),
            extra in proptest::collection::vec(-100i64..100, 1..30),
        ) {
            for func in ["sum", "count", "avg", "min", "max", "distinct_count", "median"] {
                let spec = bound(func);
                let mut agg = agg::create_aggregator(spec.func, &spec.args).unwrap();
                for v in &base {
                    agg.update(&[Value::Bigint(*v)]).unwrap();
                }
                let before = agg.output();
                for v in &extra {
                    agg.update(&[Value::Bigint(*v)]).unwrap();
                }
                for v in &extra {
                    agg.retract(&[Value::Bigint(*v)]).unwrap();
                }
                let after = agg.output();
                match (&before, &after) {
                    (Value::Double(x), Value::Double(y)) => {
                        prop_assert!((x - y).abs() < 1e-6, "func={} {} vs {}", func, x, y)
                    }
                    _ => prop_assert_eq!(&before, &after, "func={}", func),
                }
            }
        }
    }
}
