//! Per-request reusable scratch state for the streaming request path.
//!
//! A warm [`RequestScratch`] owns every buffer the online engine touches
//! while serving one request — the scan arena, the sort entries, the join
//! probe row, the aggregate argument/output vectors, and the per-window
//! [`WindowAggSet`]s — so a steady-state request performs zero heap
//! allocations: everything is `clear()`ed between requests, never dropped.

use openmldb_types::{KeyValue, Value};

use crate::program::WindowState;
use crate::window::WindowAggSet;

/// Length sentinel marking the request row itself inside the entry list —
/// the request row lives as decoded `Value`s, not in the byte arena.
pub const REQUEST_ROW: usize = usize::MAX;

/// One scanned window row: a `(ts, arrival index)` sort key plus a byte
/// range into the owning [`RequestScratch`] arena.
#[derive(Debug, Clone, Copy)]
pub struct ScanEntry {
    /// Row timestamp (the primary sort key).
    pub ts: i64,
    /// Arrival index — ties on `ts` keep arrival order, reproducing the
    /// stable sort of the materializing path.
    pub seq: usize,
    /// Byte offset of the encoded row in the arena.
    pub start: usize,
    /// Encoded length, or [`REQUEST_ROW`] for the request-row marker.
    pub len: usize,
}

impl ScanEntry {
    /// Whether this entry is the request-row marker rather than a scanned,
    /// encoded row.
    pub fn is_request_row(&self) -> bool {
        self.len == REQUEST_ROW
    }

    /// The encoded row bytes within `arena`. Must not be called on the
    /// request-row marker.
    pub fn bytes<'a>(&self, arena: &'a [u8]) -> &'a [u8] {
        debug_assert!(!self.is_request_row());
        &arena[self.start..self.start + self.len]
    }
}

/// Reusable buffers for one in-flight request. Obtain from a pool, call
/// [`reset`](Self::reset) before use; all buffers keep their capacity across
/// requests so the warm path never allocates.
#[derive(Default)]
pub struct RequestScratch {
    /// Request row + join match, concatenated (the combined input row).
    pub combined: Vec<Value>,
    /// Join residual probe buffer — truncated back to the base row and
    /// re-extended per candidate instead of cloning `combined`.
    pub probe: Vec<Value>,
    /// Aggregate outputs across all windows, in plan order.
    pub agg_values: Vec<Value>,
    /// Partition key under evaluation.
    pub key: Vec<KeyValue>,
    /// Raw encoded rows copied out of storage during the scan pass.
    pub arena: Vec<u8>,
    /// Sort entries over `arena` (plus the request-row marker).
    pub entries: Vec<ScanEntry>,
    /// The projected output row.
    pub out: Vec<Value>,
    /// Warm per-window aggregate sets, indexed by window id. `None` until
    /// first use (windows are built lazily from the deployment plan).
    pub windows: Vec<Option<WindowAggSet>>,
    /// Warm per-window compiled-kernel states, indexed by window id. `None`
    /// until the window first runs through its compiled program.
    pub compiled: Vec<Option<WindowState>>,
    /// Reusable value stack for compiled expression programs
    /// ([`crate::program::ExprProgram::eval`]) — grown once, reused per row.
    pub vm_stack: Vec<Value>,
    /// Pooled flight-recorder ring for tail-latency post-mortems. The ring
    /// allocation survives across requests; [`reset`](Self::reset) leaves it
    /// alone so the warm path stays allocation-free.
    pub flight: openmldb_obs::Recorder,
    /// Cost profile of the last request served through this scratch
    /// (rows/bytes/seeks/stage-ns) — `Copy` and fixed-size, written once
    /// per request by the engine after the flight scope closes.
    pub profile: openmldb_obs::CostProfile,
    /// Reusable render buffer for the heavy-hitter partition-key string —
    /// cleared and rewritten in place so offering a hot key to the top-K
    /// sketch allocates nothing on the warm path.
    pub key_repr: String,
    /// Consistency-sentinel scan digest: armed by the engine only for the
    /// 1-in-N sampled requests, so the unsampled warm path pays a single
    /// `bool` test per window. `Copy` and fixed-size — no heap.
    pub audit: openmldb_obs::ScanDigest,
}

impl RequestScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one scanned row: copy its bytes into the arena and push a sort
    /// entry. `seq` is the arrival index used for stable tie-breaking.
    // HOT: runs once per scanned row; extends pre-grown buffers only.
    pub fn push_entry(&mut self, ts: i64, seq: usize, bytes: &[u8]) {
        let start = self.arena.len();
        self.arena.extend_from_slice(bytes);
        self.entries.push(ScanEntry {
            ts,
            seq,
            start,
            len: bytes.len(),
        });
    }

    /// Record the request row's position in the sort order without copying
    /// it into the arena (it is already decoded).
    pub fn push_request_marker(&mut self, ts: i64, seq: usize) {
        self.entries.push(ScanEntry {
            ts,
            seq,
            start: 0,
            len: REQUEST_ROW,
        });
    }

    /// The encoded bytes of `entry` within this scratch's arena.
    pub fn entry_bytes(&self, entry: &ScanEntry) -> &[u8] {
        entry.bytes(&self.arena)
    }

    /// Clear the scan buffers (arena + entries) for the next window, keeping
    /// capacity.
    pub fn reset_scan(&mut self) {
        self.arena.clear();
        self.entries.clear();
    }

    /// Clear everything for the next request, keeping capacity and warm
    /// window aggregate sets (which are `reset`, not rebuilt).
    pub fn reset(&mut self) {
        self.combined.clear();
        self.probe.clear();
        self.agg_values.clear();
        self.key.clear();
        self.arena.clear();
        self.entries.clear();
        self.out.clear();
        self.key_repr.clear();
        self.vm_stack.clear();
        self.audit.clear();
        for w in self.windows.iter_mut().flatten() {
            w.reset();
        }
        for w in self.compiled.iter_mut().flatten() {
            w.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_round_trip_bytes_and_markers() {
        let mut s = RequestScratch::new();
        s.push_entry(10, 0, &[1, 2, 3]);
        s.push_request_marker(20, 1);
        s.push_entry(5, 2, &[9]);

        assert_eq!(s.entries.len(), 3);
        assert!(!s.entries[0].is_request_row());
        assert!(s.entries[1].is_request_row());
        assert_eq!(s.entry_bytes(&s.entries[0]), &[1, 2, 3]);
        assert_eq!(s.entry_bytes(&s.entries[2]), &[9]);

        // Sorting by (ts, seq) reproduces the materializing path's stable
        // ascending-ts order.
        let mut order: Vec<ScanEntry> = s.entries.clone();
        order.sort_unstable_by_key(|e| (e.ts, e.seq));
        assert_eq!(order[0].ts, 5);
        assert!(order[2].is_request_row());
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut s = RequestScratch::new();
        s.push_entry(1, 0, &[0u8; 64]);
        s.out.push(Value::Bigint(1));
        let arena_cap = s.arena.capacity();
        let entries_cap = s.entries.capacity();
        s.reset();
        assert!(s.arena.is_empty() && s.entries.is_empty() && s.out.is_empty());
        assert_eq!(s.arena.capacity(), arena_cap);
        assert_eq!(s.entries.capacity(), entries_cap);
    }
}
