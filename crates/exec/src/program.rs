//! Deploy-time plan specialization: flat bytecode programs for the online
//! hot path (paper Section 4.2's compiled execution, reproduced without a
//! JIT).
//!
//! At DEPLOY time [`specialize`] lowers a validated [`CompiledQuery`] into a
//! [`Program`]:
//!
//! * **Window kernels** ([`WindowProgram`]) — per-aggregate update loops
//!   monomorphized by column type at compile time. Column byte offsets into
//!   the compact row encoding are pre-resolved ([`KernelSpec::at`]), the
//!   NULL-bitmap probe is baked to a `(byte, mask)` pair, and the per-row
//!   fold runs with no `Value` dispatch at all: `i64`/`f64` running sums and
//!   extrema in plain machine types, strings as byte ranges into the scan
//!   arena. Frame bounds (`ROWS n PRECEDING`, `MAXSIZE`) and the
//!   `EXCLUDE CURRENT_ROW` check are hoisted into precomputed guards
//!   ([`WindowProgram::first_in_frame`]).
//! * **Expression programs** ([`ExprProgram`]) — scalar select/WHERE
//!   expressions flattened into a register-machine program over a reusable
//!   value stack, with constant subtrees folded at compile time and scalar
//!   calls dispatched through [`ScalarFuncId`] (no per-row name lookup).
//!
//! The fold replicates the interpreted streaming path *bit for bit* —
//! including `total_cmp`'s f64-promoted comparisons for integer extrema and
//! the first-seen-wins tie rule — so the interpreted path stays the
//! always-available fallback and correctness oracle. Any construct outside
//! the specializable subset (non-projection aggregate functions, aggregate
//! arguments that are not bare columns, BOOL columns, scalar calls outside
//! the builtin dispatch table) makes that window or expression fall back
//! cleanly to interpretation, with the reason recorded on the [`Program`]
//! and counted by the `openmldb_exec_program_fallbacks_total` metric.
//!
//! The program is cached on the plan itself via
//! [`SpecializationSlot`](openmldb_sql::plan::SpecializationSlot), so every
//! deployment of a cache-hit plan shares one compiled artifact.

use std::any::Any;
use std::sync::Arc;

use openmldb_sql::plan::{BoundAggregate, BoundWindow, CompiledQuery, PhysExpr};
use openmldb_sql::BinaryOp;
use openmldb_types::codec::compact::HEADER_SIZE;
use openmldb_types::{CompactCodec, DataType, Error, Result, Value, ValueRef};

use crate::eval::{binary, evaluate};
use crate::scalar::{self, ScalarFuncId};
use crate::scratch::ScanEntry;
use crate::window::{projection_for, Projection};

// ---------------------------------------------------------------------------
// Expression programs (register machine over a reusable value stack)
// ---------------------------------------------------------------------------

/// One flat instruction. Jump targets are absolute instruction indices.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Instr {
    /// Push constant-pool entry.
    Const(u16),
    /// Push input row column.
    Col(u16),
    /// Push precomputed aggregate output.
    Agg(u16),
    /// Pop two, apply [`binary`] (NULL propagation included), push result.
    Bin(BinaryOp),
    /// Pop one, push `Bool(!v.as_bool()?)`.
    Not,
    /// Pop one, push `Bool(v.is_null() != negated)`.
    IsNull { negated: bool },
    /// Pop `argc` arguments, call the builtin, push the result.
    Call { id: ScalarFuncId, argc: u8 },
    /// Short-circuit AND probe: pop the left side; when falsy push
    /// `Bool(false)` and jump past the right side.
    AndProbe { target: u16 },
    /// Short-circuit OR probe: pop the left side; when truthy push
    /// `Bool(true)` and jump past the right side.
    OrProbe { target: u16 },
    /// Pop one, push `Bool(v.as_bool()?)` (the AND/OR result coercion).
    BoolCast,
    /// Pop a CASE branch condition; jump to the next branch when falsy.
    JumpIfFalse { target: u16 },
    /// Unconditional jump (end of a taken CASE branch).
    Jump { target: u16 },
    /// Push NULL (CASE with no ELSE).
    PushNull,
}

/// A compiled scalar expression: flat instructions plus a constant pool,
/// evaluated over a caller-provided stack buffer that is reused across
/// evaluations (zero allocations once warm).
#[derive(Debug, Clone)]
pub struct ExprProgram {
    instrs: Vec<Instr>,
    consts: Vec<Value>,
    max_stack: usize,
}

/// Builder state while lowering one [`PhysExpr`] tree.
struct ExprCompiler {
    instrs: Vec<Instr>,
    consts: Vec<Value>,
    depth: usize,
    max_depth: usize,
}

/// Whether `e` has no row or aggregate inputs (safe to fold at compile time;
/// every builtin in the dispatch table is pure).
fn is_const_expr(e: &PhysExpr) -> bool {
    match e {
        PhysExpr::Literal(_) => true,
        PhysExpr::Column(_) | PhysExpr::AggRef(_) => false,
        PhysExpr::Binary { left, right, .. } => is_const_expr(left) && is_const_expr(right),
        PhysExpr::Not(e) => is_const_expr(e),
        PhysExpr::IsNull { expr, .. } => is_const_expr(expr),
        PhysExpr::ScalarCall { args, .. } => args.iter().all(is_const_expr),
        PhysExpr::Case {
            branches,
            else_expr,
        } => {
            branches
                .iter()
                .all(|(c, v)| is_const_expr(c) && is_const_expr(v))
                && else_expr.as_ref().is_none_or(|e| is_const_expr(e))
        }
    }
}

impl ExprCompiler {
    fn push(&mut self, i: Instr, net: isize) -> std::result::Result<(), String> {
        if self.instrs.len() >= u16::MAX as usize {
            return Err("expression program too long".into());
        }
        self.instrs.push(i);
        self.depth = self
            .depth
            .checked_add_signed(net)
            .ok_or("expression program stack underflow at compile time")?;
        self.max_depth = self.max_depth.max(self.depth);
        Ok(())
    }

    /// Reserve a jump-family instruction whose target is patched later.
    fn placeholder(&mut self, i: Instr, net: isize) -> std::result::Result<usize, String> {
        let at = self.instrs.len();
        self.push(i, net)?;
        Ok(at)
    }

    fn patch(&mut self, at: usize) -> std::result::Result<(), String> {
        let target = u16::try_from(self.instrs.len()).map_err(|_| "expression program too long")?;
        match self.instrs.get_mut(at) {
            Some(
                Instr::AndProbe { target: t }
                | Instr::OrProbe { target: t }
                | Instr::JumpIfFalse { target: t }
                | Instr::Jump { target: t },
            ) => {
                *t = target;
                Ok(())
            }
            _ => Err("patched a non-jump instruction".into()),
        }
    }

    fn push_const(&mut self, v: Value) -> std::result::Result<u16, String> {
        // Small pools: linear dedup is cheaper than a map and keeps `Value`
        // hashing out of the picture.
        if let Some(i) = self.consts.iter().position(|c| {
            // Bit-faithful dedup: `Value: PartialEq` compares numerics via
            // f64 promotion, which would merge e.g. Int(1) and Double(1.0).
            c.data_type() == v.data_type() && c == &v || (c.is_null() && v.is_null())
        }) {
            return Ok(i as u16);
        }
        let i = u16::try_from(self.consts.len()).map_err(|_| "constant pool too large")?;
        self.consts.push(v);
        Ok(i)
    }

    fn emit(&mut self, e: &PhysExpr) -> std::result::Result<(), String> {
        // Constant folding: any input-free subtree collapses to one `Const`.
        // Folding is skipped when compile-time evaluation errors (e.g. a
        // constant overflow) so the runtime error surfaces exactly as the
        // interpreter would produce it.
        if !matches!(e, PhysExpr::Literal(_)) && is_const_expr(e) {
            if let Ok(v) = evaluate(e, &[], &[]) {
                let i = self.push_const(v)?;
                return self.push(Instr::Const(i), 1);
            }
        }
        match e {
            PhysExpr::Literal(v) => {
                let i = self.push_const(v.clone())?;
                self.push(Instr::Const(i), 1)
            }
            PhysExpr::Column(i) => {
                let i = u16::try_from(*i).map_err(|_| "column index too large")?;
                self.push(Instr::Col(i), 1)
            }
            PhysExpr::AggRef(i) => {
                let i = u16::try_from(*i).map_err(|_| "aggregate index too large")?;
                self.push(Instr::Agg(i), 1)
            }
            PhysExpr::Binary { op, left, right } => match op {
                BinaryOp::And => {
                    self.emit(left)?;
                    let probe = self.placeholder(Instr::AndProbe { target: 0 }, -1)?;
                    self.emit(right)?;
                    self.push(Instr::BoolCast, 0)?;
                    self.patch(probe)
                }
                BinaryOp::Or => {
                    self.emit(left)?;
                    let probe = self.placeholder(Instr::OrProbe { target: 0 }, -1)?;
                    self.emit(right)?;
                    self.push(Instr::BoolCast, 0)?;
                    self.patch(probe)
                }
                _ => {
                    self.emit(left)?;
                    self.emit(right)?;
                    self.push(Instr::Bin(*op), -1)
                }
            },
            PhysExpr::Not(e) => {
                self.emit(e)?;
                self.push(Instr::Not, 0)
            }
            PhysExpr::IsNull { expr, negated } => {
                self.emit(expr)?;
                self.push(Instr::IsNull { negated: *negated }, 0)
            }
            PhysExpr::ScalarCall { func, args } => {
                let id = scalar::resolve_def(func)
                    .ok_or_else(|| format!("scalar `{}` not in the dispatch table", func.name))?;
                for a in args {
                    self.emit(a)?;
                }
                let argc = u8::try_from(args.len()).map_err(|_| "too many call arguments")?;
                self.push(Instr::Call { id, argc }, 1 - args.len() as isize)
            }
            PhysExpr::Case {
                branches,
                else_expr,
            } => {
                let mut ends = Vec::with_capacity(branches.len());
                for (cond, val) in branches {
                    self.emit(cond)?;
                    let next = self.placeholder(Instr::JumpIfFalse { target: 0 }, -1)?;
                    self.emit(val)?;
                    ends.push(self.placeholder(Instr::Jump { target: 0 }, -1)?);
                    self.patch(next)?;
                }
                match else_expr {
                    Some(e) => self.emit(e)?,
                    None => self.push(Instr::PushNull, 1)?,
                }
                for end in ends {
                    self.patch(end)?;
                }
                Ok(())
            }
        }
    }
}

fn underflow() -> Error {
    Error::Eval("expression program stack underflow".into())
}

impl ExprProgram {
    /// Lower one expression tree, or explain why it cannot be compiled.
    pub fn compile(e: &PhysExpr) -> std::result::Result<ExprProgram, String> {
        let mut c = ExprCompiler {
            instrs: Vec::new(),
            consts: Vec::new(),
            depth: 0,
            max_depth: 0,
        };
        c.emit(e)?;
        if c.depth != 1 {
            return Err("expression program must produce exactly one value".into());
        }
        Ok(ExprProgram {
            instrs: c.instrs,
            consts: c.consts,
            max_stack: c.max_depth,
        })
    }

    /// Number of instructions (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Evaluate against `row`/`aggs`, using `stack` as the reusable value
    /// stack. Semantics (NULL propagation, short-circuit AND/OR, CASE
    /// fallthrough, error surfaces) match [`crate::evaluate`] exactly.
    pub fn eval(&self, row: &[Value], aggs: &[Value], stack: &mut Vec<Value>) -> Result<Value> {
        stack.clear();
        if stack.capacity() < self.max_stack {
            // Cold: first evaluation through a pooled stack grows it once.
            stack.reserve(self.max_stack);
        }
        let mut pc = 0usize;
        while let Some(instr) = self.instrs.get(pc) {
            pc += 1;
            match *instr {
                Instr::Const(i) => stack.push(
                    self.consts
                        .get(i as usize)
                        .cloned()
                        .ok_or_else(|| Error::Eval(format!("constant {i} out of bounds")))?,
                ),
                Instr::Col(i) => stack.push(
                    row.get(i as usize)
                        .cloned()
                        .ok_or_else(|| Error::Eval(format!("column index {i} out of bounds")))?,
                ),
                Instr::Agg(i) => stack.push(
                    aggs.get(i as usize)
                        .cloned()
                        .ok_or_else(|| Error::Eval(format!("aggregate index {i} out of bounds")))?,
                ),
                Instr::PushNull => stack.push(Value::Null),
                Instr::Bin(op) => {
                    let r = stack.pop().ok_or_else(underflow)?;
                    let l = stack.pop().ok_or_else(underflow)?;
                    stack.push(binary(op, &l, &r)?);
                }
                Instr::Not => {
                    let v = stack.pop().ok_or_else(underflow)?;
                    stack.push(Value::Bool(!v.as_bool()?));
                }
                Instr::IsNull { negated } => {
                    let v = stack.pop().ok_or_else(underflow)?;
                    stack.push(Value::Bool(v.is_null() != negated));
                }
                Instr::BoolCast => {
                    let v = stack.pop().ok_or_else(underflow)?;
                    stack.push(Value::Bool(v.as_bool()?));
                }
                Instr::AndProbe { target } => {
                    let v = stack.pop().ok_or_else(underflow)?;
                    if !v.as_bool()? {
                        stack.push(Value::Bool(false));
                        pc = target as usize;
                    }
                }
                Instr::OrProbe { target } => {
                    let v = stack.pop().ok_or_else(underflow)?;
                    if v.as_bool()? {
                        stack.push(Value::Bool(true));
                        pc = target as usize;
                    }
                }
                Instr::JumpIfFalse { target } => {
                    let v = stack.pop().ok_or_else(underflow)?;
                    if !v.as_bool()? {
                        pc = target as usize;
                    }
                }
                Instr::Jump { target } => pc = target as usize,
                Instr::Call { id, argc } => {
                    let at = stack
                        .len()
                        .checked_sub(argc as usize)
                        .ok_or_else(underflow)?;
                    let v = scalar::call_id(id, &stack[at..])?;
                    stack.truncate(at);
                    stack.push(v);
                }
            }
        }
        stack.pop().ok_or_else(underflow)
    }
}

// ---------------------------------------------------------------------------
// Window kernels (monomorphized per-type aggregate folds)
// ---------------------------------------------------------------------------

/// Column class a kernel is monomorphized for. Decides the byte-level read,
/// the running-state fields used, and the output `Value` constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelClass {
    Int,
    Bigint,
    Timestamp,
    Float,
    Double,
    Str,
}

/// One compiled per-column fold: everything the per-row loop needs,
/// resolved at deploy time.
#[derive(Debug, Clone)]
struct KernelSpec {
    /// Base-schema column index (also the request-row slot).
    col: usize,
    class: KernelClass,
    /// Absolute byte offset of the fixed-width field in the compact
    /// encoding (header + NULL bitmap included). Unused for `Str`.
    at: usize,
    /// NULL-bitmap probe, baked to a byte index + mask.
    null_byte: usize,
    null_mask: u8,
    /// Maintain running sums (`sum`/`avg`/`stddev` bound to this column).
    track_sums: bool,
    /// Maintain running extrema (`min`/`max` bound to this column).
    track_minmax: bool,
}

/// Where a running string extremum lives. Stored rows borrow the scan arena
/// (a byte range — no copy until output); the request row is fed last, so a
/// `Request` slot can only be set after every arena candidate was compared.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum StrSlot {
    #[default]
    None,
    Arena {
        start: usize,
        len: usize,
    },
    Request,
}

/// Running fold state for one kernel — plain machine words, reset per
/// request, pooled in the request scratch.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelState {
    count: u64,
    sum_i: i64,
    sum_f: f64,
    sum_sq: f64,
    min_i: i64,
    max_i: i64,
    min_f: f64,
    max_f: f64,
    min_f32: f32,
    max_f32: f32,
    min_str: StrSlot,
    max_str: StrSlot,
}

/// Pooled per-window kernel states (lives in the request scratch so warm
/// requests never allocate).
#[derive(Debug, Default)]
pub struct WindowState {
    kernels: Vec<KernelState>,
}

impl WindowState {
    pub fn reset(&mut self) {
        for k in &mut self.kernels {
            *k = KernelState::default();
        }
    }
}

/// Iteration order [`WindowProgram::run`] uses over the scan entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryOrder {
    /// `entries` is already sorted ascending by `(ts, seq)`.
    Ascending,
    /// `entries` is in scan order with strictly descending timestamps —
    /// iterate in reverse to replay ascending order without sorting.
    ReversedScan,
}

// The per-row integer fold. Mirrors `SharedNumeric::update` bit for bit:
// sums wrap (`wrapping_add`) with an f64 shadow for avg/stddev, and the
// extrema comparison runs in f64-promoted space exactly like
// `Value::total_cmp` does for every numeric pair — with the first-seen raw
// value kept on promotion ties (e.g. distinct i64s beyond 2^53).
impl KernelState {
    #[inline(always)]
    fn feed_int(&mut self, v: i64, spec: &KernelSpec) {
        if spec.track_sums {
            self.sum_i = self.sum_i.wrapping_add(v);
            let f = v as f64;
            self.sum_f += f;
            self.sum_sq += f * f;
        }
        self.count += 1;
        if spec.track_minmax {
            if self.count == 1 {
                self.min_i = v;
                self.max_i = v;
            } else {
                let f = v as f64;
                if f.total_cmp(&(self.min_i as f64)).is_lt() {
                    self.min_i = v;
                }
                if f.total_cmp(&(self.max_i as f64)).is_gt() {
                    self.max_i = v;
                }
            }
        }
    }

    #[inline(always)]
    fn feed_double(&mut self, v: f64, spec: &KernelSpec) {
        if spec.track_sums {
            self.sum_f += v;
            self.sum_sq += v * v;
        }
        self.count += 1;
        if spec.track_minmax {
            if self.count == 1 {
                self.min_f = v;
                self.max_f = v;
            } else {
                if v.total_cmp(&self.min_f).is_lt() {
                    self.min_f = v;
                }
                if v.total_cmp(&self.max_f).is_gt() {
                    self.max_f = v;
                }
            }
        }
    }

    #[inline(always)]
    fn feed_float(&mut self, v: f32, spec: &KernelSpec) {
        if spec.track_sums {
            let f = v as f64;
            self.sum_f += f;
            self.sum_sq += f * f;
        }
        self.count += 1;
        if spec.track_minmax {
            if self.count == 1 {
                self.min_f32 = v;
                self.max_f32 = v;
            } else {
                // Compare in promoted f64 space (what the interpreter's
                // `total_cmp` does) but keep the raw f32 so the output
                // round-trips bit-exactly.
                let f = v as f64;
                if f.total_cmp(&(self.min_f32 as f64)).is_lt() {
                    self.min_f32 = v;
                }
                if f.total_cmp(&(self.max_f32 as f64)).is_gt() {
                    self.max_f32 = v;
                }
            }
        }
    }

    #[inline(always)]
    fn feed_str(&mut self, s: &str, arena: &[u8], spec: &KernelSpec) -> Result<()> {
        self.count += 1;
        if !spec.track_minmax {
            return Ok(());
        }
        let bytes = s.as_bytes();
        if self.count == 1 {
            let slot = StrSlot::arena_of(bytes, arena)?;
            self.min_str = slot;
            self.max_str = slot;
            return Ok(());
        }
        // `&str` ordering is byte-lexicographic, so comparing raw bytes
        // reproduces `Value::total_cmp` on strings; strict comparisons keep
        // the first-seen instance on ties.
        if bytes < StrSlot::resolve(self.min_str, arena)? {
            self.min_str = StrSlot::arena_of(bytes, arena)?;
        }
        if bytes > StrSlot::resolve(self.max_str, arena)? {
            self.max_str = StrSlot::arena_of(bytes, arena)?;
        }
        Ok(())
    }

    /// Feed one decoded request-row value (always the last row fed).
    fn feed_request(&mut self, v: &Value, arena: &[u8], spec: &KernelSpec) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        match spec.class {
            KernelClass::Int | KernelClass::Bigint | KernelClass::Timestamp => {
                self.feed_int(v.as_i64()?, spec);
            }
            KernelClass::Float => self.feed_float(v.as_f64()? as f32, spec),
            KernelClass::Double => self.feed_double(v.as_f64()?, spec),
            KernelClass::Str => {
                let bytes = v.as_str()?.as_bytes();
                self.count += 1;
                if !spec.track_minmax {
                    return Ok(());
                }
                if self.count == 1 {
                    self.min_str = StrSlot::Request;
                    self.max_str = StrSlot::Request;
                    return Ok(());
                }
                if bytes < StrSlot::resolve(self.min_str, arena)? {
                    self.min_str = StrSlot::Request;
                }
                if bytes > StrSlot::resolve(self.max_str, arena)? {
                    self.max_str = StrSlot::Request;
                }
            }
        }
        Ok(())
    }
}

impl StrSlot {
    /// Record `bytes` (a slice borrowed from `arena`) as an offset range.
    #[inline(always)]
    fn arena_of(bytes: &[u8], arena: &[u8]) -> Result<StrSlot> {
        let start = (bytes.as_ptr() as usize)
            .checked_sub(arena.as_ptr() as usize)
            .filter(|s| s.checked_add(bytes.len()).is_some_and(|e| e <= arena.len()))
            .ok_or_else(|| Error::Eval("string extremum source outside the scan arena".into()))?;
        Ok(StrSlot::Arena {
            start,
            len: bytes.len(),
        })
    }

    /// The bytes a slot refers to. Only called while stored rows are being
    /// fed, so `Request` (set last) and `None` (count >= 1) cannot occur.
    #[inline(always)]
    fn resolve(slot: StrSlot, arena: &[u8]) -> Result<&[u8]> {
        match slot {
            StrSlot::Arena { start, len } => arena
                .get(start..start + len)
                .ok_or_else(|| Error::Eval("string extremum range outside the scan arena".into())),
            StrSlot::None | StrSlot::Request => Err(Error::Eval(
                "string extremum slot resolved out of order".into(),
            )),
        }
    }
}

/// A window's aggregates compiled to monomorphized kernels, plus the frame
/// guards hoisted out of the per-request path.
#[derive(Debug)]
pub struct WindowProgram {
    kernels: Vec<KernelSpec>,
    /// Output bindings in aggregate order: (kernel index, projection).
    bindings: Vec<(usize, Projection)>,
    /// Whether any kernel reads a var-width field (strings) — those rows go
    /// through a validated [`RowView`](openmldb_types::RowView); fixed-only
    /// programs read bytes directly after a 3-field header check.
    needs_view: bool,
    /// Minimum valid encoded length (header + bitmap + fixed area),
    /// precomputed so fixed-only row validation is three compares.
    min_row_len: usize,
    schema_version: u8,
    /// `ROWS n PRECEDING` cap (`None` for range/unbounded frames).
    rows_preceding: Option<usize>,
    /// `MAXSIZE` cap.
    maxsize: Option<usize>,
    /// Hoisted `EXCLUDE CURRENT_ROW` guard: whether the request row joins
    /// the frame.
    pub include_request: bool,
}

impl WindowProgram {
    /// Compile one window's aggregates, or explain why they fall back.
    fn compile(
        window: &BoundWindow,
        aggs: &[&BoundAggregate],
        codec: &CompactCodec,
    ) -> std::result::Result<WindowProgram, String> {
        let schema = codec.schema();
        let mut kernels: Vec<KernelSpec> = Vec::new();
        let mut bindings = Vec::with_capacity(aggs.len());
        for agg in aggs {
            let Some(proj) = projection_for(agg.func.name) else {
                return Err(format!(
                    "aggregate `{}` has no specialized kernel",
                    agg.func.name
                ));
            };
            let col = match agg.args.as_slice() {
                [PhysExpr::Column(c)] => *c,
                _ => {
                    return Err(format!(
                        "aggregate `{}` argument is not a bare column",
                        agg.func.name
                    ))
                }
            };
            let def = schema
                .columns()
                .get(col)
                .ok_or_else(|| format!("aggregate column {col} out of schema range"))?;
            let class = match def.data_type {
                DataType::Int => KernelClass::Int,
                DataType::Bigint => KernelClass::Bigint,
                DataType::Timestamp => KernelClass::Timestamp,
                DataType::Float => KernelClass::Float,
                DataType::Double => KernelClass::Double,
                DataType::String => KernelClass::Str,
                DataType::Bool => {
                    return Err(format!(
                        "BOOL column `{}` has no specialized kernel",
                        def.name
                    ))
                }
            };
            if class == KernelClass::Str
                && matches!(proj, Projection::Sum | Projection::Avg | Projection::Stddev)
            {
                return Err(format!(
                    "`{}` over STRING column `{}` has no specialized kernel",
                    agg.func.name, def.name
                ));
            }
            let at = if class == KernelClass::Str {
                0
            } else {
                codec
                    .fixed_field_offset(col)
                    .ok_or_else(|| format!("column `{}` has no fixed offset", def.name))?
            };
            // Aggregates over the same column share one kernel — the same
            // grouping the interpreted cyclic binding performs (identical
            // single-column argument lists land in one shared slot).
            let k = match kernels.iter().position(|ks| ks.col == col) {
                Some(k) => k,
                None => {
                    kernels.push(KernelSpec {
                        col,
                        class,
                        at,
                        null_byte: HEADER_SIZE + col / 8,
                        null_mask: 1 << (col % 8),
                        track_sums: false,
                        track_minmax: false,
                    });
                    kernels.len() - 1
                }
            };
            if let Some(ks) = kernels.get_mut(k) {
                match proj {
                    Projection::Min | Projection::Max => ks.track_minmax = true,
                    Projection::Sum | Projection::Avg | Projection::Stddev => ks.track_sums = true,
                    Projection::Count => {}
                }
            }
            bindings.push((k, proj));
        }
        Ok(WindowProgram {
            needs_view: kernels.iter().any(|k| k.class == KernelClass::Str),
            kernels,
            bindings,
            min_row_len: codec.min_encoded_len(),
            schema_version: codec.schema_version(),
            rows_preceding: match window.frame {
                openmldb_sql::ast::Frame::Rows { preceding } => Some(preceding as usize),
                _ => None,
            },
            maxsize: window.maxsize,
            include_request: !window.exclude_current_row,
        })
    }

    /// Fresh (pool-able) fold state sized for this program.
    pub fn new_state(&self) -> WindowState {
        WindowState {
            kernels: vec![KernelState::default(); self.kernels.len()],
        }
    }

    /// The hoisted frame guard: index of the first in-frame row among
    /// `total` candidate rows in ascending `(ts, seq)` order (request row
    /// included in `total` when it joins the frame). Replicates the
    /// interpreted path's `ROWS n PRECEDING` + `MAXSIZE` cap arithmetic.
    pub fn first_in_frame(&self, total: usize) -> usize {
        let mut first = 0usize;
        if let Some(p) = self.rows_preceding {
            first = total.saturating_sub(p.saturating_add(1));
        }
        if let Some(m) = self.maxsize {
            first = first.max(total.saturating_sub(m));
        }
        first
    }

    /// Run the fold over the scanned entries. `first` is the in-frame start
    /// from [`first_in_frame`](Self::first_in_frame) (over stored rows +
    /// request), `request` is the decoded request row iff it joins the frame
    /// at or past `first` — it is always fed last, matching its position in
    /// the interpreted sort order (its `ts` is the anchor, `>=` every stored
    /// row, and its `seq` is the largest). `probe` runs every 64 fed rows so
    /// a deadline can interrupt long folds.
    // One flat call per window per request: the executor hands over its
    // borrowed scan state piecewise, and bundling it into a struct would
    // just add a construction step on the hot path.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        state: &mut WindowState,
        entries: &[ScanEntry],
        first: usize,
        order: EntryOrder,
        arena: &[u8],
        request: Option<&[Value]>,
        codec: &CompactCodec,
        probe: &mut dyn FnMut() -> Result<()>,
    ) -> Result<()> {
        if state.kernels.len() != self.kernels.len() {
            state
                .kernels
                .resize(self.kernels.len(), KernelState::default());
        }
        state.reset();
        let n = entries.len();
        let take = n.saturating_sub(first);
        let mut fed = 0u32;
        match order {
            EntryOrder::Ascending => {
                for e in &entries[n - take..] {
                    self.feed_row(state, e.bytes(arena), arena, codec)?;
                    fed += 1;
                    if fed & 63 == 0 {
                        probe()?;
                    }
                }
            }
            EntryOrder::ReversedScan => {
                for e in entries[..take].iter().rev() {
                    self.feed_row(state, e.bytes(arena), arena, codec)?;
                    fed += 1;
                    if fed & 63 == 0 {
                        probe()?;
                    }
                }
            }
        }
        if let Some(req) = request {
            for (spec, st) in self.kernels.iter().zip(state.kernels.iter_mut()) {
                let v = req.get(spec.col).ok_or_else(|| {
                    Error::Eval(format!("request column {} out of bounds", spec.col))
                })?;
                st.feed_request(v, arena, spec)?;
            }
            // The request row counts toward the probe cadence so the typed
            // timeout fires at the same fed-row count as the interpreted
            // path (which probes per entry, request marker included).
            fed += 1;
            if fed & 63 == 0 {
                probe()?;
            }
        }
        Ok(())
    }

    // HOT: the compiled per-row dispatch loop — one NULL-bit probe plus one
    // fixed-offset little-endian read per kernel, no `Value` construction,
    // no parse beyond the 3-field header check for fixed-only programs.
    #[inline]
    fn feed_row(
        &self,
        state: &mut WindowState,
        buf: &[u8],
        arena: &[u8],
        codec: &CompactCodec,
    ) -> Result<()> {
        if self.needs_view {
            return self.feed_row_view(state, buf, arena, codec);
        }
        if buf.len() < self.min_row_len {
            return Err(truncated_row(buf.len(), self.min_row_len));
        }
        let declared = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]) as usize;
        if declared != buf.len() {
            return Err(length_mismatch(declared, buf.len()));
        }
        if buf[1] != self.schema_version {
            return Err(version_mismatch(buf[1], self.schema_version));
        }
        for (spec, st) in self.kernels.iter().zip(state.kernels.iter_mut()) {
            if buf
                .get(spec.null_byte)
                .is_none_or(|b| b & spec.null_mask != 0)
            {
                continue;
            }
            match spec.class {
                KernelClass::Int => match read4(buf, spec.at) {
                    Some(b) => st.feed_int(i32::from_le_bytes(b) as i64, spec),
                    None => return Err(truncated_row(buf.len(), spec.at + 4)),
                },
                KernelClass::Bigint | KernelClass::Timestamp => match read8(buf, spec.at) {
                    Some(b) => st.feed_int(i64::from_le_bytes(b), spec),
                    None => return Err(truncated_row(buf.len(), spec.at + 8)),
                },
                KernelClass::Float => match read4(buf, spec.at) {
                    Some(b) => st.feed_float(f32::from_le_bytes(b), spec),
                    None => return Err(truncated_row(buf.len(), spec.at + 4)),
                },
                KernelClass::Double => match read8(buf, spec.at) {
                    Some(b) => st.feed_double(f64::from_le_bytes(b), spec),
                    None => return Err(truncated_row(buf.len(), spec.at + 8)),
                },
                // Unreachable: `needs_view` routed string programs away.
                KernelClass::Str => return Err(str_without_view()),
            }
        }
        Ok(())
    }

    // HOT: per-row loop of string-bearing programs — fixed fields still read
    // at baked offsets; only string kernels go through the validated view,
    // borrowing the arena (no copy until output).
    fn feed_row_view(
        &self,
        state: &mut WindowState,
        buf: &[u8],
        arena: &[u8],
        codec: &CompactCodec,
    ) -> Result<()> {
        let view = codec.view(buf)?;
        for (spec, st) in self.kernels.iter().zip(state.kernels.iter_mut()) {
            if buf
                .get(spec.null_byte)
                .is_none_or(|b| b & spec.null_mask != 0)
            {
                continue;
            }
            match spec.class {
                KernelClass::Int => match read4(buf, spec.at) {
                    Some(b) => st.feed_int(i32::from_le_bytes(b) as i64, spec),
                    None => return Err(truncated_row(buf.len(), spec.at + 4)),
                },
                KernelClass::Bigint | KernelClass::Timestamp => match read8(buf, spec.at) {
                    Some(b) => st.feed_int(i64::from_le_bytes(b), spec),
                    None => return Err(truncated_row(buf.len(), spec.at + 8)),
                },
                KernelClass::Float => match read4(buf, spec.at) {
                    Some(b) => st.feed_float(f32::from_le_bytes(b), spec),
                    None => return Err(truncated_row(buf.len(), spec.at + 4)),
                },
                KernelClass::Double => match read8(buf, spec.at) {
                    Some(b) => st.feed_double(f64::from_le_bytes(b), spec),
                    None => return Err(truncated_row(buf.len(), spec.at + 8)),
                },
                KernelClass::Str => match view.get(spec.col)? {
                    ValueRef::Str(s) => st.feed_str(s, arena, spec)?,
                    ValueRef::Null => {}
                    _ => return Err(str_class_mismatch()),
                },
            }
        }
        Ok(())
    }

    /// Project the fold state into output values, one per bound aggregate,
    /// in aggregate order. Must be called with the same `arena`/`request`
    /// the fold ran over (string extrema borrow them until this point).
    pub fn outputs_into(
        &self,
        state: &WindowState,
        arena: &[u8],
        request: Option<&[Value]>,
        out: &mut Vec<Value>,
    ) -> Result<()> {
        for &(k, proj) in &self.bindings {
            let (spec, st) = match (self.kernels.get(k), state.kernels.get(k)) {
                (Some(spec), Some(st)) => (spec, st),
                _ => return Err(Error::Eval("kernel binding out of bounds".into())),
            };
            let v = match proj {
                Projection::Count => Value::Bigint(st.count as i64),
                Projection::Sum => {
                    if st.count == 0 {
                        Value::Null
                    } else {
                        match spec.class {
                            // Integral columns keep the interpreter's
                            // `all_int` wrapping i64 sum.
                            KernelClass::Int | KernelClass::Bigint | KernelClass::Timestamp => {
                                Value::Bigint(st.sum_i)
                            }
                            _ => Value::Double(st.sum_f),
                        }
                    }
                }
                Projection::Avg => {
                    if st.count == 0 {
                        Value::Null
                    } else {
                        Value::Double(st.sum_f / st.count as f64)
                    }
                }
                Projection::Stddev => {
                    if st.count < 2 {
                        Value::Null
                    } else {
                        let n = st.count as f64;
                        let var = ((st.sum_sq - st.sum_f * st.sum_f / n) / (n - 1.0)).max(0.0);
                        Value::Double(var.sqrt())
                    }
                }
                Projection::Min => self.extremum(spec, st, true, arena, request)?,
                Projection::Max => self.extremum(spec, st, false, arena, request)?,
            };
            out.push(v);
        }
        Ok(())
    }

    fn extremum(
        &self,
        spec: &KernelSpec,
        st: &KernelState,
        min: bool,
        arena: &[u8],
        request: Option<&[Value]>,
    ) -> Result<Value> {
        if st.count == 0 {
            return Ok(Value::Null);
        }
        Ok(match spec.class {
            KernelClass::Int => Value::Int((if min { st.min_i } else { st.max_i }) as i32),
            KernelClass::Bigint => Value::Bigint(if min { st.min_i } else { st.max_i }),
            KernelClass::Timestamp => Value::Timestamp(if min { st.min_i } else { st.max_i }),
            KernelClass::Float => Value::Float(if min { st.min_f32 } else { st.max_f32 }),
            KernelClass::Double => Value::Double(if min { st.min_f } else { st.max_f }),
            KernelClass::Str => match if min { st.min_str } else { st.max_str } {
                StrSlot::None => Value::Null,
                StrSlot::Arena { start, len } => {
                    let bytes = arena.get(start..start + len).ok_or_else(|| {
                        Error::Eval("string extremum range outside the scan arena".into())
                    })?;
                    let s = std::str::from_utf8(bytes)
                        .map_err(|e| Error::Eval(format!("non-UTF-8 string extremum: {e}")))?;
                    Value::string(s)
                }
                StrSlot::Request => {
                    request
                        .and_then(|r| r.get(spec.col))
                        .cloned()
                        .ok_or_else(|| {
                            Error::Eval("request-row string extremum without request row".into())
                        })?
                }
            },
        })
    }
}

/// Bounds-checked fixed-width little-endian reads — `None` instead of a
/// panic path when the row is shorter than the baked offset promises.
#[inline(always)]
fn read4(buf: &[u8], at: usize) -> Option<[u8; 4]> {
    let s = buf.get(at..at.checked_add(4)?)?;
    let mut b = [0u8; 4];
    b.copy_from_slice(s);
    Some(b)
}

#[inline(always)]
fn read8(buf: &[u8], at: usize) -> Option<[u8; 8]> {
    let s = buf.get(at..at.checked_add(8)?)?;
    let mut b = [0u8; 8];
    b.copy_from_slice(s);
    Some(b)
}

#[cold]
fn truncated_row(len: usize, need: usize) -> Error {
    Error::Codec(format!("row too short: {len} bytes, need {need}"))
}

#[cold]
fn length_mismatch(declared: usize, actual: usize) -> Error {
    Error::Codec(format!(
        "row length mismatch: declared {declared}, got {actual}"
    ))
}

#[cold]
fn version_mismatch(got: u8, want: u8) -> Error {
    Error::Codec(format!("schema version mismatch: row {got}, codec {want}"))
}

#[cold]
fn str_without_view() -> Error {
    Error::Eval("string kernel dispatched without a row view".into())
}

#[cold]
fn str_class_mismatch() -> Error {
    Error::Eval("string kernel read a non-string field".into())
}

// ---------------------------------------------------------------------------
// Whole-plan program + the deploy-time specialization entry point
// ---------------------------------------------------------------------------

/// Per-window compilation outcome.
#[derive(Debug)]
enum WindowUnit {
    Compiled(WindowProgram),
    /// The window stays on the interpreted path; the reason is surfaced per
    /// deployment (fallback attribution).
    Fallback(String),
    /// No aggregates bound to this window — nothing to run either way.
    NoAggs,
}

/// A deployed plan lowered to bytecode: per-window kernels plus flattened
/// select/WHERE expression programs. Windows (and the select/WHERE programs)
/// that use unsupported constructs fall back to interpretation individually.
#[derive(Debug)]
pub struct Program {
    windows: Vec<WindowUnit>,
    /// Select-list programs (all-or-nothing: one uncompilable output column
    /// keeps the whole projection interpreted so output stays one code path).
    select: Option<Vec<ExprProgram>>,
    where_program: Option<ExprProgram>,
}

impl Program {
    /// Lower `query`. Infallible: anything that cannot be specialized is
    /// recorded as a fallback, never an error.
    pub fn compile(query: &CompiledQuery) -> Program {
        let codec = CompactCodec::new(query.base_schema.clone());
        let by_window = query.aggregates_by_window();
        let windows = query
            .windows
            .iter()
            .enumerate()
            .map(|(wid, w)| {
                let aggs: Vec<&BoundAggregate> = by_window[wid]
                    .iter()
                    .map(|&i| &query.aggregates[i])
                    .collect();
                if aggs.is_empty() {
                    return WindowUnit::NoAggs;
                }
                match WindowProgram::compile(w, &aggs, &codec) {
                    Ok(wp) => WindowUnit::Compiled(wp),
                    Err(reason) => WindowUnit::Fallback(reason),
                }
            })
            .collect();
        let select = query
            .select
            .iter()
            .map(|c| ExprProgram::compile(&c.expr))
            .collect::<std::result::Result<Vec<_>, String>>()
            .ok();
        let where_program = query
            .where_clause
            .as_ref()
            .and_then(|p| ExprProgram::compile(p).ok());
        Program {
            windows,
            select,
            where_program,
        }
    }

    /// A program that compiled nothing: every window and expression takes
    /// the interpreted path. Benchmarks and differential tests use this to
    /// pin the fallback route for plans that would otherwise specialize.
    pub fn interpreted_only(windows: usize) -> Program {
        Program {
            windows: (0..windows)
                .map(|_| WindowUnit::Fallback("specialization disabled".into()))
                .collect(),
            select: None,
            where_program: None,
        }
    }

    /// The compiled kernels for window `wid`, if it specialized.
    pub fn window(&self, wid: usize) -> Option<&WindowProgram> {
        match self.windows.get(wid) {
            Some(WindowUnit::Compiled(wp)) => Some(wp),
            _ => None,
        }
    }

    /// Why window `wid` fell back to interpretation (None when compiled or
    /// aggregate-free).
    pub fn fallback_reason(&self, wid: usize) -> Option<&str> {
        match self.windows.get(wid) {
            Some(WindowUnit::Fallback(r)) => Some(r),
            _ => None,
        }
    }

    pub fn compiled_windows(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| matches!(w, WindowUnit::Compiled(_)))
            .count()
    }

    pub fn fallback_windows(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| matches!(w, WindowUnit::Fallback(_)))
            .count()
    }

    /// Compiled select-list programs, one per output column (None: the
    /// projection runs interpreted).
    pub fn select_programs(&self) -> Option<&[ExprProgram]> {
        self.select.as_deref()
    }

    /// Compiled WHERE program (None: no WHERE clause, or it runs
    /// interpreted).
    pub fn where_program(&self) -> Option<&ExprProgram> {
        self.where_program.as_ref()
    }
}

/// The specialized program for `query`, compiling (and counting) it on first
/// access. The program rides the plan's
/// [`SpecializationSlot`](openmldb_sql::plan::SpecializationSlot), so every
/// deployment of a plan-cache hit shares one artifact and compilation
/// happens once per distinct plan, at deploy time — never on the request
/// path.
pub fn specialize(query: &CompiledQuery) -> Arc<Program> {
    let cached = query.specialized.get_or_init(|| {
        let p = Program::compile(query);
        crate::metrics::program_plans().inc();
        crate::metrics::program_windows().add(p.compiled_windows() as u64);
        crate::metrics::program_fallbacks().add(p.fallback_windows() as u64);
        Arc::new(p) as Arc<dyn Any + Send + Sync>
    });
    // The slot is shared with nothing else; a foreign type can only appear
    // if some other layer claimed it first — recompile locally then.
    Arc::downcast::<Program>(cached).unwrap_or_else(|_| Arc::new(Program::compile(query)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::REQUEST_ROW;
    use crate::window::WindowAggSet;
    use openmldb_sql::functions::lookup;
    use openmldb_sql::plan::PhysExpr;
    use openmldb_types::codec::RowCodec;
    use openmldb_types::{ColumnDef, DataType, Row, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("k", DataType::String).not_null(),
            ColumnDef::new("ts", DataType::Timestamp).not_null(),
            ColumnDef::new("i", DataType::Int),
            ColumnDef::new("b", DataType::Bigint),
            ColumnDef::new("f", DataType::Float),
            ColumnDef::new("d", DataType::Double),
            ColumnDef::new("s", DataType::String),
        ])
        .expect("valid schema")
    }

    fn agg(name: &str, col: usize, window_id: usize) -> BoundAggregate {
        BoundAggregate {
            window_id,
            func: lookup(name).expect("builtin"),
            args: vec![PhysExpr::Column(col)],
            output_type: DataType::Double,
        }
    }

    fn window() -> BoundWindow {
        BoundWindow {
            name: "w".into(),
            merged_names: vec!["w".into()],
            partition_cols: vec![0],
            order_col: 1,
            order_desc: false,
            frame: openmldb_sql::ast::Frame::Unbounded,
            maxsize: None,
            exclude_current_row: false,
            instance_not_in_window: false,
            union_tables: Vec::new(),
        }
    }

    /// Deterministic value mix, including NULLs, negative numbers and
    /// repeated strings (tie coverage for first-seen-wins extrema).
    fn row(i: i64) -> Row {
        let s = match i % 5 {
            0 => Value::Null,
            1 => Value::string("pear"),
            2 => Value::string("apple"),
            3 => Value::string("apple"),
            _ => Value::string("zebra"),
        };
        Row::new(vec![
            Value::string("k1"),
            Value::Timestamp(1_000 + i),
            if i % 7 == 0 {
                Value::Null
            } else {
                Value::Int((i * 13 % 97 - 40) as i32)
            },
            Value::Bigint(i * 1_000_003 - 50),
            Value::Float((i as f32) * 0.5 - 3.0),
            if i % 3 == 0 {
                Value::Null
            } else {
                Value::Double((i as f64) * 1.25 - 10.0)
            },
            s,
        ])
    }

    fn fold_both(
        aggs: &[BoundAggregate],
        rows: &[Row],
        request: Option<&Row>,
    ) -> (Vec<Value>, Vec<Value>) {
        let schema = schema();
        let codec = CompactCodec::new(schema.clone());
        let w = window();
        let refs: Vec<&BoundAggregate> = aggs.iter().collect();
        let wp = WindowProgram::compile(&w, &refs, &codec).expect("compiles");

        // Interpreted oracle.
        let mut set = WindowAggSet::new(&refs).expect("agg set");
        for r in rows {
            set.update(r.values()).expect("update");
        }
        if let Some(r) = request {
            set.update(r.values()).expect("request update");
        }
        let expected = set.outputs();

        // Compiled: encode rows into an arena, feed through the kernels.
        let mut arena = Vec::new();
        let mut entries = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            let bytes = codec.encode(r).expect("encode");
            let start = arena.len();
            arena.extend_from_slice(&bytes);
            entries.push(ScanEntry {
                ts: r.values()[1].as_i64().expect("ts"),
                seq: i,
                start,
                len: bytes.len(),
            });
        }
        let mut state = wp.new_state();
        let req_values = request.map(|r| r.values());
        let mut probe = || Ok(());
        wp.run(
            &mut state,
            &entries,
            0,
            EntryOrder::Ascending,
            &arena,
            req_values,
            &codec,
            &mut probe,
        )
        .expect("run");
        let mut got = Vec::new();
        wp.outputs_into(&state, &arena, req_values, &mut got)
            .expect("outputs");
        (expected, got)
    }

    fn assert_bit_identical(expected: &[Value], got: &[Value]) {
        assert_eq!(expected.len(), got.len());
        for (e, g) in expected.iter().zip(got) {
            // `Value: PartialEq` promotes numerics; compare the rendered
            // forms too so Int(3) vs Bigint(3) or -0.0 vs 0.0 cannot slip
            // through.
            assert_eq!(e, g, "value mismatch: {e:?} vs {g:?}");
            assert_eq!(e.data_type(), g.data_type(), "{e:?} vs {g:?}");
            assert_eq!(format!("{e:?}"), format!("{g:?}"));
        }
    }

    #[test]
    fn kernels_match_interpreted_fold_across_types() {
        let aggs = vec![
            agg("sum", 2, 0),
            agg("count", 2, 0),
            agg("avg", 2, 0),
            agg("min", 2, 0),
            agg("max", 2, 0),
            agg("stddev", 2, 0),
            agg("sum", 3, 0),
            agg("min", 3, 0),
            agg("sum", 4, 0),
            agg("max", 4, 0),
            agg("sum", 5, 0),
            agg("avg", 5, 0),
            agg("min", 5, 0),
            agg("stddev", 5, 0),
            agg("count", 6, 0),
            agg("min", 6, 0),
            agg("max", 6, 0),
            agg("min", 1, 0),
            agg("max", 1, 0),
        ];
        let rows: Vec<Row> = (0..40).map(row).collect();
        let request = row(40);
        let (expected, got) = fold_both(&aggs, &rows, Some(&request));
        assert_bit_identical(&expected, &got);
    }

    #[test]
    fn kernels_match_on_empty_and_all_null_windows() {
        let aggs = vec![
            agg("sum", 2, 0),
            agg("avg", 2, 0),
            agg("min", 2, 0),
            agg("stddev", 2, 0),
            agg("count", 6, 0),
            agg("min", 6, 0),
        ];
        let (expected, got) = fold_both(&aggs, &[], None);
        assert_bit_identical(&expected, &got);

        // All-NULL int column (i % 7 == 0 rows only would be synthetic;
        // build explicit all-null rows instead).
        let mut nulls = Vec::new();
        for i in 0..5 {
            nulls.push(Row::new(vec![
                Value::string("k1"),
                Value::Timestamp(1_000 + i),
                Value::Null,
                Value::Bigint(i),
                Value::Float(0.0),
                Value::Null,
                Value::Null,
            ]));
        }
        let aggs = vec![agg("sum", 2, 0), agg("min", 2, 0), agg("count", 6, 0)];
        let (expected, got) = fold_both(&aggs, &nulls, None);
        assert_bit_identical(&expected, &got);
    }

    #[test]
    fn reversed_scan_order_replays_ascending_without_sort() {
        let schema = schema();
        let codec = CompactCodec::new(schema.clone());
        let w = window();
        let aggs = [agg("sum", 3, 0), agg("min", 3, 0), agg("max", 6, 0)];
        let refs: Vec<&BoundAggregate> = aggs.iter().collect();
        let wp = WindowProgram::compile(&w, &refs, &codec).expect("compiles");

        let rows: Vec<Row> = (0..20).map(row).collect();
        let mut arena = Vec::new();
        // Scan order: newest first (strictly descending ts).
        let mut entries = Vec::new();
        for (i, r) in rows.iter().rev().enumerate() {
            let bytes = codec.encode(r).expect("encode");
            let start = arena.len();
            arena.extend_from_slice(&bytes);
            entries.push(ScanEntry {
                ts: r.values()[1].as_i64().expect("ts"),
                seq: i,
                start,
                len: bytes.len(),
            });
        }
        let mut probe = || Ok(());

        let mut st_rev = wp.new_state();
        wp.run(
            &mut st_rev,
            &entries,
            0,
            EntryOrder::ReversedScan,
            &arena,
            None,
            &codec,
            &mut probe,
        )
        .expect("run");
        let mut got_rev = Vec::new();
        wp.outputs_into(&st_rev, &arena, None, &mut got_rev)
            .expect("outputs");

        // Oracle: ascending order over sorted entries.
        let mut sorted = entries.clone();
        sorted.sort_unstable_by_key(|e| (e.ts, e.seq));
        let mut st_asc = wp.new_state();
        wp.run(
            &mut st_asc,
            &sorted,
            0,
            EntryOrder::Ascending,
            &arena,
            None,
            &codec,
            &mut probe,
        )
        .expect("run");
        let mut got_asc = Vec::new();
        wp.outputs_into(&st_asc, &arena, None, &mut got_asc)
            .expect("outputs");
        assert_bit_identical(&got_asc, &got_rev);
    }

    #[test]
    fn frame_guard_matches_engine_arithmetic() {
        let mut w = window();
        w.frame = openmldb_sql::ast::Frame::Rows { preceding: 3 };
        w.maxsize = Some(2);
        let codec = CompactCodec::new(schema());
        let aggs = [agg("count", 2, 0)];
        let refs: Vec<&BoundAggregate> = aggs.iter().collect();
        let wp = WindowProgram::compile(&w, &refs, &codec).expect("compiles");
        // ROWS 3 PRECEDING keeps 4, MAXSIZE 2 tightens to 2.
        assert_eq!(wp.first_in_frame(10), 8);
        assert_eq!(wp.first_in_frame(2), 0);
        assert_eq!(wp.first_in_frame(0), 0);
        // MAXSIZE 0: empty frame (first == total).
        w.maxsize = Some(0);
        let wp = WindowProgram::compile(&w, &refs, &codec).expect("compiles");
        assert_eq!(wp.first_in_frame(5), 5);
    }

    #[test]
    fn unsupported_constructs_fall_back_with_reasons() {
        let codec = CompactCodec::new(schema());
        let w = window();
        // Non-projection function.
        let a = BoundAggregate {
            window_id: 0,
            func: lookup("distinct_count").expect("builtin"),
            args: vec![PhysExpr::Column(2)],
            output_type: DataType::Bigint,
        };
        let err = WindowProgram::compile(&w, &[&a], &codec).expect_err("fallback");
        assert!(err.contains("no specialized kernel"), "{err}");
        // Non-bare-column argument.
        let a = BoundAggregate {
            window_id: 0,
            func: lookup("sum").expect("builtin"),
            args: vec![PhysExpr::Binary {
                op: BinaryOp::Add,
                left: Box::new(PhysExpr::Column(2)),
                right: Box::new(PhysExpr::Literal(Value::Bigint(1))),
            }],
            output_type: DataType::Bigint,
        };
        let err = WindowProgram::compile(&w, &[&a], &codec).expect_err("fallback");
        assert!(err.contains("not a bare column"), "{err}");
        // String sums.
        let a = agg("sum", 6, 0);
        let err = WindowProgram::compile(&w, &[&a], &codec).expect_err("fallback");
        assert!(err.contains("STRING"), "{err}");
    }

    // -- expression programs ------------------------------------------------

    fn check_expr(e: &PhysExpr, row: &[Value], aggs: &[Value]) {
        let p = ExprProgram::compile(e).expect("compiles");
        let mut stack = Vec::new();
        let got = p.eval(row, aggs, &mut stack);
        let want = evaluate(e, row, aggs);
        match (&want, &got) {
            (Ok(w), Ok(g)) => {
                assert_eq!(w, g);
                assert_eq!(w.data_type(), g.data_type());
            }
            (Err(_), Err(_)) => {}
            _ => panic!("diverged: {want:?} vs {got:?}"),
        }
    }

    #[test]
    fn expr_program_matches_interpreter() {
        use BinaryOp::*;
        let row = vec![
            Value::Bigint(10),
            Value::Null,
            Value::Double(4.5),
            Value::string("abc"),
            Value::Bool(true),
        ];
        let aggs = vec![Value::Bigint(41), Value::Double(2.5)];
        let col = |i: usize| PhysExpr::Column(i);
        let lit = |v: Value| PhysExpr::Literal(v);
        let bin = |op, l: PhysExpr, r: PhysExpr| PhysExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        };
        let cases: Vec<PhysExpr> = vec![
            bin(Add, col(0), lit(Value::Bigint(5))),
            bin(Add, col(0), col(1)),
            bin(Mul, col(0), col(2)),
            bin(Div, col(0), lit(Value::Bigint(0))),
            bin(Mod, col(0), lit(Value::Bigint(0))),
            bin(Lt, col(0), col(2)),
            bin(Eq, col(3), lit(Value::string("abc"))),
            bin(And, col(4), bin(Gt, col(0), lit(Value::Bigint(3)))),
            bin(And, lit(Value::Bool(false)), bin(Div, col(0), col(1))),
            bin(Or, col(4), bin(Div, col(0), col(1))),
            PhysExpr::Not(Box::new(col(4))),
            PhysExpr::IsNull {
                expr: Box::new(col(1)),
                negated: false,
            },
            PhysExpr::IsNull {
                expr: Box::new(col(0)),
                negated: true,
            },
            bin(Add, PhysExpr::AggRef(0), lit(Value::Bigint(1))),
            bin(Mul, PhysExpr::AggRef(1), col(2)),
            PhysExpr::AggRef(7), // out of bounds: both must error
            PhysExpr::Case {
                branches: vec![
                    (
                        bin(Gt, col(0), lit(Value::Bigint(100))),
                        lit(Value::string("big")),
                    ),
                    (
                        bin(Gt, col(0), lit(Value::Bigint(5))),
                        lit(Value::string("mid")),
                    ),
                ],
                else_expr: Some(Box::new(lit(Value::string("small")))),
            },
            PhysExpr::Case {
                branches: vec![(bin(Lt, col(0), lit(Value::Bigint(0))), col(2))],
                else_expr: None,
            },
        ];
        for e in &cases {
            check_expr(e, &row, &aggs);
        }
    }

    #[test]
    fn expr_program_dispatches_scalar_calls_and_folds_constants() {
        let abs = PhysExpr::ScalarCall {
            func: lookup("abs").expect("builtin"),
            args: vec![PhysExpr::Column(0)],
        };
        check_expr(&abs, &[Value::Bigint(-7)], &[]);

        // A fully constant subtree folds to a single Const instruction.
        let folded = PhysExpr::Binary {
            op: BinaryOp::Add,
            left: Box::new(PhysExpr::ScalarCall {
                func: lookup("abs").expect("builtin"),
                args: vec![PhysExpr::Literal(Value::Bigint(-4))],
            }),
            right: Box::new(PhysExpr::Literal(Value::Bigint(2))),
        };
        let p = ExprProgram::compile(&folded).expect("compiles");
        assert_eq!(p.len(), 1, "constant subtree should fold: {p:?}");
        let mut stack = Vec::new();
        assert_eq!(
            p.eval(&[], &[], &mut stack).expect("eval"),
            Value::Bigint(6)
        );

        // Constant folding must not swallow runtime errors: an overflowing
        // constant expression stays structural and errors at eval time.
        let overflow = PhysExpr::Binary {
            op: BinaryOp::Mul,
            left: Box::new(PhysExpr::Literal(Value::Bigint(i64::MAX))),
            right: Box::new(PhysExpr::Literal(Value::Bigint(2))),
        };
        let p = ExprProgram::compile(&overflow).expect("compiles");
        assert!(p.eval(&[], &[], &mut stack).is_err());
    }

    #[test]
    fn request_only_window_and_request_string_extrema() {
        let aggs = vec![agg("min", 6, 0), agg("max", 6, 0), agg("count", 6, 0)];
        // Request's string is both the min and max (only non-null value).
        let rows = vec![Row::new(vec![
            Value::string("k1"),
            Value::Timestamp(999),
            Value::Int(1),
            Value::Bigint(1),
            Value::Float(1.0),
            Value::Double(1.0),
            Value::Null,
        ])];
        let request = Row::new(vec![
            Value::string("k1"),
            Value::Timestamp(1_000),
            Value::Int(2),
            Value::Bigint(2),
            Value::Float(2.0),
            Value::Double(2.0),
            Value::string("middle"),
        ]);
        let (expected, got) = fold_both(&aggs, &rows, Some(&request));
        assert_bit_identical(&expected, &got);
    }

    #[test]
    fn specialize_caches_one_program_per_plan() {
        use openmldb_sql::{compile_select, parse_select, Catalog};
        struct Cat(Schema);
        impl Catalog for Cat {
            fn table_schema(&self, name: &str) -> Option<Schema> {
                (name == "t").then(|| self.0.clone())
            }
        }
        let cat = Cat(schema());
        let stmt = parse_select(
            "SELECT k, sum(b) OVER w AS sb, min(i) OVER w AS mi FROM t \
             WINDOW w AS (PARTITION BY k ORDER BY ts \
             ROWS BETWEEN 5 PRECEDING AND CURRENT ROW)",
        )
        .expect("parses");
        let q = Arc::new(compile_select(&stmt, &cat).expect("compiles"));
        let p1 = specialize(&q);
        let p2 = specialize(&q);
        assert!(Arc::ptr_eq(&p1, &p2), "one compiled artifact per plan");
        assert_eq!(p1.compiled_windows(), 1);
        assert_eq!(p1.fallback_windows(), 0);
        assert!(p1.window(0).is_some());
        assert!(p1.select_programs().is_some());

        // Clones (the plan-cache Arc) share the slot.
        let q2 = Arc::new((*q).clone());
        let p3 = specialize(&q2);
        assert!(Arc::ptr_eq(&p1, &p3));
    }

    #[test]
    fn specialize_records_window_fallbacks() {
        use openmldb_sql::{compile_select, parse_select, Catalog};
        struct Cat(Schema);
        impl Catalog for Cat {
            fn table_schema(&self, name: &str) -> Option<Schema> {
                (name == "t").then(|| self.0.clone())
            }
        }
        let cat = Cat(schema());
        let stmt = parse_select(
            "SELECT distinct_count(i) OVER w AS dc, sum(b) OVER w2 AS sb FROM t \
             WINDOW w AS (PARTITION BY k ORDER BY ts \
             ROWS BETWEEN 5 PRECEDING AND CURRENT ROW), \
             w2 AS (PARTITION BY k ORDER BY ts \
             ROWS BETWEEN 9 PRECEDING AND CURRENT ROW)",
        )
        .expect("parses");
        let q = compile_select(&stmt, &cat).expect("compiles");
        let p = Program::compile(&q);
        // distinct_count falls back; the sibling window stays compiled.
        assert_eq!(p.compiled_windows(), 1);
        assert_eq!(p.fallback_windows(), 1);
        let wid_fallback = (0..q.windows.len())
            .find(|&w| p.fallback_reason(w).is_some())
            .expect("one fallback");
        assert!(p
            .fallback_reason(wid_fallback)
            .is_some_and(|r| r.contains("no specialized kernel")));
    }

    #[test]
    fn request_row_marker_sorts_last_invariant() {
        // The sort-skip relies on the request marker (ts == anchor >= all
        // stored ts, max seq) sorting last; pin that ordering here.
        let mut entries = [
            ScanEntry {
                ts: 10,
                seq: 0,
                start: 0,
                len: 4,
            },
            ScanEntry {
                ts: 10,
                seq: 2,
                start: 0,
                len: REQUEST_ROW,
            },
            ScanEntry {
                ts: 9,
                seq: 1,
                start: 4,
                len: 4,
            },
        ];
        entries.sort_unstable_by_key(|e| (e.ts, e.seq));
        assert!(entries[2].is_request_row());
    }
}
