//! Window aggregate evaluation with **cyclic binding** (paper Section 4.2).
//!
//! When several aggregate calls over one window share the same argument
//! expression and belong to the "simple statistics" family (`sum`, `count`,
//! `avg`, `min`, `max`, `stddev`), a single shared state is maintained and
//! each output is a projection of it — `avg` literally reuses the `sum` and
//! `count` intermediates, and the argument expression is evaluated once per
//! row instead of once per call.

use openmldb_sql::plan::{BoundAggregate, PhysExpr};
use openmldb_types::{Result, RowView, Value};

use crate::agg::{create_aggregator, Aggregator};
use crate::eval::{evaluate_with, ColumnSource};

/// Shared numeric statistics state for one distinct argument expression.
#[derive(Debug, Default)]
struct SharedNumeric {
    count: u64,
    sum_i: i64,
    sum_f: f64,
    sum_sq: f64,
    all_int: bool,
    /// Running sums, maintained only when sum/avg/stddev projections exist.
    /// Without them the slot may legally feed on non-numeric values —
    /// `count`, `min` and `max` are defined over strings too.
    track_sums: bool,
    /// Running extrema, maintained only when min/max projections exist.
    /// Windows never retract here (requests rebuild from a fresh scan), so a
    /// running pair replaces the ordered multiset the retracting
    /// [`SlidingWindow`](crate::SlidingWindow) still needs.
    track_minmax: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl SharedNumeric {
    fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        if self.count == 0 {
            self.all_int = true;
        }
        if self.track_sums {
            let integral = !matches!(v, Value::Float(_) | Value::Double(_)) && v.as_i64().is_ok();
            if integral {
                self.sum_i = self.sum_i.wrapping_add(v.as_i64()?);
            } else {
                self.all_int = false;
            }
            let f = v.as_f64()?;
            self.sum_f += f;
            self.sum_sq += f * f;
        }
        self.count += 1;
        if self.track_minmax {
            // Strict comparisons keep the first-seen instance on ties,
            // matching the ordered-multiset semantics this replaces.
            if self.min.as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
                self.min = Some(v.clone());
            }
            if self.max.as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
                self.max = Some(v.clone());
            }
        }
        Ok(())
    }

    fn project(&self, proj: Projection) -> Value {
        match proj {
            Projection::Count => Value::Bigint(self.count as i64),
            Projection::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.all_int {
                    Value::Bigint(self.sum_i)
                } else {
                    Value::Double(self.sum_f)
                }
            }
            Projection::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Double(self.sum_f / self.count as f64)
                }
            }
            Projection::Min => self.min.clone().unwrap_or(Value::Null),
            Projection::Max => self.max.clone().unwrap_or(Value::Null),
            Projection::Stddev => {
                if self.count < 2 {
                    return Value::Null;
                }
                let n = self.count as f64;
                let var = ((self.sum_sq - self.sum_f * self.sum_f / n) / (n - 1.0)).max(0.0);
                Value::Double(var.sqrt())
            }
        }
    }

    fn reset(&mut self) {
        let (sums, minmax) = (self.track_sums, self.track_minmax);
        *self = SharedNumeric::default();
        self.track_sums = sums;
        self.track_minmax = minmax;
    }
}

/// Which statistic of the shared state a binding projects. Shared with the
/// compiled-program kernels in [`crate::program`], which replicate
/// [`SharedNumeric`]'s fold bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Projection {
    Sum,
    Count,
    Avg,
    Min,
    Max,
    Stddev,
}

pub(crate) fn projection_for(func: &str) -> Option<Projection> {
    Some(match func {
        "sum" => Projection::Sum,
        "count" => Projection::Count,
        "avg" => Projection::Avg,
        "min" => Projection::Min,
        "max" => Projection::Max,
        "stddev" => Projection::Stddev,
        _ => return None,
    })
}

enum Slot {
    Shared {
        args: Vec<PhysExpr>,
        state: SharedNumeric,
    },
    Single {
        args: Vec<PhysExpr>,
        agg: Box<dyn Aggregator>,
    },
}

enum Binding {
    Shared { slot: usize, proj: Projection },
    Single { slot: usize },
}

/// Evaluates a group of aggregates over one window in a single pass, with
/// cyclic-binding state sharing.
pub struct WindowAggSet {
    slots: Vec<Slot>,
    bindings: Vec<Binding>,
    /// Reusable argument buffer for `Single` slots — cleared per row, never
    /// reallocated once warm.
    scratch_args: Vec<Value>,
}

impl WindowAggSet {
    /// Build the evaluator for `aggs` (all belonging to one window). Outputs
    /// are produced in the same order.
    pub fn new(aggs: &[&BoundAggregate]) -> Result<Self> {
        let mut slots: Vec<Slot> = Vec::new();
        let mut bindings = Vec::with_capacity(aggs.len());
        // (args) -> shared slot index, for shareable functions.
        let mut shared_index: Vec<(Vec<PhysExpr>, usize)> = Vec::new();

        for agg in aggs {
            if let Some(proj) = projection_for(agg.func.name) {
                let existing = shared_index
                    .iter()
                    .find(|(a, _)| a == &agg.args)
                    .map(|(_, i)| *i);
                let slot = match existing {
                    Some(i) => i,
                    None => {
                        let i = slots.len();
                        slots.push(Slot::Shared {
                            args: agg.args.clone(),
                            state: SharedNumeric::default(),
                        });
                        shared_index.push((agg.args.clone(), i));
                        i
                    }
                };
                if let Slot::Shared { state, .. } = &mut slots[slot] {
                    match proj {
                        Projection::Min | Projection::Max => state.track_minmax = true,
                        Projection::Sum | Projection::Avg | Projection::Stddev => {
                            state.track_sums = true
                        }
                        Projection::Count => {}
                    }
                }
                bindings.push(Binding::Shared { slot, proj });
            } else {
                let i = slots.len();
                slots.push(Slot::Single {
                    args: agg.args.clone(),
                    agg: create_aggregator(agg.func, &agg.args)?,
                });
                bindings.push(Binding::Single { slot: i });
            }
        }
        Ok(WindowAggSet {
            slots,
            bindings,
            scratch_args: Vec::new(),
        })
    }

    /// Feed one window row (oldest → newest).
    pub fn update(&mut self, row: &[Value]) -> Result<()> {
        self.update_src(row)
    }

    // HOT: per-scanned-row aggregate feed on the streaming request path —
    // reads columns in place through the borrowed view.
    /// Feed one window row directly from its compact encoding, without
    /// decoding the full row first.
    pub fn update_view(&mut self, row: &RowView<'_>) -> Result<()> {
        self.update_src(row)
    }

    fn update_src<S: ColumnSource + ?Sized>(&mut self, row: &S) -> Result<()> {
        let Self {
            slots,
            scratch_args,
            ..
        } = self;
        for slot in slots {
            match slot {
                Slot::Shared { args, state } => {
                    let v = evaluate_with(&args[0], row, &[])?;
                    state.update(&v)?;
                }
                Slot::Single { args, agg } => {
                    scratch_args.clear();
                    for a in args.iter() {
                        scratch_args.push(evaluate_with(a, row, &[])?);
                    }
                    agg.update(scratch_args)?;
                }
            }
        }
        Ok(())
    }

    /// Current outputs, one per input aggregate, in input order.
    pub fn outputs(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.bindings.len());
        self.outputs_into(&mut out);
        out
    }

    /// Append the current outputs to `out`, reusing its capacity.
    pub fn outputs_into(&self, out: &mut Vec<Value>) {
        for b in &self.bindings {
            out.push(match b {
                Binding::Shared { slot, proj } => match &self.slots[*slot] {
                    Slot::Shared { state, .. } => state.project(*proj),
                    Slot::Single { .. } => unreachable!("binding/slot mismatch"),
                },
                Binding::Single { slot } => match &self.slots[*slot] {
                    Slot::Single { agg, .. } => agg.output(),
                    Slot::Shared { .. } => unreachable!("binding/slot mismatch"),
                },
            });
        }
    }

    /// Clear all state for the next request.
    pub fn reset(&mut self) {
        for slot in &mut self.slots {
            match slot {
                Slot::Shared { state, .. } => state.reset(),
                Slot::Single { agg, .. } => agg.reset(),
            }
        }
    }

    /// Number of physical state slots (≤ number of aggregates when cyclic
    /// binding shares state). Exposed for tests and the ablation bench.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of bound aggregate outputs.
    pub fn output_count(&self) -> usize {
        self.bindings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmldb_sql::functions::lookup;
    use openmldb_types::DataType;

    fn bound(func: &str, args: Vec<PhysExpr>) -> BoundAggregate {
        BoundAggregate {
            window_id: 0,
            func: lookup(func).unwrap(),
            args,
            output_type: DataType::Double,
        }
    }

    #[test]
    fn cyclic_binding_shares_state() {
        let aggs = [
            bound("sum", vec![PhysExpr::Column(0)]),
            bound("avg", vec![PhysExpr::Column(0)]),
            bound("count", vec![PhysExpr::Column(0)]),
            bound("max", vec![PhysExpr::Column(0)]),
            bound("sum", vec![PhysExpr::Column(1)]), // different args → new slot
        ];
        let refs: Vec<&BoundAggregate> = aggs.iter().collect();
        let mut set = WindowAggSet::new(&refs).unwrap();
        assert_eq!(set.output_count(), 5);
        assert_eq!(set.slot_count(), 2, "4 calls over col0 share one state");

        for (a, b) in [(1i64, 10i64), (2, 20), (3, 30)] {
            set.update(&[Value::Bigint(a), Value::Bigint(b)]).unwrap();
        }
        let out = set.outputs();
        assert_eq!(out[0], Value::Bigint(6)); // sum col0
        assert_eq!(out[1], Value::Double(2.0)); // avg col0
        assert_eq!(out[2], Value::Bigint(3)); // count col0
        assert_eq!(out[3], Value::Bigint(3)); // max col0
        assert_eq!(out[4], Value::Bigint(60)); // sum col1
    }

    #[test]
    fn non_shareable_functions_get_own_slots() {
        let aggs = [
            bound("distinct_count", vec![PhysExpr::Column(0)]),
            bound("sum", vec![PhysExpr::Column(0)]),
        ];
        let refs: Vec<&BoundAggregate> = aggs.iter().collect();
        let mut set = WindowAggSet::new(&refs).unwrap();
        assert_eq!(set.slot_count(), 2);
        for v in [1, 1, 2] {
            set.update(&[Value::Bigint(v)]).unwrap();
        }
        let out = set.outputs();
        assert_eq!(out[0], Value::Bigint(2));
        assert_eq!(out[1], Value::Bigint(4));
    }

    #[test]
    fn reset_clears_all_slots() {
        let aggs = [
            bound("sum", vec![PhysExpr::Column(0)]),
            bound("min", vec![PhysExpr::Column(0)]),
        ];
        let refs: Vec<&BoundAggregate> = aggs.iter().collect();
        let mut set = WindowAggSet::new(&refs).unwrap();
        set.update(&[Value::Bigint(5)]).unwrap();
        set.reset();
        let out = set.outputs();
        assert_eq!(out[0], Value::Null);
        assert_eq!(out[1], Value::Null);
        // Still usable after reset.
        set.update(&[Value::Bigint(7)]).unwrap();
        assert_eq!(set.outputs()[0], Value::Bigint(7));
    }

    #[test]
    fn arg_expressions_are_evaluated() {
        // sum(col0 * 2)
        let expr = PhysExpr::Binary {
            op: openmldb_sql::BinaryOp::Mul,
            left: Box::new(PhysExpr::Column(0)),
            right: Box::new(PhysExpr::Literal(Value::Bigint(2))),
        };
        let aggs = [bound("sum", vec![expr])];
        let refs: Vec<&BoundAggregate> = aggs.iter().collect();
        let mut set = WindowAggSet::new(&refs).unwrap();
        set.update(&[Value::Bigint(3)]).unwrap();
        assert_eq!(set.outputs()[0], Value::Bigint(6));
    }
}
