//! Interpreter for compiled expressions ([`PhysExpr`]).
//!
//! Column offsets and function bindings were resolved at plan time, so
//! evaluation is a flat tree walk — the reproduction's stand-in for the
//! LLVM-JIT'd code of the original system.

use openmldb_sql::plan::PhysExpr;
use openmldb_sql::BinaryOp;
use openmldb_types::{DataType, Error, Result, RowView, Value};

use crate::scalar;

/// A source of column values for expression evaluation — either a decoded
/// `&[Value]` row or a borrowed [`RowView`] over the compact encoding, so
/// the streaming scan→aggregate path can evaluate aggregate arguments
/// without decoding whole rows first.
pub trait ColumnSource {
    /// The value of column `i` (owned; borrowed sources promote in place —
    /// allocation-free for every type but strings).
    fn column(&self, i: usize) -> Result<Value>;
}

impl ColumnSource for [Value] {
    fn column(&self, i: usize) -> Result<Value> {
        self.get(i)
            .cloned()
            .ok_or_else(|| Error::Eval(format!("column index {i} out of bounds")))
    }
}

impl ColumnSource for RowView<'_> {
    fn column(&self, i: usize) -> Result<Value> {
        self.get_value(i)
    }
}

/// Evaluate `expr` against `row`, with aggregate results supplied in `aggs`
/// (indexed by `PhysExpr::AggRef`).
pub fn evaluate(expr: &PhysExpr, row: &[Value], aggs: &[Value]) -> Result<Value> {
    evaluate_with(expr, row, aggs)
}

/// [`evaluate`] generalized over the column source, shared by the decoded
/// and the in-place ([`RowView`]) paths.
pub fn evaluate_with<S: ColumnSource + ?Sized>(
    expr: &PhysExpr,
    row: &S,
    aggs: &[Value],
) -> Result<Value> {
    match expr {
        PhysExpr::Literal(v) => Ok(v.clone()),
        PhysExpr::Column(i) => row.column(*i),
        PhysExpr::AggRef(i) => aggs
            .get(*i)
            .cloned()
            .ok_or_else(|| Error::Eval(format!("aggregate index {i} out of bounds"))),
        PhysExpr::Binary { op, left, right } => {
            let l = evaluate_with(left, row, aggs)?;
            // Short-circuit AND/OR with SQL three-valued-ish semantics
            // (NULL treated as false in boolean context).
            match op {
                BinaryOp::And => {
                    if !l.as_bool()? {
                        return Ok(Value::Bool(false));
                    }
                    let r = evaluate_with(right, row, aggs)?;
                    return Ok(Value::Bool(r.as_bool()?));
                }
                BinaryOp::Or => {
                    if l.as_bool()? {
                        return Ok(Value::Bool(true));
                    }
                    let r = evaluate_with(right, row, aggs)?;
                    return Ok(Value::Bool(r.as_bool()?));
                }
                _ => {}
            }
            let r = evaluate_with(right, row, aggs)?;
            binary(*op, &l, &r)
        }
        PhysExpr::Not(e) => {
            let v = evaluate_with(e, row, aggs)?;
            Ok(Value::Bool(!v.as_bool()?))
        }
        PhysExpr::IsNull { expr, negated } => {
            let v = evaluate_with(expr, row, aggs)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        PhysExpr::ScalarCall { func, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(evaluate_with(a, row, aggs)?);
            }
            // The def resolves to its dispatch id in O(1) (pointer offset
            // into the builtin table) — no per-row string match.
            match scalar::resolve_def(func) {
                Some(id) => scalar::call_id(id, &vals),
                None => scalar::call(func.name, &vals),
            }
        }
        PhysExpr::Case {
            branches,
            else_expr,
        } => {
            for (cond, value) in branches {
                if evaluate_with(cond, row, aggs)?.as_bool()? {
                    return evaluate_with(value, row, aggs);
                }
            }
            match else_expr {
                Some(e) => evaluate_with(e, row, aggs),
                None => Ok(Value::Null),
            }
        }
    }
}

/// Apply a binary operator with SQL NULL propagation (any NULL operand makes
/// a NULL result for arithmetic/comparison).
pub fn binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    Ok(match op {
        Eq => Value::Bool(l == r),
        NotEq => Value::Bool(l != r),
        Lt => Value::Bool(l.total_cmp(r).is_lt()),
        LtEq => Value::Bool(l.total_cmp(r).is_le()),
        Gt => Value::Bool(l.total_cmp(r).is_gt()),
        GtEq => Value::Bool(l.total_cmp(r).is_ge()),
        And => Value::Bool(l.as_bool()? && r.as_bool()?),
        Or => Value::Bool(l.as_bool()? || r.as_bool()?),
        Add | Sub | Mul | Mod => {
            // Integer-preserving arithmetic when both sides are integral.
            let integral = matches!(
                (l.data_type(), r.data_type()),
                (
                    Some(DataType::Int) | Some(DataType::Bigint) | Some(DataType::Timestamp),
                    Some(DataType::Int) | Some(DataType::Bigint) | Some(DataType::Timestamp)
                )
            );
            if integral {
                let (a, b) = (l.as_i64()?, r.as_i64()?);
                let v = match op {
                    Add => a.checked_add(b),
                    Sub => a.checked_sub(b),
                    Mul => a.checked_mul(b),
                    Mod => {
                        if b == 0 {
                            return Ok(Value::Null);
                        }
                        a.checked_rem(b)
                    }
                    _ => unreachable!(),
                }
                .ok_or_else(|| Error::Eval(format!("integer overflow in {}", op.symbol())))?;
                Value::Bigint(v)
            } else {
                let (a, b) = (l.as_f64()?, r.as_f64()?);
                let v = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Mod => a % b,
                    _ => unreachable!(),
                };
                Value::Double(v)
            }
        }
        Div => {
            let b = r.as_f64()?;
            if b == 0.0 {
                Value::Null
            } else {
                Value::Double(l.as_f64()? / b)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(i: usize) -> PhysExpr {
        PhysExpr::Column(i)
    }
    fn lit(v: Value) -> PhysExpr {
        PhysExpr::Literal(v)
    }
    fn bin(op: BinaryOp, l: PhysExpr, r: PhysExpr) -> PhysExpr {
        PhysExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn arithmetic_and_nulls() {
        let row = vec![Value::Bigint(10), Value::Null, Value::Double(4.0)];
        let e = bin(BinaryOp::Add, col(0), lit(Value::Bigint(5)));
        assert_eq!(evaluate(&e, &row, &[]).unwrap(), Value::Bigint(15));
        let e = bin(BinaryOp::Add, col(0), col(1));
        assert_eq!(evaluate(&e, &row, &[]).unwrap(), Value::Null);
        let e = bin(BinaryOp::Mul, col(0), col(2));
        assert_eq!(evaluate(&e, &row, &[]).unwrap(), Value::Double(40.0));
    }

    #[test]
    fn division_is_double_and_null_on_zero() {
        let e = bin(BinaryOp::Div, lit(Value::Bigint(7)), lit(Value::Bigint(2)));
        assert_eq!(evaluate(&e, &[], &[]).unwrap(), Value::Double(3.5));
        let e = bin(BinaryOp::Div, lit(Value::Bigint(7)), lit(Value::Bigint(0)));
        assert_eq!(evaluate(&e, &[], &[]).unwrap(), Value::Null);
        let e = bin(BinaryOp::Mod, lit(Value::Bigint(7)), lit(Value::Bigint(0)));
        assert_eq!(evaluate(&e, &[], &[]).unwrap(), Value::Null);
    }

    #[test]
    fn comparisons_cross_type() {
        let e = bin(BinaryOp::Gt, lit(Value::Int(3)), lit(Value::Double(2.5)));
        assert_eq!(evaluate(&e, &[], &[]).unwrap(), Value::Bool(true));
        let e = bin(
            BinaryOp::Eq,
            lit(Value::string("a")),
            lit(Value::string("a")),
        );
        assert_eq!(evaluate(&e, &[], &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn and_or_short_circuit() {
        // Right side would error (string as bool), but left decides.
        let e = bin(
            BinaryOp::And,
            lit(Value::Bool(false)),
            lit(Value::string("boom")),
        );
        assert_eq!(evaluate(&e, &[], &[]).unwrap(), Value::Bool(false));
        let e = bin(
            BinaryOp::Or,
            lit(Value::Bool(true)),
            lit(Value::string("boom")),
        );
        assert_eq!(evaluate(&e, &[], &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn agg_refs_read_precomputed_results() {
        let e = bin(BinaryOp::Add, PhysExpr::AggRef(0), lit(Value::Bigint(1)));
        assert_eq!(
            evaluate(&e, &[], &[Value::Bigint(41)]).unwrap(),
            Value::Bigint(42)
        );
        assert!(evaluate(&PhysExpr::AggRef(3), &[], &[]).is_err());
    }

    #[test]
    fn is_null_and_case() {
        let e = PhysExpr::IsNull {
            expr: Box::new(lit(Value::Null)),
            negated: false,
        };
        assert_eq!(evaluate(&e, &[], &[]).unwrap(), Value::Bool(true));
        let case = PhysExpr::Case {
            branches: vec![(
                bin(BinaryOp::Gt, col(0), lit(Value::Bigint(0))),
                lit(Value::string("pos")),
            )],
            else_expr: Some(Box::new(lit(Value::string("neg")))),
        };
        assert_eq!(
            evaluate(&case, &[Value::Bigint(5)], &[]).unwrap(),
            Value::string("pos")
        );
        assert_eq!(
            evaluate(&case, &[Value::Bigint(-5)], &[]).unwrap(),
            Value::string("neg")
        );
    }

    #[test]
    fn overflow_is_an_error_not_a_wrap() {
        let e = bin(
            BinaryOp::Mul,
            lit(Value::Bigint(i64::MAX)),
            lit(Value::Bigint(2)),
        );
        assert!(evaluate(&e, &[], &[]).is_err());
    }
}
