//! Global observability handles for the execution library.

use openmldb_obs::{Counter, Registry};
use std::sync::{Arc, OnceLock};

fn counter(cell: &'static OnceLock<Arc<Counter>>, name: &str, help: &str) -> &'static Counter {
    cell.get_or_init(|| Registry::global().counter(name, help))
}

/// Sliding-window pushes served by the subtract-and-evict fast path.
pub fn incremental_steps() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_exec_incremental_steps_total",
        "Sliding-window pushes served by subtract-and-evict",
    )
}

/// Sliding-window pushes that fell back to full recomputation.
pub fn recompute_steps() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_exec_recompute_steps_total",
        "Sliding-window pushes that recomputed the frame from scratch",
    )
}

/// Rows evicted from sliding-window frames.
pub fn window_evictions() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_exec_window_evictions_total",
        "Rows evicted from sliding-window frames",
    )
}

/// Plans lowered to specialized bytecode programs at deploy time.
pub fn program_plans() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_exec_program_plans_total",
        "Plans specialized into bytecode programs",
    )
}

/// Windows compiled to monomorphized aggregate kernels.
pub fn program_windows() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_exec_program_windows_total",
        "Windows compiled to specialized aggregate kernels",
    )
}

/// Windows that could not be specialized and stay interpreted.
pub fn program_fallbacks() -> &'static Counter {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    counter(
        &M,
        "openmldb_exec_program_fallbacks_total",
        "Windows kept on the interpreted fallback path at specialization",
    )
}
