//! Unified error type shared by every OpenMLDB crate.
//!
//! A single error enum keeps cross-crate signatures simple and mirrors the
//! paper's design where the online and offline engines share one C++ function
//! library (and therefore one error domain).

use std::fmt;

/// Errors produced anywhere in the OpenMLDB reproduction.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// SQL text could not be tokenized or parsed.
    Parse { message: String, position: usize },
    /// The query referenced an unknown table, column, or window.
    Plan(String),
    /// A runtime expression or aggregate evaluation failed.
    Eval(String),
    /// Type mismatch between an expression and its operands.
    Type { expected: String, found: String },
    /// Schema-level problems: duplicate columns, arity mismatch, etc.
    Schema(String),
    /// Row encoding or decoding failed.
    Codec(String),
    /// Storage-engine failure (index missing, table missing, ...).
    Storage(String),
    /// A write was rejected because the configured memory limit is exceeded.
    /// Reads continue to be served (Section 8.2 of the paper).
    MemoryLimitExceeded { used_bytes: u64, limit_bytes: u64 },
    /// A deployment name collision or missing deployment.
    Deployment(String),
    /// Unsupported feature combination for the requested execution mode.
    Unsupported(String),
    /// A request exceeded its deadline budget. `stage` names the pipeline
    /// stage that observed expiry; `budget_ms` is the caller's total budget.
    Timeout { stage: &'static str, budget_ms: u64 },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::Type { expected, found } => {
                write!(f, "type error: expected {expected}, found {found}")
            }
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::MemoryLimitExceeded {
                used_bytes,
                limit_bytes,
            } => write!(
                f,
                "memory limit exceeded: used {used_bytes} bytes, limit {limit_bytes} bytes \
                 (writes rejected, reads continue)"
            ),
            Error::Deployment(m) => write!(f, "deployment error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Timeout { stage, budget_ms } => {
                write!(
                    f,
                    "timeout: deadline of {budget_ms} ms exceeded at stage {stage}"
                )
            }
        }
    }
}

impl Error {
    /// True for failures worth a bounded retry: transient storage faults
    /// (the fault injector prefixes these with `transient`) as opposed to
    /// deterministic errors (missing index, schema mismatch) that no retry
    /// can fix.
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Storage(m) if m.starts_with("transient"))
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across all crates.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = Error::Parse {
            message: "unexpected token".into(),
            position: 7,
        };
        assert!(e.to_string().contains("byte 7"));
        let e = Error::MemoryLimitExceeded {
            used_bytes: 10,
            limit_bytes: 5,
        };
        assert!(e.to_string().contains("writes rejected"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Plan("x".into()));
    }

    #[test]
    fn transient_classification() {
        assert!(Error::Storage("transient fault injected at skiplist_seek".into()).is_transient());
        assert!(!Error::Storage("no index".into()).is_transient());
        assert!(!Error::Plan("x".into()).is_transient());
        assert!(!Error::Timeout {
            stage: "storage_seek",
            budget_ms: 5
        }
        .is_transient());
    }

    #[test]
    fn timeout_display_names_stage_and_budget() {
        let e = Error::Timeout {
            stage: "window_dispatch",
            budget_ms: 12,
        };
        let s = e.to_string();
        assert!(s.contains("window_dispatch"), "{s}");
        assert!(s.contains("12 ms"), "{s}");
    }
}
