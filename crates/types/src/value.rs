//! Runtime value model.
//!
//! OpenMLDB SQL operates over a small set of scalar types chosen for ML
//! feature pipelines: integers, floats, timestamps and strings. Strings are
//! reference-counted so cloning a decoded row is cheap during window scans.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};

/// Scalar data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    /// 32-bit signed integer (`INT`).
    Int,
    /// 64-bit signed integer (`BIGINT`).
    Bigint,
    /// 32-bit IEEE float (`FLOAT`).
    Float,
    /// 64-bit IEEE float (`DOUBLE`).
    Double,
    /// Millisecond-precision timestamp stored as `i64`.
    Timestamp,
    /// UTF-8 string (`STRING` / `VARCHAR`).
    String,
}

impl DataType {
    /// Size in bytes of the fixed-width encoding, or `None` for var-length.
    ///
    /// These widths drive the compact row format of Section 7.1: integers and
    /// floats use 4 bytes (unlike Spark's 8-byte slots), timestamps 8 bytes.
    pub fn fixed_size(self) -> Option<usize> {
        match self {
            DataType::Bool => Some(1),
            DataType::Int | DataType::Float => Some(4),
            DataType::Bigint | DataType::Double | DataType::Timestamp => Some(8),
            DataType::String => None,
        }
    }

    /// Whether the type is numeric (usable in arithmetic aggregates).
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            DataType::Int | DataType::Bigint | DataType::Float | DataType::Double
        )
    }

    /// Canonical SQL spelling, used in error messages and `EXPLAIN` output.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Bigint => "BIGINT",
            DataType::Float => "FLOAT",
            DataType::Double => "DOUBLE",
            DataType::Timestamp => "TIMESTAMP",
            DataType::String => "STRING",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A runtime scalar value.
///
/// `Null` is untyped; the schema supplies the column type where needed.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i32),
    Bigint(i64),
    Float(f32),
    Double(f64),
    Timestamp(i64),
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn string(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// The value's runtime type, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Bigint(_) => Some(DataType::Bigint),
            Value::Float(_) => Some(DataType::Float),
            Value::Double(_) => Some(DataType::Double),
            Value::Timestamp(_) => Some(DataType::Timestamp),
            Value::Str(_) => Some(DataType::String),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as `f64`, used by aggregate functions.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(v) => Ok(*v as f64),
            Value::Bigint(v) => Ok(*v as f64),
            Value::Float(v) => Ok(*v as f64),
            Value::Double(v) => Ok(*v),
            Value::Timestamp(v) => Ok(*v as f64),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            other => Err(Error::Type {
                expected: "numeric".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Integer view as `i64` (timestamps included).
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v as i64),
            Value::Bigint(v) => Ok(*v),
            Value::Timestamp(v) => Ok(*v),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(Error::Type {
                expected: "integer".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// String view; errors on non-strings.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::Type {
                expected: "string".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Boolean view; numeric values are truthy when non-zero.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Null => Ok(false),
            Value::Int(v) => Ok(*v != 0),
            Value::Bigint(v) => Ok(*v != 0),
            other => Err(Error::Type {
                expected: "bool".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Cast to the target type, following SQL-style widening rules.
    pub fn cast_to(&self, target: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        let mismatch = || Error::Type {
            expected: target.sql_name().into(),
            found: format!("{self:?}"),
        };
        Ok(match target {
            DataType::Bool => Value::Bool(self.as_bool()?),
            DataType::Int => Value::Int(i32::try_from(self.as_i64()?).map_err(|_| mismatch())?),
            DataType::Bigint => Value::Bigint(self.as_i64()?),
            DataType::Float => Value::Float(self.as_f64()? as f32),
            DataType::Double => Value::Double(self.as_f64()?),
            DataType::Timestamp => Value::Timestamp(self.as_i64()?),
            DataType::String => match self {
                Value::Str(s) => Value::Str(s.clone()),
                other => Value::string(other.to_string()),
            },
        })
    }

    /// Approximate heap + inline memory footprint of the decoded value, used
    /// by the memory accounting of Section 8.
    pub fn mem_size(&self) -> usize {
        let inline = std::mem::size_of::<Value>();
        match self {
            Value::Str(s) => inline + s.len(),
            _ => inline,
        }
    }

    /// Total ordering used by ORDER BY and window sorting.
    ///
    /// NULLs sort first; cross-type numeric comparisons go through `f64`;
    /// NaN floats sort after all other numbers (total order).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => {
                let fa = a.as_f64().unwrap_or(f64::NAN);
                let fb = b.as_f64().unwrap_or(f64::NAN);
                fa.total_cmp(&fb)
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Str(a), Str(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            (Null, _) | (_, Null) | (Str(_), _) | (_, Str(_)) | (Bool(_), _) | (_, Bool(_)) => {
                false
            }
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Ok(x), Ok(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Bigint(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Timestamp(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Hashable key wrapper for group-by / partition-by keys.
///
/// `Value` itself cannot implement `Hash` (floats); partition keys in feature
/// scripts are strings, integers or timestamps, so we canonicalize through
/// this enum. Floats used as keys are hashed by their bit pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyValue {
    Null,
    Bool(bool),
    Int(i64),
    Bits(u64),
    Str(Arc<str>),
}

impl From<&Value> for KeyValue {
    fn from(v: &Value) -> Self {
        match v {
            Value::Null => KeyValue::Null,
            Value::Bool(b) => KeyValue::Bool(*b),
            Value::Int(i) => KeyValue::Int(*i as i64),
            Value::Bigint(i) => KeyValue::Int(*i),
            Value::Timestamp(i) => KeyValue::Int(*i),
            Value::Float(f) => KeyValue::Bits((*f as f64).to_bits()),
            Value::Double(f) => KeyValue::Bits(f.to_bits()),
            Value::Str(s) => KeyValue::Str(s.clone()),
        }
    }
}

impl KeyValue {
    /// Render the key for index storage (composite keys in the disk engine).
    pub fn render(&self) -> String {
        match self {
            KeyValue::Null => "\u{0}NULL".to_string(),
            KeyValue::Bool(b) => b.to_string(),
            KeyValue::Int(i) => i.to_string(),
            KeyValue::Bits(b) => format!("f{b:016x}"),
            KeyValue::Str(s) => s.to_string(),
        }
    }

    /// Approximate memory footprint (for the Section 8.1 estimation model).
    pub fn mem_size(&self) -> usize {
        let inline = std::mem::size_of::<KeyValue>();
        match self {
            KeyValue::Str(s) => inline + s.len(),
            _ => inline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_sizes_match_compact_format() {
        assert_eq!(DataType::Int.fixed_size(), Some(4));
        assert_eq!(DataType::Float.fixed_size(), Some(4));
        assert_eq!(DataType::Timestamp.fixed_size(), Some(8));
        assert_eq!(DataType::String.fixed_size(), None);
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Double(3.0));
        assert_ne!(Value::Int(3), Value::Double(3.5));
        assert_ne!(
            Value::Null,
            Value::Null
                .cast_to(DataType::Int)
                .map(|_| Value::Int(0))
                .unwrap_or(Value::Int(0))
        );
    }

    #[test]
    fn null_sorts_first() {
        let mut v = [Value::Int(2), Value::Null, Value::Int(1)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert!(v[0].is_null());
        assert_eq!(v[1], Value::Int(1));
    }

    #[test]
    fn cast_widening_and_narrowing() {
        assert_eq!(
            Value::Int(7).cast_to(DataType::Double).unwrap(),
            Value::Double(7.0)
        );
        assert_eq!(
            Value::Bigint(1 << 40).cast_to(DataType::Int).unwrap_err(),
            Error::Type {
                expected: "INT".into(),
                found: "Bigint(1099511627776)".into()
            }
        );
        assert_eq!(
            Value::Double(2.5).cast_to(DataType::String).unwrap(),
            Value::string("2.5")
        );
    }

    #[test]
    fn key_value_roundtrip_groups_numerics() {
        assert_eq!(
            KeyValue::from(&Value::Int(5)),
            KeyValue::from(&Value::Bigint(5))
        );
        assert_ne!(
            KeyValue::from(&Value::Int(5)),
            KeyValue::from(&Value::string("5"))
        );
    }

    #[test]
    fn as_bool_truthiness() {
        assert!(Value::Int(2).as_bool().unwrap());
        assert!(!Value::Null.as_bool().unwrap());
        assert!(Value::Bool(true).as_bool().unwrap());
        assert!(Value::string("x").as_bool().is_err());
    }

    #[test]
    fn mem_size_counts_string_heap() {
        let s = Value::string("hello");
        assert_eq!(s.mem_size(), std::mem::size_of::<Value>() + 5);
    }
}
