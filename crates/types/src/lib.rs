//! # openmldb-types
//!
//! Foundation crate for the OpenMLDB reproduction: the value model, table
//! schemas, decoded rows, the shared error type, and the two row codecs
//! (the compact in-memory format of the paper's Section 7.1 and the
//! Spark-`UnsafeRow`-style baseline used for memory comparisons).
//!
//! Everything above this crate — SQL planning, execution, storage — shares
//! these definitions, which is what makes the offline and online engines
//! produce byte-identical feature values.

pub mod codec;
pub mod deadline;
pub mod error;
pub mod row;
pub mod schema;
pub mod value;

pub use codec::{CompactCodec, RowCodec, RowView, UnsafeRowCodec, ValueRef};
pub use deadline::Deadline;
pub use error::{Error, Result};
pub use row::{Row, RowBatch};
pub use schema::{ColumnDef, Schema};
pub use value::{DataType, KeyValue, Value};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value(dt: DataType) -> BoxedStrategy<Value> {
        let non_null: BoxedStrategy<Value> = match dt {
            DataType::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
            DataType::Int => any::<i32>().prop_map(Value::Int).boxed(),
            DataType::Bigint => any::<i64>().prop_map(Value::Bigint).boxed(),
            DataType::Float => any::<f32>().prop_map(Value::Float).boxed(),
            DataType::Double => any::<f64>().prop_map(Value::Double).boxed(),
            DataType::Timestamp => any::<i64>().prop_map(Value::Timestamp).boxed(),
            DataType::String => "[a-zA-Z0-9 ]{0,40}".prop_map(Value::string).boxed(),
        };
        prop_oneof![9 => non_null, 1 => Just(Value::Null)].boxed()
    }

    fn arb_schema_and_row() -> impl Strategy<Value = (Schema, Row)> {
        proptest::collection::vec(
            prop_oneof![
                Just(DataType::Bool),
                Just(DataType::Int),
                Just(DataType::Bigint),
                Just(DataType::Float),
                Just(DataType::Double),
                Just(DataType::Timestamp),
                Just(DataType::String),
            ],
            1..20,
        )
        .prop_flat_map(|types| {
            let schema = Schema::new(
                types
                    .iter()
                    .enumerate()
                    .map(|(i, t)| ColumnDef::new(format!("c{i}"), *t))
                    .collect(),
            )
            .unwrap();
            let values: Vec<BoxedStrategy<Value>> = types.iter().map(|t| arb_value(*t)).collect();
            (Just(schema), values).prop_map(|(s, v)| (s, Row::new(v)))
        })
    }

    fn values_bitwise_eq(a: &Value, b: &Value) -> bool {
        // NaN-safe structural equality for roundtrip checks.
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
            (Value::Null, Value::Null) => true,
            _ => a == b,
        }
    }

    proptest! {
        /// Compact codec roundtrips any schema-conformant row.
        #[test]
        fn compact_roundtrip((schema, row) in arb_schema_and_row()) {
            let codec = CompactCodec::new(schema);
            let buf = codec.encode(&row).unwrap();
            prop_assert_eq!(buf.len(), codec.encoded_size(&row).unwrap());
            let back = codec.decode(&buf).unwrap();
            prop_assert!(row.values().iter().zip(back.values()).all(|(a, b)| values_bitwise_eq(a, b)));
        }

        /// UnsafeRow codec roundtrips any schema-conformant row.
        #[test]
        fn unsafe_row_roundtrip((schema, row) in arb_schema_and_row()) {
            let codec = UnsafeRowCodec::new(schema);
            let buf = codec.encode(&row).unwrap();
            prop_assert_eq!(buf.len(), codec.encoded_size(&row).unwrap());
            let back = codec.decode(&buf).unwrap();
            prop_assert!(row.values().iter().zip(back.values()).all(|(a, b)| values_bitwise_eq(a, b)));
        }

        /// The compact format is never meaningfully larger than UnsafeRow.
        #[test]
        fn compact_never_larger((schema, row) in arb_schema_and_row()) {
            let c = CompactCodec::new(schema.clone()).encoded_size(&row).unwrap();
            let u = UnsafeRowCodec::new(schema).encoded_size(&row).unwrap();
            // The 6-byte header is the only overhead compact can add over the
            // UnsafeRow layout (fixed fields always shrink or stay equal).
            prop_assert!(c <= u + 6, "compact {} vs unsafe {}", c, u);
        }

        /// The borrowed RowView reads every field bit-identically to the
        /// owning decoder on any schema-conformant row.
        #[test]
        fn rowview_matches_owning_decoder((schema, row) in arb_schema_and_row()) {
            let codec = CompactCodec::new(schema);
            let buf = codec.encode(&row).unwrap();
            let decoded = codec.decode(&buf).unwrap();
            let view = codec.view(&buf).unwrap();
            prop_assert_eq!(view.len(), decoded.values().len());
            for (i, owned) in decoded.values().iter().enumerate() {
                let via_view = view.get_value(i).unwrap();
                prop_assert!(
                    values_bitwise_eq(&via_view, owned),
                    "column {}: view {:?} vs decode {:?}", i, via_view, owned
                );
                prop_assert_eq!(view.is_null(i), owned.is_null());
            }
        }

        /// total_cmp is antisymmetric.
        #[test]
        fn value_order_total(a in arb_value(DataType::Double), b in arb_value(DataType::Double)) {
            let ab = a.total_cmp(&b);
            let ba = b.total_cmp(&a);
            prop_assert_eq!(ab, ba.reverse());
        }
    }
}
