//! Spark-`UnsafeRow`-style row format, used as the memory baseline.
//!
//! Layout (following the accounting in the paper's Section 7.1 example):
//!
//! ```text
//! +--------------------+------------------------+------------------+
//! | null bitset        | one 8-byte word / field| var-length bytes |
//! | ⌈n/64⌉ × 8 bytes   | n × 8 bytes            | Σ string lens    |
//! +--------------------+------------------------+------------------+
//! ```
//!
//! Every field — bool, int, float, timestamp — occupies a full 8-byte word.
//! A string's word packs `(offset << 32) | length` pointing into the
//! var-length tail. This reproduces Spark's 556-byte figure for the paper's
//! example row (vs 255 bytes for the compact codec).

use crate::error::{Error, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::{DataType, Value};

use super::RowCodec;

/// Per-schema UnsafeRow-style codec.
#[derive(Debug, Clone)]
pub struct UnsafeRowCodec {
    schema: Schema,
    bitset_len: usize,
}

impl UnsafeRowCodec {
    pub fn new(schema: Schema) -> Self {
        let bitset_len = schema.len().div_ceil(64) * 8;
        UnsafeRowCodec { schema, bitset_len }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn fixed_len(&self) -> usize {
        self.bitset_len + self.schema.len() * 8
    }
}

impl RowCodec for UnsafeRowCodec {
    fn encoded_size(&self, row: &Row) -> Result<usize> {
        self.schema.validate_row(row.values())?;
        let var: usize = row
            .values()
            .iter()
            .map(|v| if let Value::Str(s) = v { s.len() } else { 0 })
            .sum();
        Ok(self.fixed_len() + var)
    }

    fn encode(&self, row: &Row) -> Result<Vec<u8>> {
        self.schema.validate_row(row.values())?;
        let total = self.encoded_size(row)?;
        let mut buf = vec![0u8; total];
        let words_start = self.bitset_len;
        let mut var_cursor = self.fixed_len();

        for (i, v) in row.values().iter().enumerate() {
            if v.is_null() {
                buf[i / 64 * 8 + (i % 64) / 8] |= 1 << (i % 8);
                continue;
            }
            let at = words_start + i * 8;
            let word: u64 = match v {
                Value::Bool(b) => *b as u64,
                Value::Int(x) => *x as u32 as u64,
                Value::Bigint(x) | Value::Timestamp(x) => *x as u64,
                Value::Float(x) => x.to_bits() as u64,
                Value::Double(x) => x.to_bits(),
                Value::Str(s) => {
                    let off = var_cursor as u64;
                    buf[var_cursor..var_cursor + s.len()].copy_from_slice(s.as_bytes());
                    var_cursor += s.len();
                    (off << 32) | s.len() as u64
                }
                Value::Null => unreachable!(),
            };
            buf[at..at + 8].copy_from_slice(&word.to_le_bytes());
        }
        Ok(buf)
    }

    fn decode(&self, buf: &[u8]) -> Result<Row> {
        if buf.len() < self.fixed_len() {
            return Err(Error::Codec(format!(
                "buffer too short: {} bytes",
                buf.len()
            )));
        }
        let words_start = self.bitset_len;
        let mut values = Vec::with_capacity(self.schema.len());
        for (i, col) in self.schema.columns().iter().enumerate() {
            let null = buf[i / 64 * 8 + (i % 64) / 8] & (1 << (i % 8)) != 0;
            if null {
                values.push(Value::Null);
                continue;
            }
            let at = words_start + i * 8;
            let word = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
            values.push(match col.data_type {
                DataType::Bool => Value::Bool(word != 0),
                DataType::Int => Value::Int(word as u32 as i32),
                DataType::Bigint => Value::Bigint(word as i64),
                DataType::Timestamp => Value::Timestamp(word as i64),
                DataType::Float => Value::Float(f32::from_bits(word as u32)),
                DataType::Double => Value::Double(f64::from_bits(word)),
                DataType::String => {
                    let off = (word >> 32) as usize;
                    let len = (word & 0xFFFF_FFFF) as usize;
                    let bytes = buf
                        .get(off..off + len)
                        .ok_or_else(|| Error::Codec("string slot out of bounds".into()))?;
                    let s = std::str::from_utf8(bytes)
                        .map_err(|e| Error::Codec(format!("invalid UTF-8: {e}")))?;
                    Value::string(s)
                }
            });
        }
        Ok(Row::new(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CompactCodec;
    use crate::schema::ColumnDef;

    fn paper_example() -> (Schema, Row) {
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..20 {
            cols.push(ColumnDef::new(format!("i{i}"), DataType::Int));
            vals.push(Value::Int(i));
        }
        for i in 0..20 {
            cols.push(ColumnDef::new(format!("f{i}"), DataType::Float));
            vals.push(Value::Float(i as f32));
        }
        for i in 0..20 {
            cols.push(ColumnDef::new(format!("s{i}"), DataType::String));
            vals.push(Value::string("x"));
        }
        for i in 0..5 {
            cols.push(ColumnDef::new(format!("t{i}"), DataType::Timestamp));
            vals.push(Value::Timestamp(i));
        }
        (Schema::new(cols).unwrap(), Row::new(vals))
    }

    /// Paper arithmetic: 16-byte null bitset + 65×8 words + 20 string bytes
    /// = 556 bytes; compact format = 255 bytes → >54% saving.
    #[test]
    fn paper_example_is_556_bytes_and_54_percent_saving() {
        let (schema, row) = paper_example();
        let unsafe_codec = UnsafeRowCodec::new(schema.clone());
        assert_eq!(unsafe_codec.encoded_size(&row).unwrap(), 556);

        let compact = CompactCodec::new(schema);
        let saving = 1.0 - compact.encoded_size(&row).unwrap() as f64 / 556.0;
        assert!(saving > 0.54, "saving was {saving}");
    }

    #[test]
    fn roundtrip_with_nulls_and_strings() {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::String),
            ("c", DataType::Double),
            ("d", DataType::String),
        ])
        .unwrap();
        let codec = UnsafeRowCodec::new(schema);
        let row = Row::new(vec![
            Value::Null,
            Value::string("αβγ"),
            Value::Double(3.25),
            Value::string(""),
        ]);
        let buf = codec.encode(&row).unwrap();
        assert_eq!(codec.decode(&buf).unwrap(), row);
    }

    #[test]
    fn every_field_costs_a_word() {
        let schema = Schema::from_pairs(&[("b", DataType::Bool)]).unwrap();
        let codec = UnsafeRowCodec::new(schema);
        // 8-byte bitset + 8-byte word: booleans are as expensive as doubles.
        assert_eq!(
            codec
                .encoded_size(&Row::new(vec![Value::Bool(true)]))
                .unwrap(),
            16
        );
    }
}
