//! OpenMLDB compact row format (paper Section 7.1, Figure 5).
//!
//! Layout, in order:
//!
//! ```text
//! +--------+---------+--------------------+------------------+-----------+
//! | header | bitmap  | fixed-width fields | var-field offsets| var bytes |
//! | 6 B    | ⌈n/8⌉ B | Σ fixed sizes      | n_var × ow       | Σ lens    |
//! +--------+---------+--------------------+------------------+-----------+
//! ```
//!
//! * **Header (6 bytes)** — field version (1 B), schema version (1 B), and
//!   total row size (4 B little-endian). Fewer than 64 versions are expected,
//!   so one byte each suffices (paper wording).
//! * **BitMap** — one bit per column marking NULL, allocated in byte units.
//! * **Fixed fields** — packed at their natural width: `INT`/`FLOAT` take
//!   4 bytes (unlike Spark's uniform 8-byte slots), `BIGINT`/`DOUBLE`/
//!   `TIMESTAMP` take 8, `BOOL` takes 1. Offsets are precomputed per schema
//!   ("compact offset calculation"), so field access is one add, not a scan.
//! * **Var fields** — only *end offsets* are stored, at the narrowest width
//!   (1/2/4 bytes) that can address the string area; a string's length is the
//!   difference between its offset and the previous one, so no 32-bit length
//!   words are spent per string.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::{DataType, Value};

use super::RowCodec;

/// Fixed header length: field version (1) + schema version (1) + size (4).
pub const HEADER_SIZE: usize = 6;

/// Per-schema compact codec with precomputed field offsets.
#[derive(Debug, Clone)]
pub struct CompactCodec {
    schema: Schema,
    /// Byte offset of each fixed-width column within the fixed area;
    /// `usize::MAX` for var-length columns.
    fixed_offsets: Arc<[usize]>,
    /// Total size of the fixed-width area.
    fixed_area: usize,
    /// Column indices of var-length (string) columns, in schema order.
    var_columns: Arc<[usize]>,
    /// Per-column ordinal within the var area (`usize::MAX` for fixed
    /// columns) so a view can locate a string's offsets in O(1).
    var_pos: Arc<[usize]>,
    bitmap_len: usize,
    field_version: u8,
    schema_version: u8,
}

impl CompactCodec {
    pub fn new(schema: Schema) -> Self {
        Self::with_versions(schema, 1, 1)
    }

    /// Codec with explicit format/schema versions (recorded in the header).
    pub fn with_versions(schema: Schema, field_version: u8, schema_version: u8) -> Self {
        let mut fixed_offsets = Vec::with_capacity(schema.len());
        let mut var_columns = Vec::new();
        let mut var_pos = Vec::with_capacity(schema.len());
        let mut cursor = 0usize;
        for (i, col) in schema.columns().iter().enumerate() {
            match col.data_type.fixed_size() {
                Some(sz) => {
                    fixed_offsets.push(cursor);
                    var_pos.push(usize::MAX);
                    cursor += sz;
                }
                None => {
                    fixed_offsets.push(usize::MAX);
                    var_pos.push(var_columns.len());
                    var_columns.push(i);
                }
            }
        }
        let bitmap_len = schema.len().div_ceil(8);
        CompactCodec {
            schema,
            fixed_offsets: fixed_offsets.into(),
            fixed_area: cursor,
            var_columns: var_columns.into(),
            var_pos: var_pos.into(),
            bitmap_len,
            field_version,
            schema_version,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Absolute byte offset of fixed-width column `i` within an encoded row
    /// (`None` for var-length columns). Deploy-time plan specialization bakes
    /// these into compiled programs so the per-row read is a single indexed
    /// load with no layout lookup.
    pub fn fixed_field_offset(&self, i: usize) -> Option<usize> {
        let off = *self.fixed_offsets.get(i)?;
        (off != usize::MAX).then(|| HEADER_SIZE + self.bitmap_len + off)
    }

    /// Minimum valid encoded length for this schema: header + null bitmap +
    /// fixed area. Every fixed-width field of a buffer at least this long is
    /// addressable via [`Self::fixed_field_offset`].
    pub fn min_encoded_len(&self) -> usize {
        HEADER_SIZE + self.bitmap_len + self.fixed_area
    }

    /// Schema version recorded in (and required of) every row header.
    pub fn schema_version(&self) -> u8 {
        self.schema_version
    }

    /// Width in bytes of one var-field offset, given the string area size.
    /// The narrowest of 1/2/4 that can address `var_bytes` is used.
    fn offset_width(var_bytes: usize) -> usize {
        if var_bytes < (1 << 8) {
            1
        } else if var_bytes < (1 << 16) {
            2
        } else {
            4
        }
    }

    /// Total byte length of string data in `row` (NULLs contribute zero).
    fn var_bytes(&self, row: &Row) -> Result<usize> {
        let mut total = 0;
        for &ci in self.var_columns.iter() {
            match &row[ci] {
                Value::Null => {}
                Value::Str(s) => total += s.len(),
                other => {
                    return Err(Error::Codec(format!(
                        "column {ci} expects STRING, row has {other:?}"
                    )))
                }
            }
        }
        Ok(total)
    }

    fn layout(&self, row: &Row) -> Result<(usize, usize)> {
        let var_bytes = self.var_bytes(row)?;
        let ow = Self::offset_width(var_bytes);
        let total = HEADER_SIZE
            + self.bitmap_len
            + self.fixed_area
            + self.var_columns.len() * ow
            + var_bytes;
        Ok((total, ow))
    }
}

impl RowCodec for CompactCodec {
    fn encoded_size(&self, row: &Row) -> Result<usize> {
        self.schema.validate_row(row.values())?;
        Ok(self.layout(row)?.0)
    }

    fn encode(&self, row: &Row) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        self.encode_into(row, &mut buf)?;
        Ok(buf)
    }

    fn decode(&self, buf: &[u8]) -> Result<Row> {
        self.decode_projected(buf, None)
    }
}

impl CompactCodec {
    /// Encode into a caller-owned buffer, clearing it first — the pooled
    /// variant of [`RowCodec::encode`]: the buffer's capacity is reused
    /// across calls, so a warm caller encodes without allocating.
    pub fn encode_into(&self, row: &Row, buf: &mut Vec<u8>) -> Result<()> {
        self.schema.validate_row(row.values())?;
        let (total, ow) = self.layout(row)?;
        buf.clear();
        buf.resize(total, 0);

        // Header.
        buf[0] = self.field_version;
        buf[1] = self.schema_version;
        buf[2..6].copy_from_slice(&(total as u32).to_le_bytes());

        // Null bitmap.
        let bitmap_start = HEADER_SIZE;
        for (i, v) in row.values().iter().enumerate() {
            if v.is_null() {
                buf[bitmap_start + i / 8] |= 1 << (i % 8);
            }
        }

        // Fixed-width fields.
        let fixed_start = bitmap_start + self.bitmap_len;
        for (i, v) in row.values().iter().enumerate() {
            let off = self.fixed_offsets[i];
            if off == usize::MAX || v.is_null() {
                continue;
            }
            let at = fixed_start + off;
            match v {
                Value::Bool(b) => buf[at] = *b as u8,
                Value::Int(x) => buf[at..at + 4].copy_from_slice(&x.to_le_bytes()),
                Value::Float(x) => buf[at..at + 4].copy_from_slice(&x.to_le_bytes()),
                Value::Bigint(x) | Value::Timestamp(x) => {
                    buf[at..at + 8].copy_from_slice(&x.to_le_bytes())
                }
                Value::Double(x) => buf[at..at + 8].copy_from_slice(&x.to_le_bytes()),
                Value::Null | Value::Str(_) => unreachable!("filtered above"),
            }
        }

        // Var-length offsets + data. Offsets are *end* positions within the
        // string area so length(i) = offset(i) - offset(i-1).
        let offsets_start = fixed_start + self.fixed_area;
        let data_start = offsets_start + self.var_columns.len() * ow;
        let mut cursor = 0usize;
        for (vi, &ci) in self.var_columns.iter().enumerate() {
            if let Value::Str(s) = &row[ci] {
                buf[data_start + cursor..data_start + cursor + s.len()]
                    .copy_from_slice(s.as_bytes());
                cursor += s.len();
            }
            let at = offsets_start + vi * ow;
            match ow {
                1 => buf[at] = cursor as u8,
                2 => buf[at..at + 2].copy_from_slice(&(cursor as u16).to_le_bytes()),
                _ => buf[at..at + 4].copy_from_slice(&(cursor as u32).to_le_bytes()),
            }
        }
        Ok(())
    }

    /// Decode only the columns marked in `wanted` (others become `Null`),
    /// or everything when `wanted` is `None`.
    ///
    /// This is the "compact offset calculation" fast path of Section 7.1:
    /// fixed-width fields are read by precomputed offset without touching
    /// the rest of the row, so a window scan evaluating `sum(price)` never
    /// pays for decoding (or allocating) the row's strings.
    pub fn decode_projected(&self, buf: &[u8], wanted: Option<&[bool]>) -> Result<Row> {
        let layout = self.parse_layout(buf)?;
        let fixed_start = layout.fixed_start;
        let data_start = layout.data_start;

        let bitmap = &buf[HEADER_SIZE..HEADER_SIZE + self.bitmap_len];
        let is_null = |i: usize| bitmap[i / 8] & (1 << (i % 8)) != 0;
        let read_offset = |vi: usize| layout.read_offset(buf, vi);

        let mut values = Vec::with_capacity(self.schema.len());
        let mut var_seen = 0usize;
        for (i, col) in self.schema.columns().iter().enumerate() {
            let skip = wanted.is_some_and(|w| !w.get(i).copied().unwrap_or(false));
            if col.data_type == DataType::String {
                let end = read_offset(var_seen);
                let start = if var_seen == 0 {
                    0
                } else {
                    read_offset(var_seen - 1)
                };
                var_seen += 1;
                if skip || is_null(i) {
                    values.push(Value::Null);
                    continue;
                }
                let bytes = buf
                    .get(data_start + start..data_start + end)
                    .ok_or_else(|| Error::Codec("string offset out of bounds".into()))?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|e| Error::Codec(format!("invalid UTF-8: {e}")))?;
                values.push(Value::string(s));
                continue;
            }
            if skip || is_null(i) {
                values.push(Value::Null);
                continue;
            }
            let at = fixed_start + self.fixed_offsets[i];
            values.push(match col.data_type {
                DataType::Bool => Value::Bool(buf[at] != 0),
                DataType::Int => {
                    Value::Int(i32::from_le_bytes(buf[at..at + 4].try_into().unwrap()))
                }
                DataType::Float => {
                    Value::Float(f32::from_le_bytes(buf[at..at + 4].try_into().unwrap()))
                }
                DataType::Bigint => {
                    Value::Bigint(i64::from_le_bytes(buf[at..at + 8].try_into().unwrap()))
                }
                DataType::Timestamp => {
                    Value::Timestamp(i64::from_le_bytes(buf[at..at + 8].try_into().unwrap()))
                }
                DataType::Double => {
                    Value::Double(f64::from_le_bytes(buf[at..at + 8].try_into().unwrap()))
                }
                DataType::String => unreachable!("handled above"),
            });
        }
        Ok(Row::new(values))
    }

    /// Validate `buf` against this codec and resolve the section starts.
    ///
    /// All whole-buffer checks (declared length, schema version, offset
    /// width inference) happen here exactly once; every later per-field
    /// read only needs bounds-checked slice indexing.
    fn parse_layout(&self, buf: &[u8]) -> Result<BufLayout> {
        if buf.len() < HEADER_SIZE + self.bitmap_len + self.fixed_area {
            return Err(Error::Codec(format!(
                "buffer too short: {} bytes",
                buf.len()
            )));
        }
        let declared = u32::from_le_bytes(buf[2..6].try_into().unwrap()) as usize;
        if declared != buf.len() {
            return Err(Error::Codec(format!(
                "header row size {declared} does not match buffer length {}",
                buf.len()
            )));
        }
        if buf[1] != self.schema_version {
            return Err(Error::Codec(format!(
                "schema version mismatch: buffer has v{}, codec expects v{}",
                buf[1], self.schema_version
            )));
        }

        let fixed_start = HEADER_SIZE + self.bitmap_len;
        let offsets_start = fixed_start + self.fixed_area;

        // Infer offset width from total size (the layout is deterministic).
        let remaining = buf.len() - offsets_start;
        let ow = if self.var_columns.is_empty() {
            1
        } else {
            let mut found = None;
            for cand in [1usize, 2, 4] {
                if remaining < self.var_columns.len() * cand {
                    continue;
                }
                let data_len = remaining - self.var_columns.len() * cand;
                if Self::offset_width(data_len) == cand {
                    found = Some(cand);
                    break;
                }
            }
            found.ok_or_else(|| Error::Codec("cannot infer var offset width".into()))?
        };
        let data_start = offsets_start + self.var_columns.len() * ow;
        Ok(BufLayout {
            fixed_start,
            offsets_start,
            data_start,
            ow,
        })
    }

    /// Borrow `buf` as a [`RowView`]: header/version/offset-width validation
    /// happens once here, after which every field read is in place — no
    /// `Vec<Value>` per row, strings as `&str` slices into the buffer.
    ///
    /// This is the zero-allocation counterpart of [`Self::decode_projected`];
    /// the owning decoder remains the right tool when values must outlive
    /// the buffer (e.g. rows staged into a request's combined row).
    pub fn view<'a>(&'a self, buf: &'a [u8]) -> Result<RowView<'a>> {
        let layout = self.parse_layout(buf)?;
        Ok(RowView {
            codec: self,
            buf,
            layout,
        })
    }
}

/// Resolved section starts of one validated compact buffer.
#[derive(Debug, Clone, Copy)]
struct BufLayout {
    fixed_start: usize,
    offsets_start: usize,
    data_start: usize,
    ow: usize,
}

impl BufLayout {
    /// End offset of var field `vi` within the string area.
    // analysis:allow(panic-freedom): the layout is produced by
    // `CompactCodec::view`, which validates that the offsets section lies
    // inside `buf` for every var field before a view exists.
    fn read_offset(&self, buf: &[u8], vi: usize) -> usize {
        let at = self.offsets_start + vi * self.ow;
        match self.ow {
            1 => buf[at] as usize,
            2 => u16::from_le_bytes(buf[at..at + 2].try_into().unwrap()) as usize,
            _ => u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize,
        }
    }
}

/// A borrowed scalar read out of a [`RowView`] — the non-owning analogue of
/// [`Value`], with strings as slices into the encoded buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    Null,
    Bool(bool),
    Int(i32),
    Bigint(i64),
    Float(f32),
    Double(f64),
    Timestamp(i64),
    Str(&'a str),
}

impl ValueRef<'_> {
    pub fn is_null(&self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Promote to an owning [`Value`]. Allocates only for `Str`.
    pub fn to_value(&self) -> Value {
        match *self {
            ValueRef::Null => Value::Null,
            ValueRef::Bool(b) => Value::Bool(b),
            ValueRef::Int(x) => Value::Int(x),
            ValueRef::Bigint(x) => Value::Bigint(x),
            ValueRef::Float(x) => Value::Float(x),
            ValueRef::Double(x) => Value::Double(x),
            ValueRef::Timestamp(x) => Value::Timestamp(x),
            ValueRef::Str(s) => Value::string(s),
        }
    }
}

/// Borrowed, validated view over one compact-encoded row (paper §7.1).
///
/// Constructed by [`CompactCodec::view`]; all header checks are already
/// done, so [`RowView::get`] is a bitmap probe plus one offset add — the
/// "compact offset calculation" fast path with zero heap traffic.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    codec: &'a CompactCodec,
    buf: &'a [u8],
    layout: BufLayout,
}

impl<'a> RowView<'a> {
    /// Number of columns in the backing schema.
    pub fn len(&self) -> usize {
        self.codec.schema.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether column `i` is NULL (out-of-range columns read as NULL).
    // analysis:allow(panic-freedom): `i < schema.len()` is checked above
    // the read, and view construction validated the header + bitmap span.
    pub fn is_null(&self, i: usize) -> bool {
        if i >= self.codec.schema.len() {
            return true;
        }
        self.buf[HEADER_SIZE + i / 8] & (1 << (i % 8)) != 0
    }

    // HOT: per-row field read on the online scan path — no allocation.
    /// Read column `i` in place.
    pub fn get(&self, i: usize) -> Result<ValueRef<'a>> {
        let col = self
            .codec
            .schema
            .columns()
            .get(i)
            .ok_or_else(|| Error::Codec(format!("column {i} out of range")))?;
        if self.is_null(i) {
            return Ok(ValueRef::Null);
        }
        let buf = self.buf;
        if col.data_type == DataType::String {
            let vi = self.codec.var_pos[i];
            let end = self.layout.read_offset(buf, vi);
            let start = if vi == 0 {
                0
            } else {
                self.layout.read_offset(buf, vi - 1)
            };
            let bytes = buf
                .get(self.layout.data_start + start..self.layout.data_start + end)
                .ok_or_else(|| Error::Codec("string offset out of bounds".into()))?;
            let s = std::str::from_utf8(bytes)
                .map_err(|e| Error::Codec(format!("invalid UTF-8: {e}")))?;
            return Ok(ValueRef::Str(s));
        }
        let at = self.layout.fixed_start + self.codec.fixed_offsets[i];
        Ok(match col.data_type {
            DataType::Bool => ValueRef::Bool(buf[at] != 0),
            DataType::Int => ValueRef::Int(i32::from_le_bytes(buf[at..at + 4].try_into().unwrap())),
            DataType::Float => {
                ValueRef::Float(f32::from_le_bytes(buf[at..at + 4].try_into().unwrap()))
            }
            DataType::Bigint => {
                ValueRef::Bigint(i64::from_le_bytes(buf[at..at + 8].try_into().unwrap()))
            }
            DataType::Timestamp => {
                ValueRef::Timestamp(i64::from_le_bytes(buf[at..at + 8].try_into().unwrap()))
            }
            DataType::Double => {
                ValueRef::Double(f64::from_le_bytes(buf[at..at + 8].try_into().unwrap()))
            }
            DataType::String => unreachable!("handled above"),
        })
    }

    /// Owned read of column `i` (allocates only for strings). Matches what
    /// [`CompactCodec::decode_projected`] would produce for that column.
    pub fn get_value(&self, i: usize) -> Result<Value> {
        Ok(self.get(i)?.to_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn paper_example_schema() -> Schema {
        // 20 ints, 20 floats, 20 strings, 5 timestamps — Section 7.1 example.
        let mut cols = Vec::new();
        for i in 0..20 {
            cols.push(ColumnDef::new(format!("i{i}"), DataType::Int));
        }
        for i in 0..20 {
            cols.push(ColumnDef::new(format!("f{i}"), DataType::Float));
        }
        for i in 0..20 {
            cols.push(ColumnDef::new(format!("s{i}"), DataType::String));
        }
        for i in 0..5 {
            cols.push(ColumnDef::new(format!("t{i}"), DataType::Timestamp));
        }
        Schema::new(cols).unwrap()
    }

    fn paper_example_row() -> Row {
        let mut v = Vec::new();
        for i in 0..20 {
            v.push(Value::Int(i));
        }
        for i in 0..20 {
            v.push(Value::Float(i as f32));
        }
        for _ in 0..20 {
            v.push(Value::string("x")); // 1-byte strings
        }
        for i in 0..5 {
            v.push(Value::Timestamp(i));
        }
        Row::new(v)
    }

    /// The paper's memory-saving arithmetic, verified byte-for-byte:
    /// header 6 + bitmap 9 + (20×4 + 20×4 + 5×8 = 200) + 20 offsets + 20 data
    /// = 255 bytes.
    #[test]
    fn paper_example_is_255_bytes() {
        let codec = CompactCodec::new(paper_example_schema());
        let row = paper_example_row();
        assert_eq!(codec.encoded_size(&row).unwrap(), 255);
        assert_eq!(codec.encode(&row).unwrap().len(), 255);
    }

    #[test]
    fn roundtrip_all_types_with_nulls() {
        let schema = Schema::from_pairs(&[
            ("b", DataType::Bool),
            ("i", DataType::Int),
            ("l", DataType::Bigint),
            ("f", DataType::Float),
            ("d", DataType::Double),
            ("t", DataType::Timestamp),
            ("s1", DataType::String),
            ("s2", DataType::String),
        ])
        .unwrap();
        let codec = CompactCodec::new(schema);
        let row = Row::new(vec![
            Value::Bool(true),
            Value::Null,
            Value::Bigint(-7),
            Value::Float(1.5),
            Value::Double(-2.25),
            Value::Timestamp(1_700_000_000_000),
            Value::Null,
            Value::string("hello world"),
        ]);
        let buf = codec.encode(&row).unwrap();
        assert_eq!(codec.decode(&buf).unwrap(), row);
    }

    #[test]
    fn offset_width_scales_with_string_size() {
        let schema = Schema::from_pairs(&[("s", DataType::String)]).unwrap();
        let codec = CompactCodec::new(schema);
        let small = Row::new(vec![Value::string("ab")]);
        // header 6 + bitmap 1 + 1 offset byte + 2 data bytes
        assert_eq!(codec.encoded_size(&small).unwrap(), 10);
        let big = Row::new(vec![Value::string("x".repeat(300))]);
        // 2-byte offsets once string area ≥ 256 bytes
        assert_eq!(codec.encoded_size(&big).unwrap(), 6 + 1 + 2 + 300);
        let huge = Row::new(vec![Value::string("x".repeat(70_000))]);
        assert_eq!(codec.encoded_size(&huge).unwrap(), 6 + 1 + 4 + 70_000);
        for row in [small, big, huge] {
            let buf = codec.encode(&row).unwrap();
            assert_eq!(codec.decode(&buf).unwrap(), row);
        }
    }

    #[test]
    fn header_records_versions_and_size() {
        let schema = Schema::from_pairs(&[("i", DataType::Int)]).unwrap();
        let codec = CompactCodec::with_versions(schema.clone(), 3, 9);
        let buf = codec.encode(&Row::new(vec![Value::Int(1)])).unwrap();
        assert_eq!(buf[0], 3);
        assert_eq!(buf[1], 9);
        assert_eq!(
            u32::from_le_bytes(buf[2..6].try_into().unwrap()) as usize,
            buf.len()
        );
        // Wrong schema version is rejected at decode time.
        let other = CompactCodec::with_versions(schema, 3, 10);
        assert!(matches!(other.decode(&buf), Err(Error::Codec(_))));
    }

    #[test]
    fn truncated_buffer_rejected() {
        let schema = Schema::from_pairs(&[("i", DataType::Int)]).unwrap();
        let codec = CompactCodec::new(schema);
        let buf = codec.encode(&Row::new(vec![Value::Int(5)])).unwrap();
        assert!(codec.decode(&buf[..buf.len() - 1]).is_err());
        assert!(codec.decode(&buf[..3]).is_err());
    }

    #[test]
    fn type_mismatch_rejected_at_encode() {
        let schema = Schema::from_pairs(&[("s", DataType::String)]).unwrap();
        let codec = CompactCodec::new(schema);
        assert!(codec.encode(&Row::new(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn view_reads_every_field_in_place() {
        let schema = Schema::from_pairs(&[
            ("b", DataType::Bool),
            ("i", DataType::Int),
            ("l", DataType::Bigint),
            ("f", DataType::Float),
            ("d", DataType::Double),
            ("t", DataType::Timestamp),
            ("s1", DataType::String),
            ("s2", DataType::String),
        ])
        .unwrap();
        let codec = CompactCodec::new(schema);
        let row = Row::new(vec![
            Value::Bool(true),
            Value::Null,
            Value::Bigint(-7),
            Value::Float(1.5),
            Value::Double(-2.25),
            Value::Timestamp(1_700_000_000_000),
            Value::Null,
            Value::string("hello world"),
        ]);
        let buf = codec.encode(&row).unwrap();
        let view = codec.view(&buf).unwrap();
        assert_eq!(view.len(), 8);
        assert_eq!(view.get(0).unwrap(), ValueRef::Bool(true));
        assert!(view.is_null(1));
        assert_eq!(view.get(1).unwrap(), ValueRef::Null);
        assert_eq!(view.get(2).unwrap(), ValueRef::Bigint(-7));
        assert_eq!(view.get(3).unwrap(), ValueRef::Float(1.5));
        assert_eq!(view.get(4).unwrap(), ValueRef::Double(-2.25));
        assert_eq!(view.get(5).unwrap(), ValueRef::Timestamp(1_700_000_000_000));
        assert_eq!(view.get(6).unwrap(), ValueRef::Null);
        // The string is a slice into the encoded buffer, not a copy.
        let ValueRef::Str(s) = view.get(7).unwrap() else {
            panic!("expected string")
        };
        assert_eq!(s, "hello world");
        let buf_range = buf.as_ptr() as usize..buf.as_ptr() as usize + buf.len();
        assert!(buf_range.contains(&(s.as_ptr() as usize)));
        // Out-of-range access is a typed error, not a panic.
        assert!(view.get(8).is_err());
        assert!(view.is_null(8));
    }

    #[test]
    fn view_rejects_what_decode_rejects() {
        let schema = Schema::from_pairs(&[("i", DataType::Int)]).unwrap();
        let codec = CompactCodec::with_versions(schema.clone(), 1, 2);
        let buf = codec.encode(&Row::new(vec![Value::Int(5)])).unwrap();
        assert!(codec.view(&buf[..buf.len() - 1]).is_err());
        assert!(codec.view(&buf[..3]).is_err());
        let other = CompactCodec::with_versions(schema, 1, 3);
        assert!(other.view(&buf).is_err());
        assert!(codec.view(&buf).is_ok());
    }

    #[test]
    fn view_matches_decode_on_wide_offsets() {
        // 2-byte and 4-byte var offsets exercise every read_offset arm.
        let schema =
            Schema::from_pairs(&[("a", DataType::String), ("b", DataType::String)]).unwrap();
        let codec = CompactCodec::new(schema);
        for size in [10usize, 300, 70_000] {
            let row = Row::new(vec![Value::string("x".repeat(size)), Value::string("tail")]);
            let buf = codec.encode(&row).unwrap();
            let view = codec.view(&buf).unwrap();
            for i in 0..2 {
                assert_eq!(view.get_value(i).unwrap(), row[i]);
            }
        }
    }
}
