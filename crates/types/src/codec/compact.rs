//! OpenMLDB compact row format (paper Section 7.1, Figure 5).
//!
//! Layout, in order:
//!
//! ```text
//! +--------+---------+--------------------+------------------+-----------+
//! | header | bitmap  | fixed-width fields | var-field offsets| var bytes |
//! | 6 B    | ⌈n/8⌉ B | Σ fixed sizes      | n_var × ow       | Σ lens    |
//! +--------+---------+--------------------+------------------+-----------+
//! ```
//!
//! * **Header (6 bytes)** — field version (1 B), schema version (1 B), and
//!   total row size (4 B little-endian). Fewer than 64 versions are expected,
//!   so one byte each suffices (paper wording).
//! * **BitMap** — one bit per column marking NULL, allocated in byte units.
//! * **Fixed fields** — packed at their natural width: `INT`/`FLOAT` take
//!   4 bytes (unlike Spark's uniform 8-byte slots), `BIGINT`/`DOUBLE`/
//!   `TIMESTAMP` take 8, `BOOL` takes 1. Offsets are precomputed per schema
//!   ("compact offset calculation"), so field access is one add, not a scan.
//! * **Var fields** — only *end offsets* are stored, at the narrowest width
//!   (1/2/4 bytes) that can address the string area; a string's length is the
//!   difference between its offset and the previous one, so no 32-bit length
//!   words are spent per string.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::{DataType, Value};

use super::RowCodec;

/// Fixed header length: field version (1) + schema version (1) + size (4).
pub const HEADER_SIZE: usize = 6;

/// Per-schema compact codec with precomputed field offsets.
#[derive(Debug, Clone)]
pub struct CompactCodec {
    schema: Schema,
    /// Byte offset of each fixed-width column within the fixed area;
    /// `usize::MAX` for var-length columns.
    fixed_offsets: Arc<[usize]>,
    /// Total size of the fixed-width area.
    fixed_area: usize,
    /// Column indices of var-length (string) columns, in schema order.
    var_columns: Arc<[usize]>,
    bitmap_len: usize,
    field_version: u8,
    schema_version: u8,
}

impl CompactCodec {
    pub fn new(schema: Schema) -> Self {
        Self::with_versions(schema, 1, 1)
    }

    /// Codec with explicit format/schema versions (recorded in the header).
    pub fn with_versions(schema: Schema, field_version: u8, schema_version: u8) -> Self {
        let mut fixed_offsets = Vec::with_capacity(schema.len());
        let mut var_columns = Vec::new();
        let mut cursor = 0usize;
        for (i, col) in schema.columns().iter().enumerate() {
            match col.data_type.fixed_size() {
                Some(sz) => {
                    fixed_offsets.push(cursor);
                    cursor += sz;
                }
                None => {
                    fixed_offsets.push(usize::MAX);
                    var_columns.push(i);
                }
            }
        }
        let bitmap_len = schema.len().div_ceil(8);
        CompactCodec {
            schema,
            fixed_offsets: fixed_offsets.into(),
            fixed_area: cursor,
            var_columns: var_columns.into(),
            bitmap_len,
            field_version,
            schema_version,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Width in bytes of one var-field offset, given the string area size.
    /// The narrowest of 1/2/4 that can address `var_bytes` is used.
    fn offset_width(var_bytes: usize) -> usize {
        if var_bytes < (1 << 8) {
            1
        } else if var_bytes < (1 << 16) {
            2
        } else {
            4
        }
    }

    /// Total byte length of string data in `row` (NULLs contribute zero).
    fn var_bytes(&self, row: &Row) -> Result<usize> {
        let mut total = 0;
        for &ci in self.var_columns.iter() {
            match &row[ci] {
                Value::Null => {}
                Value::Str(s) => total += s.len(),
                other => {
                    return Err(Error::Codec(format!(
                        "column {ci} expects STRING, row has {other:?}"
                    )))
                }
            }
        }
        Ok(total)
    }

    fn layout(&self, row: &Row) -> Result<(usize, usize)> {
        let var_bytes = self.var_bytes(row)?;
        let ow = Self::offset_width(var_bytes);
        let total = HEADER_SIZE
            + self.bitmap_len
            + self.fixed_area
            + self.var_columns.len() * ow
            + var_bytes;
        Ok((total, ow))
    }
}

impl RowCodec for CompactCodec {
    fn encoded_size(&self, row: &Row) -> Result<usize> {
        self.schema.validate_row(row.values())?;
        Ok(self.layout(row)?.0)
    }

    fn encode(&self, row: &Row) -> Result<Vec<u8>> {
        self.schema.validate_row(row.values())?;
        let (total, ow) = self.layout(row)?;
        let mut buf = vec![0u8; total];

        // Header.
        buf[0] = self.field_version;
        buf[1] = self.schema_version;
        buf[2..6].copy_from_slice(&(total as u32).to_le_bytes());

        // Null bitmap.
        let bitmap_start = HEADER_SIZE;
        for (i, v) in row.values().iter().enumerate() {
            if v.is_null() {
                buf[bitmap_start + i / 8] |= 1 << (i % 8);
            }
        }

        // Fixed-width fields.
        let fixed_start = bitmap_start + self.bitmap_len;
        for (i, v) in row.values().iter().enumerate() {
            let off = self.fixed_offsets[i];
            if off == usize::MAX || v.is_null() {
                continue;
            }
            let at = fixed_start + off;
            match v {
                Value::Bool(b) => buf[at] = *b as u8,
                Value::Int(x) => buf[at..at + 4].copy_from_slice(&x.to_le_bytes()),
                Value::Float(x) => buf[at..at + 4].copy_from_slice(&x.to_le_bytes()),
                Value::Bigint(x) | Value::Timestamp(x) => {
                    buf[at..at + 8].copy_from_slice(&x.to_le_bytes())
                }
                Value::Double(x) => buf[at..at + 8].copy_from_slice(&x.to_le_bytes()),
                Value::Null | Value::Str(_) => unreachable!("filtered above"),
            }
        }

        // Var-length offsets + data. Offsets are *end* positions within the
        // string area so length(i) = offset(i) - offset(i-1).
        let offsets_start = fixed_start + self.fixed_area;
        let data_start = offsets_start + self.var_columns.len() * ow;
        let mut cursor = 0usize;
        for (vi, &ci) in self.var_columns.iter().enumerate() {
            if let Value::Str(s) = &row[ci] {
                buf[data_start + cursor..data_start + cursor + s.len()]
                    .copy_from_slice(s.as_bytes());
                cursor += s.len();
            }
            let at = offsets_start + vi * ow;
            match ow {
                1 => buf[at] = cursor as u8,
                2 => buf[at..at + 2].copy_from_slice(&(cursor as u16).to_le_bytes()),
                _ => buf[at..at + 4].copy_from_slice(&(cursor as u32).to_le_bytes()),
            }
        }
        Ok(buf)
    }

    fn decode(&self, buf: &[u8]) -> Result<Row> {
        self.decode_projected(buf, None)
    }
}

impl CompactCodec {
    /// Decode only the columns marked in `wanted` (others become `Null`),
    /// or everything when `wanted` is `None`.
    ///
    /// This is the "compact offset calculation" fast path of Section 7.1:
    /// fixed-width fields are read by precomputed offset without touching
    /// the rest of the row, so a window scan evaluating `sum(price)` never
    /// pays for decoding (or allocating) the row's strings.
    pub fn decode_projected(&self, buf: &[u8], wanted: Option<&[bool]>) -> Result<Row> {
        if buf.len() < HEADER_SIZE + self.bitmap_len + self.fixed_area {
            return Err(Error::Codec(format!(
                "buffer too short: {} bytes",
                buf.len()
            )));
        }
        let declared = u32::from_le_bytes(buf[2..6].try_into().unwrap()) as usize;
        if declared != buf.len() {
            return Err(Error::Codec(format!(
                "header row size {declared} does not match buffer length {}",
                buf.len()
            )));
        }
        if buf[1] != self.schema_version {
            return Err(Error::Codec(format!(
                "schema version mismatch: buffer has v{}, codec expects v{}",
                buf[1], self.schema_version
            )));
        }

        let bitmap = &buf[HEADER_SIZE..HEADER_SIZE + self.bitmap_len];
        let is_null = |i: usize| bitmap[i / 8] & (1 << (i % 8)) != 0;
        let fixed_start = HEADER_SIZE + self.bitmap_len;
        let offsets_start = fixed_start + self.fixed_area;

        // Infer offset width from total size (the layout is deterministic).
        let remaining = buf.len() - offsets_start;
        let ow = if self.var_columns.is_empty() {
            1
        } else {
            let mut found = None;
            for cand in [1usize, 2, 4] {
                if remaining < self.var_columns.len() * cand {
                    continue;
                }
                let data_len = remaining - self.var_columns.len() * cand;
                if Self::offset_width(data_len) == cand {
                    found = Some(cand);
                    break;
                }
            }
            found.ok_or_else(|| Error::Codec("cannot infer var offset width".into()))?
        };
        let data_start = offsets_start + self.var_columns.len() * ow;

        let read_offset = |vi: usize| -> usize {
            let at = offsets_start + vi * ow;
            match ow {
                1 => buf[at] as usize,
                2 => u16::from_le_bytes(buf[at..at + 2].try_into().unwrap()) as usize,
                _ => u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize,
            }
        };

        let mut values = Vec::with_capacity(self.schema.len());
        let mut var_seen = 0usize;
        for (i, col) in self.schema.columns().iter().enumerate() {
            let skip = wanted.is_some_and(|w| !w.get(i).copied().unwrap_or(false));
            if col.data_type == DataType::String {
                let end = read_offset(var_seen);
                let start = if var_seen == 0 {
                    0
                } else {
                    read_offset(var_seen - 1)
                };
                var_seen += 1;
                if skip || is_null(i) {
                    values.push(Value::Null);
                    continue;
                }
                let bytes = buf
                    .get(data_start + start..data_start + end)
                    .ok_or_else(|| Error::Codec("string offset out of bounds".into()))?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|e| Error::Codec(format!("invalid UTF-8: {e}")))?;
                values.push(Value::string(s));
                continue;
            }
            if skip || is_null(i) {
                values.push(Value::Null);
                continue;
            }
            let at = fixed_start + self.fixed_offsets[i];
            values.push(match col.data_type {
                DataType::Bool => Value::Bool(buf[at] != 0),
                DataType::Int => {
                    Value::Int(i32::from_le_bytes(buf[at..at + 4].try_into().unwrap()))
                }
                DataType::Float => {
                    Value::Float(f32::from_le_bytes(buf[at..at + 4].try_into().unwrap()))
                }
                DataType::Bigint => {
                    Value::Bigint(i64::from_le_bytes(buf[at..at + 8].try_into().unwrap()))
                }
                DataType::Timestamp => {
                    Value::Timestamp(i64::from_le_bytes(buf[at..at + 8].try_into().unwrap()))
                }
                DataType::Double => {
                    Value::Double(f64::from_le_bytes(buf[at..at + 8].try_into().unwrap()))
                }
                DataType::String => unreachable!("handled above"),
            });
        }
        Ok(Row::new(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn paper_example_schema() -> Schema {
        // 20 ints, 20 floats, 20 strings, 5 timestamps — Section 7.1 example.
        let mut cols = Vec::new();
        for i in 0..20 {
            cols.push(ColumnDef::new(format!("i{i}"), DataType::Int));
        }
        for i in 0..20 {
            cols.push(ColumnDef::new(format!("f{i}"), DataType::Float));
        }
        for i in 0..20 {
            cols.push(ColumnDef::new(format!("s{i}"), DataType::String));
        }
        for i in 0..5 {
            cols.push(ColumnDef::new(format!("t{i}"), DataType::Timestamp));
        }
        Schema::new(cols).unwrap()
    }

    fn paper_example_row() -> Row {
        let mut v = Vec::new();
        for i in 0..20 {
            v.push(Value::Int(i));
        }
        for i in 0..20 {
            v.push(Value::Float(i as f32));
        }
        for _ in 0..20 {
            v.push(Value::string("x")); // 1-byte strings
        }
        for i in 0..5 {
            v.push(Value::Timestamp(i));
        }
        Row::new(v)
    }

    /// The paper's memory-saving arithmetic, verified byte-for-byte:
    /// header 6 + bitmap 9 + (20×4 + 20×4 + 5×8 = 200) + 20 offsets + 20 data
    /// = 255 bytes.
    #[test]
    fn paper_example_is_255_bytes() {
        let codec = CompactCodec::new(paper_example_schema());
        let row = paper_example_row();
        assert_eq!(codec.encoded_size(&row).unwrap(), 255);
        assert_eq!(codec.encode(&row).unwrap().len(), 255);
    }

    #[test]
    fn roundtrip_all_types_with_nulls() {
        let schema = Schema::from_pairs(&[
            ("b", DataType::Bool),
            ("i", DataType::Int),
            ("l", DataType::Bigint),
            ("f", DataType::Float),
            ("d", DataType::Double),
            ("t", DataType::Timestamp),
            ("s1", DataType::String),
            ("s2", DataType::String),
        ])
        .unwrap();
        let codec = CompactCodec::new(schema);
        let row = Row::new(vec![
            Value::Bool(true),
            Value::Null,
            Value::Bigint(-7),
            Value::Float(1.5),
            Value::Double(-2.25),
            Value::Timestamp(1_700_000_000_000),
            Value::Null,
            Value::string("hello world"),
        ]);
        let buf = codec.encode(&row).unwrap();
        assert_eq!(codec.decode(&buf).unwrap(), row);
    }

    #[test]
    fn offset_width_scales_with_string_size() {
        let schema = Schema::from_pairs(&[("s", DataType::String)]).unwrap();
        let codec = CompactCodec::new(schema);
        let small = Row::new(vec![Value::string("ab")]);
        // header 6 + bitmap 1 + 1 offset byte + 2 data bytes
        assert_eq!(codec.encoded_size(&small).unwrap(), 10);
        let big = Row::new(vec![Value::string("x".repeat(300))]);
        // 2-byte offsets once string area ≥ 256 bytes
        assert_eq!(codec.encoded_size(&big).unwrap(), 6 + 1 + 2 + 300);
        let huge = Row::new(vec![Value::string("x".repeat(70_000))]);
        assert_eq!(codec.encoded_size(&huge).unwrap(), 6 + 1 + 4 + 70_000);
        for row in [small, big, huge] {
            let buf = codec.encode(&row).unwrap();
            assert_eq!(codec.decode(&buf).unwrap(), row);
        }
    }

    #[test]
    fn header_records_versions_and_size() {
        let schema = Schema::from_pairs(&[("i", DataType::Int)]).unwrap();
        let codec = CompactCodec::with_versions(schema.clone(), 3, 9);
        let buf = codec.encode(&Row::new(vec![Value::Int(1)])).unwrap();
        assert_eq!(buf[0], 3);
        assert_eq!(buf[1], 9);
        assert_eq!(
            u32::from_le_bytes(buf[2..6].try_into().unwrap()) as usize,
            buf.len()
        );
        // Wrong schema version is rejected at decode time.
        let other = CompactCodec::with_versions(schema, 3, 10);
        assert!(matches!(other.decode(&buf), Err(Error::Codec(_))));
    }

    #[test]
    fn truncated_buffer_rejected() {
        let schema = Schema::from_pairs(&[("i", DataType::Int)]).unwrap();
        let codec = CompactCodec::new(schema);
        let buf = codec.encode(&Row::new(vec![Value::Int(5)])).unwrap();
        assert!(codec.decode(&buf[..buf.len() - 1]).is_err());
        assert!(codec.decode(&buf[..3]).is_err());
    }

    #[test]
    fn type_mismatch_rejected_at_encode() {
        let schema = Schema::from_pairs(&[("s", DataType::String)]).unwrap();
        let codec = CompactCodec::new(schema);
        assert!(codec.encode(&Row::new(vec![Value::Int(1)])).is_err());
    }
}
