//! Row encoding formats.
//!
//! Two codecs live here:
//!
//! * [`compact`] — OpenMLDB's compact in-memory format (paper Section 7.1,
//!   Figure 5): a 6-byte header, a byte-granular NULL bitmap, tightly packed
//!   fixed-width fields (4-byte ints/floats), and variable-length fields
//!   stored as offsets with no per-string length words.
//! * [`unsafe_row`] — a Spark-`UnsafeRow`-style format used as the memory
//!   baseline: a word-aligned null bitset and one 8-byte slot per field.
//!
//! The paper's worked example (20 ints + 20 floats + 20 one-byte strings +
//! 5 timestamps → 255 bytes vs 556 bytes, a 54% saving) is verified exactly
//! by unit tests in both modules.
//!
//! Despite the `unsafe_row` name (inherited from Spark's `UnsafeRow`),
//! neither codec contains any `unsafe` code: both work on plain byte
//! slices with bounds-checked indexing. The remaining sharp edge is the
//! deliberate set of width-limited `as` casts (offsets and header fields
//! whose width is chosen from the encoded size), which the workspace lint
//! (`cargo run -p openmldb-analysis -- lint`) tracks under its
//! `lossy-cast` rule with a curated baseline — any *new* narrowing cast
//! fails the lint.

pub mod compact;
pub mod unsafe_row;

pub use compact::{CompactCodec, RowView, ValueRef};
pub use unsafe_row::UnsafeRowCodec;

use crate::error::Result;
use crate::row::Row;

/// Common interface over the row codecs so benches can swap them.
pub trait RowCodec {
    /// Encode a decoded row into a fresh byte buffer.
    fn encode(&self, row: &Row) -> Result<Vec<u8>>;
    /// Decode a buffer produced by [`RowCodec::encode`].
    fn decode(&self, buf: &[u8]) -> Result<Row>;
    /// The exact encoded size of `row` without materializing the buffer.
    fn encoded_size(&self, row: &Row) -> Result<usize>;
}
