//! Table schemas and column metadata.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::{DataType, Value};

/// One column of a table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// An ordered set of columns with O(1) name lookup.
///
/// Schemas are immutable and shared (`Arc`) between the planner, the storage
/// engine, and the codecs — the paper's "unified query plan generator" relies
/// on both execution stages seeing byte-identical schemas.
#[derive(Debug, Clone)]
pub struct Schema {
    columns: Arc<[ColumnDef]>,
    by_name: Arc<HashMap<String, usize>>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.columns == other.columns
    }
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Self> {
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if by_name.insert(c.name.clone(), i).is_some() {
                return Err(Error::Schema(format!("duplicate column name `{}`", c.name)));
            }
        }
        Ok(Schema {
            columns: columns.into(),
            by_name: Arc::new(by_name),
        })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Result<Self> {
        Schema::new(pairs.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect())
    }

    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::Plan(format!("unknown column `{name}`")))
    }

    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Whether `row` conforms to this schema (arity, types, nullability).
    pub fn validate_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::Schema(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.iter().zip(self.columns.iter()) {
            match v.data_type() {
                None if !c.nullable => {
                    return Err(Error::Schema(format!(
                        "NULL in non-nullable column `{}`",
                        c.name
                    )))
                }
                Some(t) if t != c.data_type => {
                    return Err(Error::Type {
                        expected: c.data_type.sql_name().into(),
                        found: format!("{} in column `{}`", t.sql_name(), c.name),
                    })
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Concatenate two schemas (used by Concat Join in the offline engine);
    /// colliding names get a `_r`/`_r2`/... suffix until unique.
    pub fn concat(&self, other: &Schema) -> Result<Schema> {
        let mut cols: Vec<ColumnDef> = self.columns.to_vec();
        let mut used: std::collections::HashSet<String> =
            cols.iter().map(|c| c.name.clone()).collect();
        for c in other.columns.iter() {
            let mut c = c.clone();
            if used.contains(&c.name) {
                let mut n = 1;
                loop {
                    let candidate = if n == 1 {
                        format!("{}_r", c.name)
                    } else {
                        format!("{}_r{n}", c.name)
                    };
                    if !used.contains(&candidate) {
                        c.name = candidate;
                        break;
                    }
                    n += 1;
                }
            }
            used.insert(c.name.clone());
            cols.push(c);
        }
        Schema::new(cols)
    }

    /// Schema extended with one extra column (e.g. the offline engine's
    /// synthetic index column of Section 6.1).
    pub fn with_column(&self, col: ColumnDef) -> Result<Schema> {
        let mut cols = self.columns.to_vec();
        cols.push(col);
        Schema::new(cols)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
            if !c.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("userid", DataType::Bigint),
            ("price", DataType::Double),
            ("ts", DataType::Timestamp),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::from_pairs(&[("a", DataType::Int), ("a", DataType::Int)]).unwrap_err();
        assert!(matches!(err, Error::Schema(_)));
    }

    #[test]
    fn index_lookup() {
        let s = schema();
        assert_eq!(s.index_of("price").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn row_validation_checks_arity_types_nulls() {
        let s = schema();
        assert!(s
            .validate_row(&[Value::Bigint(1), Value::Double(2.0), Value::Timestamp(3)])
            .is_ok());
        assert!(s.validate_row(&[Value::Bigint(1)]).is_err());
        assert!(s
            .validate_row(&[Value::Bigint(1), Value::string("x"), Value::Timestamp(3)])
            .is_err());
        let strict = Schema::new(vec![ColumnDef::new("a", DataType::Int).not_null()]).unwrap();
        assert!(strict.validate_row(&[Value::Null]).is_err());
    }

    #[test]
    fn concat_renames_collisions() {
        let a = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        let b = Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Int)]).unwrap();
        let c = a.concat(&b).unwrap();
        assert_eq!(c.column(1).name, "x_r");
        assert_eq!(c.column(2).name, "y");
    }

    #[test]
    fn display_renders_sql() {
        let s = Schema::new(vec![ColumnDef::new("a", DataType::Int).not_null()]).unwrap();
        assert_eq!(s.to_string(), "(a INT NOT NULL)");
    }
}
