//! Decoded row representation.
//!
//! A [`Row`] is the in-flight, decoded form of a tuple — what expression
//! evaluation and window aggregation operate on. At-rest tuples live in the
//! compact encoded form of [`crate::codec`].

use std::ops::Index;
use std::sync::Arc;

use crate::schema::Schema;
use crate::value::{KeyValue, Value};

/// A decoded tuple. Cloning is cheap: values are shared via `Arc` internally
/// (strings) and the vector is reference-counted.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    values: Arc<[Value]>,
}

impl Row {
    pub fn new(values: Vec<Value>) -> Self {
        Row {
            values: values.into(),
        }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Extract the partition key for the named columns.
    pub fn key_for(&self, indices: &[usize]) -> Vec<KeyValue> {
        indices
            .iter()
            .map(|&i| KeyValue::from(&self.values[i]))
            .collect()
    }

    /// Extract a single-column order-by timestamp, as `i64`.
    pub fn ts_at(&self, idx: usize) -> i64 {
        self.values[idx].as_i64().unwrap_or(i64::MIN)
    }

    /// A new row with `extra` appended (offline index column, Section 6.1).
    pub fn with_appended(&self, extra: Value) -> Row {
        let mut v: Vec<Value> = self.values.to_vec();
        v.push(extra);
        Row::new(v)
    }

    /// A new row concatenating `other` (Concat Join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v: Vec<Value> = self.values.to_vec();
        v.extend(other.values.iter().cloned());
        Row::new(v)
    }

    /// A new row keeping only the listed column indices.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Approximate decoded memory footprint.
    pub fn mem_size(&self) -> usize {
        std::mem::size_of::<Row>() + self.values.iter().map(Value::mem_size).sum::<usize>()
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row::new(iter.into_iter().collect())
    }
}

/// A batch of rows sharing one schema — the unit the offline engine moves
/// between partitions.
#[derive(Debug, Clone)]
pub struct RowBatch {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl RowBatch {
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        RowBatch { schema, rows }
    }

    pub fn empty(schema: Schema) -> Self {
        RowBatch {
            schema,
            rows: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::new(vec![
            Value::Bigint(42),
            Value::string("shoes"),
            Value::Timestamp(1_000),
        ])
    }

    #[test]
    fn indexing_and_projection() {
        let r = row();
        assert_eq!(r[0], Value::Bigint(42));
        let p = r.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Timestamp(1_000), Value::Bigint(42)]);
    }

    #[test]
    fn concat_and_append() {
        let r = row();
        let c = r.concat(&Row::new(vec![Value::Int(1)]));
        assert_eq!(c.len(), 4);
        let a = r.with_appended(Value::Bool(true));
        assert_eq!(a[3], Value::Bool(true));
    }

    #[test]
    fn key_extraction_is_type_canonical() {
        let r = row();
        let k = r.key_for(&[0]);
        assert_eq!(k, vec![KeyValue::Int(42)]);
        assert_eq!(r.ts_at(2), 1_000);
    }

    #[test]
    fn cheap_clone_shares_storage() {
        let r = row();
        let r2 = r.clone();
        assert_eq!(r.values().as_ptr(), r2.values().as_ptr());
    }
}
