//! Deadline budgets for the online request path.
//!
//! A [`Deadline`] is a cheap, copyable "must finish by" marker threaded
//! through `execute_request` → window dispatch → storage seeks. Each stage
//! boundary calls [`Deadline::check`], converting budget exhaustion into a
//! typed [`Error::Timeout`] instead of letting a stalled stage hang the
//! caller. The default is unbounded, so existing call sites pay only an
//! `Option` test.

use std::time::{Duration, Instant};

use crate::error::{Error, Result};

/// A per-thread virtual clock for deterministic deadline tests.
///
/// Wall-clock deadline tests are inherently flaky: asserting that a 5 ms
/// budget "has not expired yet" loses whenever the scheduler stalls the
/// test thread, and boundary tests (e.g. the 20 ms engine-decision cutoff)
/// need millisecond-exact remaining budgets. [`freeze`] switches this
/// thread's deadline time to a counter that only moves via [`advance`], so
/// a test controls elapsed time exactly. Production code never freezes;
/// the cost on the live path is one thread-local read per
/// [`Deadline::within`] call.
pub mod clock {
    use std::cell::Cell;
    use std::time::Duration;

    thread_local! {
        /// `Some(now_ns)` while frozen; `None` means wall-clock behavior.
        static VIRTUAL_NOW_NS: Cell<Option<u64>> = const { Cell::new(None) };
    }

    /// Switch this thread to virtual deadline time, starting at zero.
    /// Deadlines created while frozen expire only via [`advance`].
    pub fn freeze() {
        VIRTUAL_NOW_NS.with(|c| c.set(Some(0)));
    }

    /// Return this thread to wall-clock deadline time.
    pub fn thaw() {
        VIRTUAL_NOW_NS.with(|c| c.set(None));
    }

    /// Move the frozen clock forward by `d`. No-op when not frozen.
    pub fn advance(d: Duration) {
        VIRTUAL_NOW_NS.with(|c| {
            if let Some(now) = c.get() {
                c.set(Some(
                    now.saturating_add(d.as_nanos().min(u64::MAX as u128) as u64),
                ));
            }
        });
    }

    /// The frozen clock's current reading, if this thread is frozen.
    pub(crate) fn virtual_now_ns() -> Option<u64> {
        VIRTUAL_NOW_NS.with(Cell::get)
    }
}

/// Expiry representation: unbounded, a wall-clock instant, or a reading on
/// the thread's frozen [`clock`] (tests).
#[derive(Clone, Copy, Debug)]
enum At {
    Unbounded,
    Wall(Instant),
    Virtual(u64),
}

/// A request's time budget. Copy-cheap; `Deadline::none()` never expires.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    /// Absolute expiry, or unbounded.
    at: At,
    /// The original budget in milliseconds, kept for error context.
    budget_ms: u64,
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

impl Deadline {
    /// An unbounded deadline: `check` always succeeds.
    pub const fn none() -> Self {
        Deadline {
            at: At::Unbounded,
            budget_ms: u64::MAX,
        }
    }

    /// A deadline expiring `budget` from now. On a thread frozen via
    /// [`clock::freeze`] the expiry is a virtual-clock reading instead of a
    /// wall instant, and only [`clock::advance`] moves it closer.
    pub fn within(budget: Duration) -> Self {
        let budget_ns = budget.as_nanos().min(u64::MAX as u128) as u64;
        let at = match clock::virtual_now_ns() {
            Some(now) => At::Virtual(now.saturating_add(budget_ns)),
            None => match Instant::now().checked_add(budget) {
                Some(at) => At::Wall(at),
                None => At::Unbounded,
            },
        };
        Deadline {
            at,
            budget_ms: budget.as_millis().min(u64::MAX as u128) as u64,
        }
    }

    /// Convenience constructor in milliseconds.
    pub fn within_ms(budget_ms: u64) -> Self {
        Deadline::within(Duration::from_millis(budget_ms))
    }

    /// True when the budget is exhausted.
    pub fn expired(&self) -> bool {
        match self.at {
            At::Unbounded => false,
            At::Wall(at) => Instant::now() >= at,
            At::Virtual(at) => clock::virtual_now_ns().unwrap_or(u64::MAX) >= at,
        }
    }

    /// Time left before expiry; `None` means unbounded.
    pub fn remaining(&self) -> Option<Duration> {
        match self.at {
            At::Unbounded => None,
            At::Wall(at) => Some(at.saturating_duration_since(Instant::now())),
            At::Virtual(at) => Some(Duration::from_nanos(
                at.saturating_sub(clock::virtual_now_ns().unwrap_or(u64::MAX)),
            )),
        }
    }

    /// The total budget in milliseconds (`u64::MAX` when unbounded).
    pub fn budget_ms(&self) -> u64 {
        self.budget_ms
    }

    /// Whether this deadline actually bounds the request.
    pub fn is_bounded(&self) -> bool {
        !matches!(self.at, At::Unbounded)
    }

    /// Fail with [`Error::Timeout`] naming `stage` if the budget is spent.
    #[inline]
    pub fn check(&self, stage: &'static str) -> Result<()> {
        if self.expired() {
            Err(Error::Timeout {
                stage,
                budget_ms: self.budget_ms,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert!(!d.is_bounded());
        assert!(d.remaining().is_none());
        assert!(d.check("any").is_ok());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::within_ms(0);
        assert!(d.expired());
        match d.check("storage_seek") {
            Err(Error::Timeout { stage, budget_ms }) => {
                assert_eq!(stage, "storage_seek");
                assert_eq!(budget_ms, 0);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_passes() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.is_bounded());
        assert!(d.check("plan").is_ok());
        assert!(d.remaining().expect("bounded") > Duration::from_secs(3000));
        assert_eq!(d.budget_ms(), 3_600_000);
    }

    /// Deterministic replacement for the old sleep-based expiry test: the
    /// frozen clock removes the scheduler from the assertion entirely.
    #[test]
    fn expiry_is_observed_on_the_virtual_clock() {
        clock::freeze();
        let d = Deadline::within(Duration::from_millis(5));
        assert!(!d.expired());
        assert_eq!(d.remaining(), Some(Duration::from_millis(5)));
        clock::advance(Duration::from_millis(4));
        assert!(!d.expired());
        assert_eq!(d.remaining(), Some(Duration::from_millis(1)));
        clock::advance(Duration::from_millis(1));
        assert!(d.expired());
        assert!(d.check("aggregate").is_err());
        clock::thaw();
    }

    /// A frozen thread only affects deadlines it creates; wall-clock
    /// deadlines made before the freeze keep their behavior.
    #[test]
    fn freezing_does_not_disturb_wall_deadlines() {
        let wall = Deadline::within(Duration::from_secs(3600));
        clock::freeze();
        clock::advance(Duration::from_secs(7200));
        assert!(!wall.expired());
        clock::thaw();
        assert!(!wall.expired());
    }
}
