//! Deadline budgets for the online request path.
//!
//! A [`Deadline`] is a cheap, copyable "must finish by" marker threaded
//! through `execute_request` → window dispatch → storage seeks. Each stage
//! boundary calls [`Deadline::check`], converting budget exhaustion into a
//! typed [`Error::Timeout`] instead of letting a stalled stage hang the
//! caller. The default is unbounded, so existing call sites pay only an
//! `Option` test.

use std::time::{Duration, Instant};

use crate::error::{Error, Result};

/// A request's time budget. Copy-cheap; `Deadline::none()` never expires.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    /// Absolute expiry instant, or `None` for unbounded.
    at: Option<Instant>,
    /// The original budget in milliseconds, kept for error context.
    budget_ms: u64,
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

impl Deadline {
    /// An unbounded deadline: `check` always succeeds.
    pub const fn none() -> Self {
        Deadline {
            at: None,
            budget_ms: u64::MAX,
        }
    }

    /// A deadline expiring `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Deadline {
            at: Instant::now().checked_add(budget),
            budget_ms: budget.as_millis().min(u64::MAX as u128) as u64,
        }
    }

    /// Convenience constructor in milliseconds.
    pub fn within_ms(budget_ms: u64) -> Self {
        Deadline::within(Duration::from_millis(budget_ms))
    }

    /// True when the budget is exhausted.
    pub fn expired(&self) -> bool {
        match self.at {
            None => false,
            Some(at) => Instant::now() >= at,
        }
    }

    /// Time left before expiry; `None` means unbounded.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// The total budget in milliseconds (`u64::MAX` when unbounded).
    pub fn budget_ms(&self) -> u64 {
        self.budget_ms
    }

    /// Whether this deadline actually bounds the request.
    pub fn is_bounded(&self) -> bool {
        self.at.is_some()
    }

    /// Fail with [`Error::Timeout`] naming `stage` if the budget is spent.
    #[inline]
    pub fn check(&self, stage: &'static str) -> Result<()> {
        if self.expired() {
            Err(Error::Timeout {
                stage,
                budget_ms: self.budget_ms,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert!(!d.is_bounded());
        assert!(d.remaining().is_none());
        assert!(d.check("any").is_ok());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::within_ms(0);
        assert!(d.expired());
        match d.check("storage_seek") {
            Err(Error::Timeout { stage, budget_ms }) => {
                assert_eq!(stage, "storage_seek");
                assert_eq!(budget_ms, 0);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_passes() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.is_bounded());
        assert!(d.check("plan").is_ok());
        assert!(d.remaining().expect("bounded") > Duration::from_secs(3000));
        assert_eq!(d.budget_ms(), 3_600_000);
    }

    #[test]
    fn expiry_is_observed_after_sleep() {
        let d = Deadline::within(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(10));
        assert!(d.expired());
        assert!(d.check("aggregate").is_err());
    }
}
