//! Zero-overhead observability layer for the OpenMLDB reproduction.
//!
//! Three primitives, all lock-free on the record path:
//!
//! * [`Counter`] — monotonically increasing, sharded across cache-line-padded
//!   atomics so concurrent writers on different cores never contend.
//! * [`Gauge`] — an `f64` point-in-time value (memory watermarks, load ratios).
//! * [`Histogram`] — log-linear (HDR-style) latency histogram with mergeable
//!   per-thread shards and exact percentile extraction (see [`hist`]).
//!
//! Plus a request-scoped span tracer ([`trace`]) that decomposes a request
//! into pipeline stages (plan → cache lookup → window dispatch → storage seek
//! → aggregate → encode) with nanosecond timestamps, retained in a bounded
//! ring buffer.
//!
//! All metrics live in the process-wide [`Registry`] and are exposed through
//! [`Registry::render`] (Prometheus text format) and
//! [`Registry::render_json`]. There is deliberately no network listener —
//! exposition is a pure string API the embedding binary can serve however it
//! likes.
//!
//! # Naming convention
//!
//! Metric names must match `openmldb_<crate>_<name>_<unit>` where `<crate>`
//! is one of the instrumented crates (`online`, `core`, `storage`, `exec`,
//! `sql`, `bench`, `obs`, `chaos`) and `<unit>` is a unit suffix (`total`, `bytes`, `ns`,
//! `ms`, `seconds`, `ratio`, `rows`, `count`). [`validate_metric_name`]
//! enforces this at registration time and the `openmldb-analysis` lint
//! enforces it statically.
//!
//! # Feature gating
//!
//! The `obs-off` cargo feature compiles every record-path operation to an
//! inlined empty body. Registration and rendering keep working (values read
//! as zero) so instrumented call sites never need `cfg` gates of their own.

pub mod audit;
pub mod flight;
pub mod hist;
pub mod labels;
pub mod ops;
pub mod profile;
pub mod topk;
pub mod trace;

pub use audit::{DivergenceKind, DivergenceReport, Fnv, ScanDigest};
pub use flight::{
    FlightEvent, FlightEventKind, FlightScope, FlightSummary, Outcome, PostMortem, Recorder,
};
pub use hist::{Exemplar, Histogram, HistogramSnapshot};
pub use labels::{
    LabelId, LabelRegistry, LabeledCounter, LabeledHistogram, MAX_LABEL_SLOTS, OVERFLOW_LABEL,
};
pub use ops::{OpsHandler, OpsResponse, OpsServer};
pub use profile::{CostProfile, ProfileScope, ProfileStore};
pub use topk::{SpaceSaving, TopEntry};
pub use trace::{span, with_request_trace, SpanRecord, Stage, Trace, Tracer};

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of shards used by [`Counter`] and [`Histogram`]. Power of two.
pub const SHARDS: usize = 8;

/// One atomic on its own cache line, so shards never false-share.
#[cfg(not(feature = "obs-off"))]
#[repr(align(64))]
#[derive(Default)]
pub(crate) struct PaddedU64(pub(crate) AtomicU64);

/// Returns a stable per-thread shard index in `0..SHARDS`.
///
/// Threads are assigned round-robin on first use; the assignment is cached in
/// a thread-local so the hot path is a single TLS read.
#[cfg(not(feature = "obs-off"))]
#[inline]
pub(crate) fn shard_idx() -> usize {
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    IDX.with(|i| *i)
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing counter, sharded to avoid write contention.
///
/// `inc`/`add` touch exactly one relaxed atomic on the caller's home shard;
/// `value` sums all shards (read path only, may race with writers — fine for
/// statistics).
#[derive(Default)]
pub struct Counter {
    #[cfg(not(feature = "obs-off"))]
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "obs-off"))]
        self.shards[shard_idx()].0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = n;
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        #[cfg(not(feature = "obs-off"))]
        {
            self.shards
                .iter()
                .map(|s| s.0.load(Ordering::Relaxed))
                .sum()
        }
        #[cfg(feature = "obs-off")]
        0
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A point-in-time `f64` value stored as bits in a single atomic.
#[derive(Default)]
pub struct Gauge {
    #[cfg(not(feature = "obs-off"))]
    bits: AtomicU64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the gauge (last writer wins).
    #[inline]
    pub fn set(&self, v: f64) {
        #[cfg(not(feature = "obs-off"))]
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Raise the gauge to `v` if `v` is larger than the current value
    /// (high-watermark semantics).
    #[inline]
    pub fn set_max(&self, v: f64) {
        #[cfg(not(feature = "obs-off"))]
        {
            let mut cur = self.bits.load(Ordering::Relaxed);
            while v > f64::from_bits(cur) {
                match self.bits.compare_exchange_weak(
                    cur,
                    v.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        #[cfg(not(feature = "obs-off"))]
        {
            f64::from_bits(self.bits.load(Ordering::Relaxed))
        }
        #[cfg(feature = "obs-off")]
        0.0
    }
}

// ---------------------------------------------------------------------------
// Name validation
// ---------------------------------------------------------------------------

/// Crate segments accepted in metric names.
pub const METRIC_CRATES: &[&str] = &[
    "online", "core", "storage", "exec", "sql", "bench", "obs", "chaos",
];

/// Unit suffixes accepted in metric names.
pub const METRIC_UNITS: &[&str] = &[
    "total", "bytes", "ns", "ms", "seconds", "ratio", "rows", "count",
];

/// Label keys accepted in a metric's `{key="value",...}` suffix. A fixed
/// vocabulary — like crate segments and units — so dashboards can rely on
/// a closed key set and the cardinality registry stays the only way to
/// mint label values. Mirrored by the `openmldb-analysis` lint.
pub const METRIC_LABEL_KEYS: &[&str] = &["deployment", "worker", "key", "quantile", "stage"];

/// Checks a metric name against the `openmldb_<crate>_<name>_<unit>`
/// convention. A `{key="value",...}` label suffix is allowed when every
/// key is in [`METRIC_LABEL_KEYS`] and every value is double-quoted.
pub fn validate_metric_name(name: &str) -> bool {
    let base = name.split('{').next().unwrap_or(name);
    let Some(rest) = base.strip_prefix("openmldb_") else {
        return false;
    };
    let Some((crate_seg, tail)) = rest.split_once('_') else {
        return false;
    };
    if !METRIC_CRATES.contains(&crate_seg) {
        return false;
    }
    let Some((stem, unit)) = tail.rsplit_once('_') else {
        return false;
    };
    if stem.is_empty() || !METRIC_UNITS.contains(&unit) {
        return false;
    }
    if !base
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    {
        return false;
    }
    validate_label_suffix(&name[base.len()..])
}

/// Checks a `{key="value",...}` label suffix (empty = no labels, valid).
/// Keys must come from [`METRIC_LABEL_KEYS`]; values must be double-quoted
/// and must not contain `"` or `,` (the exposition formats never escape).
pub fn validate_label_suffix(suffix: &str) -> bool {
    if suffix.is_empty() {
        return true;
    }
    let Some(inner) = suffix.strip_prefix('{').and_then(|s| s.strip_suffix('}')) else {
        return false;
    };
    if inner.is_empty() {
        return false;
    }
    inner.split(',').all(|pair| {
        let Some((k, v)) = pair.split_once('=') else {
            return false;
        };
        METRIC_LABEL_KEYS.contains(&k)
            && v.len() >= 2
            && v.starts_with('"')
            && v.ends_with('"')
            && !v[1..v.len() - 1].contains('"')
    })
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Retained time-series samples per labeled metric (snapshot ticks).
pub const RING_SAMPLES: usize = 128;

enum LabeledMetric {
    Counter(Arc<LabeledCounter>),
    Histogram(Arc<LabeledHistogram>),
}

impl LabeledMetric {
    fn kind(&self) -> &'static str {
        match self {
            LabeledMetric::Counter(_) => "labeled_counter",
            LabeledMetric::Histogram(_) => "labeled_histogram",
        }
    }

    /// Per-slot instantaneous values: counter value, or histogram sample
    /// count (the rate-able quantity for trends).
    fn sample(&self) -> Box<[u64]> {
        let mut out = vec![0u64; MAX_LABEL_SLOTS].into_boxed_slice();
        match self {
            LabeledMetric::Counter(c) => {
                for (i, v) in c.per_slot() {
                    out[i] = v;
                }
            }
            LabeledMetric::Histogram(h) => {
                for (i, snap) in h.per_slot() {
                    out[i] = snap.count();
                }
            }
        }
        out
    }
}

struct LabeledEntry {
    help: String,
    metric: LabeledMetric,
    /// Per-tick snapshots of the per-slot totals, oldest first, bounded at
    /// [`RING_SAMPLES`] — the fixed-size time-series ring `obs_report`
    /// turns into rates/trends.
    ring: VecDeque<Box<[u64]>>,
}

/// Process-wide metric registry.
///
/// Handles are registered lazily via [`Registry::counter`] /
/// [`Registry::gauge`] / [`Registry::histogram`]; repeated calls with the
/// same name return the same underlying metric. Call sites are expected to
/// cache the returned `Arc` (e.g. in a `OnceLock`) so the registry lock is
/// never on a hot path.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, (String, Metric)>>,
    labeled: Mutex<BTreeMap<String, LabeledEntry>>,
    ticks: AtomicU64,
}

fn registry_lock(
    m: &Mutex<BTreeMap<String, (String, Metric)>>,
) -> std::sync::MutexGuard<'_, BTreeMap<String, (String, Metric)>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn labeled_lock(
    m: &Mutex<BTreeMap<String, LabeledEntry>>,
) -> std::sync::MutexGuard<'_, BTreeMap<String, LabeledEntry>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry all engine crates record into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get or register a counter. Panics if `name` violates the naming
    /// convention or is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        assert!(
            validate_metric_name(name),
            "invalid metric name {name:?}: expected openmldb_<crate>_<name>_<unit>"
        );
        let mut map = registry_lock(&self.metrics);
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::Counter(Arc::new(Counter::new()))));
        match &entry.1 {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Get or register a gauge. Panics on invalid name or kind mismatch.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        assert!(
            validate_metric_name(name),
            "invalid metric name {name:?}: expected openmldb_<crate>_<name>_<unit>"
        );
        let mut map = registry_lock(&self.metrics);
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::Gauge(Arc::new(Gauge::new()))));
        match &entry.1 {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Get or register a histogram. Panics on invalid name or kind mismatch.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        assert!(
            validate_metric_name(name),
            "invalid metric name {name:?}: expected openmldb_<crate>_<name>_<unit>"
        );
        let mut map = registry_lock(&self.metrics);
        let entry = map.entry(name.to_string()).or_insert_with(|| {
            (
                help.to_string(),
                Metric::Histogram(Arc::new(Histogram::new())),
            )
        });
        match &entry.1 {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Get or register a labeled (per-deployment) counter. `name` is the
    /// bare series name — the `{deployment="..."}` suffix is appended at
    /// render time from the process-wide label registry. Panics on an
    /// invalid name, an explicit label suffix, or a kind mismatch.
    pub fn labeled_counter(&self, name: &str, help: &str) -> Arc<LabeledCounter> {
        assert!(
            validate_metric_name(name) && !name.contains('{'),
            "invalid labeled metric name {name:?}: expected a bare openmldb_<crate>_<name>_<unit>"
        );
        let mut map = labeled_lock(&self.labeled);
        let entry = map.entry(name.to_string()).or_insert_with(|| LabeledEntry {
            help: help.to_string(),
            metric: LabeledMetric::Counter(Arc::new(LabeledCounter::new())),
            ring: VecDeque::new(),
        });
        match &entry.metric {
            LabeledMetric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Get or register a labeled (per-deployment) histogram. Same rules as
    /// [`Registry::labeled_counter`].
    pub fn labeled_histogram(&self, name: &str, help: &str) -> Arc<LabeledHistogram> {
        assert!(
            validate_metric_name(name) && !name.contains('{'),
            "invalid labeled metric name {name:?}: expected a bare openmldb_<crate>_<name>_<unit>"
        );
        let mut map = labeled_lock(&self.labeled);
        let entry = map.entry(name.to_string()).or_insert_with(|| LabeledEntry {
            help: help.to_string(),
            metric: LabeledMetric::Histogram(Arc::new(LabeledHistogram::new())),
            ring: VecDeque::new(),
        });
        match &entry.metric {
            LabeledMetric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Take one snapshot tick: sample every labeled metric's per-slot
    /// totals into its bounded time-series ring. Call on a periodic
    /// scrape/report cadence (cold path — locks the labeled map).
    pub fn tick(&self) {
        let mut map = labeled_lock(&self.labeled);
        for entry in map.values_mut() {
            let sample = entry.metric.sample();
            if entry.ring.len() == RING_SAMPLES {
                entry.ring.pop_front();
            }
            entry.ring.push_back(sample);
        }
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// The labeled metric's ring samples as totals across all slots,
    /// oldest first (at most [`RING_SAMPLES`] entries).
    pub fn trend(&self, name: &str) -> Vec<u64> {
        labeled_lock(&self.labeled)
            .get(name)
            .map(|e| e.ring.iter().map(|s| s.iter().sum()).collect())
            .unwrap_or_default()
    }

    /// The labeled metric's ring samples for one label value, oldest first.
    /// Empty when the metric or the label is unknown.
    pub fn trend_for(&self, name: &str, label: &str) -> Vec<u64> {
        let Some(id) = LabelRegistry::deployments().lookup(label) else {
            return Vec::new();
        };
        labeled_lock(&self.labeled)
            .get(name)
            .map(|e| e.ring.iter().map(|s| s[id.index()]).collect())
            .unwrap_or_default()
    }

    /// Current `(label value, value)` series of a labeled metric (counter
    /// value or histogram count), label names resolved against the
    /// process-wide deployment registry.
    pub fn labeled_series(&self, name: &str) -> Vec<(String, u64)> {
        let map = labeled_lock(&self.labeled);
        let Some(entry) = map.get(name) else {
            return Vec::new();
        };
        let reg = LabelRegistry::deployments();
        let slots: Vec<(usize, u64)> = match &entry.metric {
            LabeledMetric::Counter(c) => c.per_slot(),
            LabeledMetric::Histogram(h) => h
                .per_slot()
                .into_iter()
                .map(|(i, s)| (i, s.count()))
                .collect(),
        };
        slots
            .into_iter()
            .map(|(i, v)| (reg.name_of(LabelId::from_index(i)), v))
            .collect()
    }

    /// Names of all registered labeled metrics (sorted).
    pub fn labeled_metric_names(&self) -> Vec<String> {
        labeled_lock(&self.labeled).keys().cloned().collect()
    }

    /// Names of all registered metrics (sorted).
    pub fn metric_names(&self) -> Vec<String> {
        registry_lock(&self.metrics).keys().cloned().collect()
    }

    /// Prometheus text exposition.
    ///
    /// Histograms are rendered in summary style (`{quantile="..."}` series
    /// plus `_sum`/`_count`) because percentiles are extracted exactly from
    /// the log-linear buckets rather than re-estimated by the scraper.
    /// Counters are always exposed under a `_total`-suffixed name (appended
    /// when the registered name ends in a different unit), and HELP text is
    /// escaped (`\` → `\\`, newline → `\n`) so multi-line help cannot
    /// corrupt the line-oriented format.
    pub fn render(&self) -> String {
        let map = registry_lock(&self.metrics);
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, (help, metric)) in map.iter() {
            let raw_base = name.split('{').next().unwrap_or(name);
            let labels = &name[raw_base.len()..];
            let base = match metric {
                Metric::Counter(_) if !raw_base.ends_with("_total") => {
                    format!("{raw_base}_total")
                }
                _ => raw_base.to_string(),
            };
            if base != last_base {
                if !help.is_empty() {
                    out.push_str(&format!("# HELP {base} {}\n", escape_help(help)));
                }
                let ptype = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "summary",
                };
                out.push_str(&format!("# TYPE {base} {ptype}\n"));
                last_base = base.clone();
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{base}{labels} {}\n", c.value())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.value())),
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    for (q, label) in [
                        (0.50, "0.5"),
                        (0.90, "0.9"),
                        (0.99, "0.99"),
                        (0.999, "0.999"),
                    ] {
                        out.push_str(&format!(
                            "{base}{{quantile=\"{label}\"}} {}\n",
                            snap.percentile(q)
                        ));
                    }
                    out.push_str(&format!("{base}_sum {}\n", snap.sum()));
                    out.push_str(&format!("{base}_count {}\n", snap.count()));
                }
            }
        }
        // Labeled (per-deployment) series: one sample line per occupied
        // slot, label names resolved through the deployment registry.
        let labeled = labeled_lock(&self.labeled);
        let reg = LabelRegistry::deployments();
        for (name, entry) in labeled.iter() {
            match &entry.metric {
                LabeledMetric::Counter(c) => {
                    let base = if name.ends_with("_total") {
                        name.clone()
                    } else {
                        format!("{name}_total")
                    };
                    if !entry.help.is_empty() {
                        out.push_str(&format!("# HELP {base} {}\n", escape_help(&entry.help)));
                    }
                    out.push_str(&format!("# TYPE {base} counter\n"));
                    for (i, v) in c.per_slot() {
                        let label = escape_label_value(&reg.name_of(LabelId::from_index(i)));
                        out.push_str(&format!("{base}{{deployment=\"{label}\"}} {v}\n"));
                    }
                }
                LabeledMetric::Histogram(h) => {
                    if !entry.help.is_empty() {
                        out.push_str(&format!("# HELP {name} {}\n", escape_help(&entry.help)));
                    }
                    out.push_str(&format!("# TYPE {name} summary\n"));
                    for (i, snap) in h.per_slot() {
                        let label = escape_label_value(&reg.name_of(LabelId::from_index(i)));
                        for (q, qlabel) in [(0.50, "0.5"), (0.99, "0.99")] {
                            out.push_str(&format!(
                                "{name}{{deployment=\"{label}\",quantile=\"{qlabel}\"}} {}\n",
                                snap.percentile(q)
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_sum{{deployment=\"{label}\"}} {}\n",
                            snap.sum()
                        ));
                        out.push_str(&format!(
                            "{name}_count{{deployment=\"{label}\"}} {}\n",
                            snap.count()
                        ));
                    }
                }
            }
        }
        out
    }

    /// JSON exposition: `{"metrics":[...]}` with one object per metric.
    pub fn render_json(&self) -> String {
        let map = registry_lock(&self.metrics);
        let mut items = Vec::with_capacity(map.len());
        for (name, (_, metric)) in map.iter() {
            let item = match metric {
                Metric::Counter(c) => {
                    format!(
                        "{{\"name\":\"{name}\",\"kind\":\"counter\",\"value\":{}}}",
                        c.value()
                    )
                }
                Metric::Gauge(g) => {
                    let v = g.value();
                    let v = if v.is_finite() { v } else { 0.0 };
                    format!("{{\"name\":\"{name}\",\"kind\":\"gauge\",\"value\":{v}}}")
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    format!(
                        "{{\"name\":\"{name}\",\"kind\":\"histogram\",\"count\":{},\"sum\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                        s.count(),
                        s.sum(),
                        s.percentile(0.50),
                        s.percentile(0.90),
                        s.percentile(0.99),
                        s.percentile(0.999),
                    )
                }
            };
            items.push(item);
        }
        let labeled = labeled_lock(&self.labeled);
        let reg = LabelRegistry::deployments();
        for (name, entry) in labeled.iter() {
            let series: Vec<String> = match &entry.metric {
                LabeledMetric::Counter(c) => c
                    .per_slot()
                    .into_iter()
                    .map(|(i, v)| {
                        format!(
                            "{{\"deployment\":\"{}\",\"value\":{v}}}",
                            escape_json_string(&reg.name_of(LabelId::from_index(i)))
                        )
                    })
                    .collect(),
                LabeledMetric::Histogram(h) => h
                    .per_slot()
                    .into_iter()
                    .map(|(i, s)| {
                        format!(
                            "{{\"deployment\":\"{}\",\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{}}}",
                            escape_json_string(&reg.name_of(LabelId::from_index(i))),
                            s.count(),
                            s.sum(),
                            s.percentile(0.50),
                            s.percentile(0.99),
                        )
                    })
                    .collect(),
            };
            items.push(format!(
                "{{\"name\":\"{name}\",\"kind\":\"{}\",\"series\":[{}]}}",
                entry.metric.kind(),
                series.join(","),
            ));
        }
        format!("{{\"metrics\":[{}]}}", items.join(","))
    }

    /// Post-mortems retained in the slow-query flight-recorder log, oldest
    /// first. Like the metric surface itself, the log is process-wide, so
    /// this delegates to [`flight::slow_log`].
    pub fn slow_queries(&self) -> Vec<flight::PostMortem> {
        flight::slow_log()
    }

    /// Render the slow-query log as a post-mortem report (text or JSON) —
    /// the surface the `obs_report` tool prints.
    pub fn render_slow_query_report(&self, json: bool) -> String {
        flight::render_report(json)
    }
}

/// Escape HELP text for the Prometheus exposition format: a raw backslash
/// or newline in help would otherwise corrupt the line-oriented output.
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a dynamic label *value* for the Prometheus exposition format
/// (`\` → `\\`, `"` → `\"`, newline → `\n`). Registered metric names are
/// validated up front, but deployment names flow in from user SQL and may
/// contain any of the three characters that would corrupt a quoted value.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Unescape a Prometheus label value (inverse of [`escape_label_value`]) —
/// used by the round-trip tests and by scrapers of the text format.
pub fn unescape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Escape a string for embedding in a JSON double-quoted literal. Covers
/// the same hostile deployment names as [`escape_label_value`] plus the
/// control characters JSON forbids raw.
pub fn escape_json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            other => out.push(other),
        }
    }
    out
}

/// Whether recording is compiled in (i.e. the `obs-off` feature is absent).
pub const fn enabled() -> bool {
    cfg!(not(feature = "obs-off"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shards_sum() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        if enabled() {
            assert_eq!(c.value(), 42);
        } else {
            assert_eq!(c.value(), 0);
        }
    }

    #[test]
    fn counter_concurrent_increments_are_not_lost() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        if enabled() {
            assert_eq!(c.value(), 40_000);
        }
    }

    #[test]
    fn gauge_set_and_max() {
        let g = Gauge::new();
        g.set(3.5);
        g.set_max(2.0);
        if enabled() {
            assert_eq!(g.value(), 3.5);
            g.set_max(7.25);
            assert_eq!(g.value(), 7.25);
        } else {
            assert_eq!(g.value(), 0.0);
        }
    }

    #[test]
    fn metric_name_validation() {
        assert!(validate_metric_name("openmldb_online_requests_total"));
        assert!(validate_metric_name("openmldb_storage_scan_len_rows"));
        assert!(validate_metric_name("openmldb_core_memory_used_bytes"));
        assert!(validate_metric_name(
            "openmldb_online_union_worker_load_rows{worker=\"3\"}"
        ));
        // wrong prefix / crate / unit / casing
        assert!(!validate_metric_name("requests_total"));
        assert!(!validate_metric_name("openmldb_nosuch_requests_total"));
        assert!(!validate_metric_name("openmldb_online_requests"));
        assert!(!validate_metric_name("openmldb_online_requests_furlongs"));
        assert!(!validate_metric_name("openmldb_online_Requests_total"));
        assert!(!validate_metric_name("openmldb_online__total"));
    }

    #[test]
    fn registry_roundtrip_and_render() {
        let r = Registry::new();
        let c = r.counter("openmldb_online_requests_total", "requests served");
        c.add(5);
        let g = r.gauge("openmldb_core_memory_used_bytes", "resident bytes");
        g.set(1024.0);
        let h = r.histogram("openmldb_online_request_duration_ns", "request latency");
        h.record(1000);
        h.record(2000);

        // same-name lookup returns the same metric
        let c2 = r.counter("openmldb_online_requests_total", "");
        c2.inc();
        if enabled() {
            assert_eq!(c.value(), 6);
        }

        let text = r.render();
        assert!(text.contains("# TYPE openmldb_online_requests_total counter"));
        assert!(text.contains("# TYPE openmldb_core_memory_used_bytes gauge"));
        assert!(text.contains("# TYPE openmldb_online_request_duration_ns summary"));
        assert!(text.contains("openmldb_online_request_duration_ns_count"));

        let json = r.render_json();
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.contains("\"kind\":\"histogram\""));
        assert_eq!(r.metric_names().len(), 3);
    }

    #[test]
    fn render_escapes_help_text() {
        let r = Registry::new();
        r.counter(
            "openmldb_online_requests_total",
            "line one\nline two with back\\slash",
        );
        let text = r.render();
        assert!(text.contains(
            "# HELP openmldb_online_requests_total line one\\nline two with back\\\\slash\n"
        ));
        assert!(
            !text.contains("\nline two"),
            "raw newline leaked into exposition: {text:?}"
        );
    }

    #[test]
    fn render_suffixes_counters_with_total() {
        let r = Registry::new();
        r.counter("openmldb_storage_scanned_rows", "rows visited by scans")
            .add(3);
        r.counter(
            "openmldb_online_union_tuples_rows{worker=\"1\"}",
            "tuples per worker",
        )
        .add(2);
        let text = r.render();
        assert!(text.contains("# TYPE openmldb_storage_scanned_rows_total counter"));
        assert!(text.contains("# TYPE openmldb_online_union_tuples_rows_total counter"));
        if enabled() {
            assert!(text.contains("openmldb_storage_scanned_rows_total 3"));
            assert!(text.contains("openmldb_online_union_tuples_rows_total{worker=\"1\"} 2"));
        }
        // the registered (unsuffixed) series name must not appear as a sample
        assert!(!text
            .lines()
            .any(|l| l.starts_with("openmldb_storage_scanned_rows ")));
        // already-_total names are not double-suffixed
        let r2 = Registry::new();
        r2.counter("openmldb_online_requests_total", "");
        assert!(!r2.render().contains("requests_total_total"));
    }

    #[test]
    fn registry_exposes_slow_query_log() {
        let text = Registry::global().render_slow_query_report(false);
        assert!(text.starts_with("slow-query log:"));
        let json = Registry::global().render_slow_query_report(true);
        assert!(json.starts_with("{\"published_total\":"));
        let _ = Registry::global().slow_queries();
    }

    #[test]
    fn registry_labeled_series_share_type_line() {
        let r = Registry::new();
        r.gauge(
            "openmldb_online_union_worker_load_rows{worker=\"0\"}",
            "load",
        )
        .set(10.0);
        r.gauge(
            "openmldb_online_union_worker_load_rows{worker=\"1\"}",
            "load",
        )
        .set(30.0);
        let text = r.render();
        let type_lines = text
            .lines()
            .filter(|l| l.starts_with("# TYPE openmldb_online_union_worker_load_rows"))
            .count();
        assert_eq!(type_lines, 1);
    }

    #[test]
    fn label_suffix_validation() {
        // known keys, quoted values: fine
        assert!(validate_metric_name(
            "openmldb_online_deployment_requests_total{deployment=\"fraud_v2\"}"
        ));
        assert!(validate_metric_name(
            "openmldb_online_x_total{deployment=\"a\",quantile=\"0.5\"}"
        ));
        // unknown key, unquoted value, malformed suffix: rejected
        assert!(!validate_metric_name(
            "openmldb_online_requests_total{tenant=\"x\"}"
        ));
        assert!(!validate_metric_name(
            "openmldb_online_requests_total{deployment=x}"
        ));
        assert!(!validate_metric_name("openmldb_online_requests_total{}"));
        assert!(!validate_metric_name("openmldb_online_requests_total{"));
        assert!(!validate_metric_name(
            "openmldb_online_requests_total{deployment=\"a\"b\"}"
        ));
    }

    #[test]
    fn registry_labeled_metrics_render_and_tick() {
        let r = Registry::new();
        let c = r.labeled_counter(
            "openmldb_online_deployment_requests_total",
            "per-dep requests",
        );
        let h = r.labeled_histogram("openmldb_online_deployment_duration_ns", "per-dep latency");
        let id = LabelRegistry::deployments().resolve("libtest_dep");
        c.add(id, 7);
        h.record(id, 1_000);

        // same-name lookup returns the same metric; kind mismatch panics
        let c2 = r.labeled_counter("openmldb_online_deployment_requests_total", "");
        c2.inc(id);
        if enabled() {
            assert_eq!(c.value(id), 8);
        }

        let text = r.render();
        assert!(text.contains("# TYPE openmldb_online_deployment_requests_total counter"));
        if enabled() {
            assert!(text.contains(
                "openmldb_online_deployment_requests_total{deployment=\"libtest_dep\"} 8"
            ));
            assert!(text.contains(
                "openmldb_online_deployment_duration_ns_count{deployment=\"libtest_dep\"} 1"
            ));
        }
        let json = r.render_json();
        assert!(json.contains("\"kind\":\"labeled_counter\""));

        // ticks fill the bounded trend ring
        for _ in 0..(RING_SAMPLES + 5) {
            r.tick();
        }
        assert_eq!(r.ticks(), (RING_SAMPLES + 5) as u64);
        let trend = r.trend("openmldb_online_deployment_requests_total");
        assert_eq!(trend.len(), RING_SAMPLES, "ring is bounded");
        if enabled() {
            assert_eq!(*trend.last().unwrap(), 8);
            let per = r.trend_for("openmldb_online_deployment_requests_total", "libtest_dep");
            assert_eq!(*per.last().unwrap(), 8);
            let series = r.labeled_series("openmldb_online_deployment_requests_total");
            assert!(series.iter().any(|(l, v)| l == "libtest_dep" && *v == 8));
        }
        assert_eq!(
            r.labeled_metric_names(),
            vec![
                "openmldb_online_deployment_duration_ns".to_string(),
                "openmldb_online_deployment_requests_total".to_string(),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "invalid labeled metric name")]
    fn registry_rejects_labeled_name_with_suffix() {
        Registry::new().labeled_counter("openmldb_online_x_total{deployment=\"a\"}", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn registry_rejects_bad_name() {
        Registry::new().counter("bad_name", "");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        r.counter("openmldb_online_requests_total", "");
        r.gauge("openmldb_online_requests_total", "");
    }

    #[test]
    fn label_value_escaping_round_trips() {
        let hostile = "evil\"dep\\one\nline";
        let escaped = escape_label_value(hostile);
        assert!(!escaped.contains('\n'));
        assert_eq!(unescape_label_value(&escaped), hostile);
        // Plain names pass through untouched.
        assert_eq!(escape_label_value("f_short"), "f_short");
        assert_eq!(unescape_label_value("f_short"), "f_short");
    }

    #[test]
    fn render_escapes_hostile_deployment_names() {
        let hostile = "bad\"name\\with\nnewline";
        let id = LabelRegistry::deployments().resolve(hostile);
        let r = Registry::new();
        r.labeled_counter("openmldb_online_deployment_requests_total", "req")
            .inc(id);
        r.labeled_histogram("openmldb_online_deployment_duration_ns", "lat")
            .record(id, 100);
        let text = r.render();
        if !enabled() {
            return;
        }
        // Every exposition line must stay one line, and the quoted label
        // value must unescape back to the original deployment name.
        let mut seen = 0;
        for line in text.lines() {
            let Some(start) = line.find("deployment=\"") else {
                continue;
            };
            let rest = &line[start + "deployment=\"".len()..];
            // Find the closing unescaped quote.
            let mut end = None;
            let bytes = rest.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        end = Some(i);
                        break;
                    }
                    _ => i += 1,
                }
            }
            let value = &rest[..end.expect("unterminated label value")];
            if unescape_label_value(value) == hostile {
                seen += 1;
            }
        }
        assert!(seen >= 2, "expected escaped series lines, got:\n{text}");

        // The JSON render must stay parseable too: the raw quote and
        // newline never appear unescaped inside the document.
        let json = r.render_json();
        assert!(json.contains(&escape_json_string(hostile)), "{json}");
        assert!(!json.contains('\n'), "raw newline leaked into JSON");
    }
}
