//! Zero-overhead observability layer for the OpenMLDB reproduction.
//!
//! Three primitives, all lock-free on the record path:
//!
//! * [`Counter`] — monotonically increasing, sharded across cache-line-padded
//!   atomics so concurrent writers on different cores never contend.
//! * [`Gauge`] — an `f64` point-in-time value (memory watermarks, load ratios).
//! * [`Histogram`] — log-linear (HDR-style) latency histogram with mergeable
//!   per-thread shards and exact percentile extraction (see [`hist`]).
//!
//! Plus a request-scoped span tracer ([`trace`]) that decomposes a request
//! into pipeline stages (plan → cache lookup → window dispatch → storage seek
//! → aggregate → encode) with nanosecond timestamps, retained in a bounded
//! ring buffer.
//!
//! All metrics live in the process-wide [`Registry`] and are exposed through
//! [`Registry::render`] (Prometheus text format) and
//! [`Registry::render_json`]. There is deliberately no network listener —
//! exposition is a pure string API the embedding binary can serve however it
//! likes.
//!
//! # Naming convention
//!
//! Metric names must match `openmldb_<crate>_<name>_<unit>` where `<crate>`
//! is one of the instrumented crates (`online`, `core`, `storage`, `exec`,
//! `sql`, `bench`, `obs`, `chaos`) and `<unit>` is a unit suffix (`total`, `bytes`, `ns`,
//! `ms`, `seconds`, `ratio`, `rows`, `count`). [`validate_metric_name`]
//! enforces this at registration time and the `openmldb-analysis` lint
//! enforces it statically.
//!
//! # Feature gating
//!
//! The `obs-off` cargo feature compiles every record-path operation to an
//! inlined empty body. Registration and rendering keep working (values read
//! as zero) so instrumented call sites never need `cfg` gates of their own.

pub mod flight;
pub mod hist;
pub mod trace;

pub use flight::{
    FlightEvent, FlightEventKind, FlightScope, FlightSummary, Outcome, PostMortem, Recorder,
};
pub use hist::{Exemplar, Histogram, HistogramSnapshot};
pub use trace::{span, with_request_trace, SpanRecord, Stage, Trace, Tracer};

use std::collections::BTreeMap;
#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of shards used by [`Counter`] and [`Histogram`]. Power of two.
pub const SHARDS: usize = 8;

/// One atomic on its own cache line, so shards never false-share.
#[cfg(not(feature = "obs-off"))]
#[repr(align(64))]
#[derive(Default)]
pub(crate) struct PaddedU64(pub(crate) AtomicU64);

/// Returns a stable per-thread shard index in `0..SHARDS`.
///
/// Threads are assigned round-robin on first use; the assignment is cached in
/// a thread-local so the hot path is a single TLS read.
#[cfg(not(feature = "obs-off"))]
#[inline]
pub(crate) fn shard_idx() -> usize {
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    IDX.with(|i| *i)
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing counter, sharded to avoid write contention.
///
/// `inc`/`add` touch exactly one relaxed atomic on the caller's home shard;
/// `value` sums all shards (read path only, may race with writers — fine for
/// statistics).
#[derive(Default)]
pub struct Counter {
    #[cfg(not(feature = "obs-off"))]
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "obs-off"))]
        self.shards[shard_idx()].0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = n;
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        #[cfg(not(feature = "obs-off"))]
        {
            self.shards
                .iter()
                .map(|s| s.0.load(Ordering::Relaxed))
                .sum()
        }
        #[cfg(feature = "obs-off")]
        0
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A point-in-time `f64` value stored as bits in a single atomic.
#[derive(Default)]
pub struct Gauge {
    #[cfg(not(feature = "obs-off"))]
    bits: AtomicU64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the gauge (last writer wins).
    #[inline]
    pub fn set(&self, v: f64) {
        #[cfg(not(feature = "obs-off"))]
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Raise the gauge to `v` if `v` is larger than the current value
    /// (high-watermark semantics).
    #[inline]
    pub fn set_max(&self, v: f64) {
        #[cfg(not(feature = "obs-off"))]
        {
            let mut cur = self.bits.load(Ordering::Relaxed);
            while v > f64::from_bits(cur) {
                match self.bits.compare_exchange_weak(
                    cur,
                    v.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        #[cfg(not(feature = "obs-off"))]
        {
            f64::from_bits(self.bits.load(Ordering::Relaxed))
        }
        #[cfg(feature = "obs-off")]
        0.0
    }
}

// ---------------------------------------------------------------------------
// Name validation
// ---------------------------------------------------------------------------

/// Crate segments accepted in metric names.
pub const METRIC_CRATES: &[&str] = &[
    "online", "core", "storage", "exec", "sql", "bench", "obs", "chaos",
];

/// Unit suffixes accepted in metric names.
pub const METRIC_UNITS: &[&str] = &[
    "total", "bytes", "ns", "ms", "seconds", "ratio", "rows", "count",
];

/// Checks a metric name against the `openmldb_<crate>_<name>_<unit>`
/// convention. A `{key="value",...}` label suffix is allowed and ignored.
pub fn validate_metric_name(name: &str) -> bool {
    let base = name.split('{').next().unwrap_or(name);
    let Some(rest) = base.strip_prefix("openmldb_") else {
        return false;
    };
    let Some((crate_seg, tail)) = rest.split_once('_') else {
        return false;
    };
    if !METRIC_CRATES.contains(&crate_seg) {
        return false;
    }
    let Some((stem, unit)) = tail.rsplit_once('_') else {
        return false;
    };
    if stem.is_empty() || !METRIC_UNITS.contains(&unit) {
        return false;
    }
    base.chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Process-wide metric registry.
///
/// Handles are registered lazily via [`Registry::counter`] /
/// [`Registry::gauge`] / [`Registry::histogram`]; repeated calls with the
/// same name return the same underlying metric. Call sites are expected to
/// cache the returned `Arc` (e.g. in a `OnceLock`) so the registry lock is
/// never on a hot path.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, (String, Metric)>>,
}

fn registry_lock(
    m: &Mutex<BTreeMap<String, (String, Metric)>>,
) -> std::sync::MutexGuard<'_, BTreeMap<String, (String, Metric)>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry all engine crates record into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get or register a counter. Panics if `name` violates the naming
    /// convention or is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        assert!(
            validate_metric_name(name),
            "invalid metric name {name:?}: expected openmldb_<crate>_<name>_<unit>"
        );
        let mut map = registry_lock(&self.metrics);
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::Counter(Arc::new(Counter::new()))));
        match &entry.1 {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Get or register a gauge. Panics on invalid name or kind mismatch.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        assert!(
            validate_metric_name(name),
            "invalid metric name {name:?}: expected openmldb_<crate>_<name>_<unit>"
        );
        let mut map = registry_lock(&self.metrics);
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::Gauge(Arc::new(Gauge::new()))));
        match &entry.1 {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Get or register a histogram. Panics on invalid name or kind mismatch.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        assert!(
            validate_metric_name(name),
            "invalid metric name {name:?}: expected openmldb_<crate>_<name>_<unit>"
        );
        let mut map = registry_lock(&self.metrics);
        let entry = map.entry(name.to_string()).or_insert_with(|| {
            (
                help.to_string(),
                Metric::Histogram(Arc::new(Histogram::new())),
            )
        });
        match &entry.1 {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Names of all registered metrics (sorted).
    pub fn metric_names(&self) -> Vec<String> {
        registry_lock(&self.metrics).keys().cloned().collect()
    }

    /// Prometheus text exposition.
    ///
    /// Histograms are rendered in summary style (`{quantile="..."}` series
    /// plus `_sum`/`_count`) because percentiles are extracted exactly from
    /// the log-linear buckets rather than re-estimated by the scraper.
    /// Counters are always exposed under a `_total`-suffixed name (appended
    /// when the registered name ends in a different unit), and HELP text is
    /// escaped (`\` → `\\`, newline → `\n`) so multi-line help cannot
    /// corrupt the line-oriented format.
    pub fn render(&self) -> String {
        let map = registry_lock(&self.metrics);
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, (help, metric)) in map.iter() {
            let raw_base = name.split('{').next().unwrap_or(name);
            let labels = &name[raw_base.len()..];
            let base = match metric {
                Metric::Counter(_) if !raw_base.ends_with("_total") => {
                    format!("{raw_base}_total")
                }
                _ => raw_base.to_string(),
            };
            if base != last_base {
                if !help.is_empty() {
                    out.push_str(&format!("# HELP {base} {}\n", escape_help(help)));
                }
                let ptype = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "summary",
                };
                out.push_str(&format!("# TYPE {base} {ptype}\n"));
                last_base = base.clone();
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{base}{labels} {}\n", c.value())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.value())),
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    for (q, label) in [
                        (0.50, "0.5"),
                        (0.90, "0.9"),
                        (0.99, "0.99"),
                        (0.999, "0.999"),
                    ] {
                        out.push_str(&format!(
                            "{base}{{quantile=\"{label}\"}} {}\n",
                            snap.percentile(q)
                        ));
                    }
                    out.push_str(&format!("{base}_sum {}\n", snap.sum()));
                    out.push_str(&format!("{base}_count {}\n", snap.count()));
                }
            }
        }
        out
    }

    /// JSON exposition: `{"metrics":[...]}` with one object per metric.
    pub fn render_json(&self) -> String {
        let map = registry_lock(&self.metrics);
        let mut items = Vec::with_capacity(map.len());
        for (name, (_, metric)) in map.iter() {
            let item = match metric {
                Metric::Counter(c) => {
                    format!(
                        "{{\"name\":\"{name}\",\"kind\":\"counter\",\"value\":{}}}",
                        c.value()
                    )
                }
                Metric::Gauge(g) => {
                    let v = g.value();
                    let v = if v.is_finite() { v } else { 0.0 };
                    format!("{{\"name\":\"{name}\",\"kind\":\"gauge\",\"value\":{v}}}")
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    format!(
                        "{{\"name\":\"{name}\",\"kind\":\"histogram\",\"count\":{},\"sum\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                        s.count(),
                        s.sum(),
                        s.percentile(0.50),
                        s.percentile(0.90),
                        s.percentile(0.99),
                        s.percentile(0.999),
                    )
                }
            };
            items.push(item);
        }
        format!("{{\"metrics\":[{}]}}", items.join(","))
    }

    /// Post-mortems retained in the slow-query flight-recorder log, oldest
    /// first. Like the metric surface itself, the log is process-wide, so
    /// this delegates to [`flight::slow_log`].
    pub fn slow_queries(&self) -> Vec<flight::PostMortem> {
        flight::slow_log()
    }

    /// Render the slow-query log as a post-mortem report (text or JSON) —
    /// the surface the `obs_report` tool prints.
    pub fn render_slow_query_report(&self, json: bool) -> String {
        flight::render_report(json)
    }
}

/// Escape HELP text for the Prometheus exposition format: a raw backslash
/// or newline in help would otherwise corrupt the line-oriented output.
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Whether recording is compiled in (i.e. the `obs-off` feature is absent).
pub const fn enabled() -> bool {
    cfg!(not(feature = "obs-off"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shards_sum() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        if enabled() {
            assert_eq!(c.value(), 42);
        } else {
            assert_eq!(c.value(), 0);
        }
    }

    #[test]
    fn counter_concurrent_increments_are_not_lost() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        if enabled() {
            assert_eq!(c.value(), 40_000);
        }
    }

    #[test]
    fn gauge_set_and_max() {
        let g = Gauge::new();
        g.set(3.5);
        g.set_max(2.0);
        if enabled() {
            assert_eq!(g.value(), 3.5);
            g.set_max(7.25);
            assert_eq!(g.value(), 7.25);
        } else {
            assert_eq!(g.value(), 0.0);
        }
    }

    #[test]
    fn metric_name_validation() {
        assert!(validate_metric_name("openmldb_online_requests_total"));
        assert!(validate_metric_name("openmldb_storage_scan_len_rows"));
        assert!(validate_metric_name("openmldb_core_memory_used_bytes"));
        assert!(validate_metric_name(
            "openmldb_online_union_worker_load_rows{worker=\"3\"}"
        ));
        // wrong prefix / crate / unit / casing
        assert!(!validate_metric_name("requests_total"));
        assert!(!validate_metric_name("openmldb_nosuch_requests_total"));
        assert!(!validate_metric_name("openmldb_online_requests"));
        assert!(!validate_metric_name("openmldb_online_requests_furlongs"));
        assert!(!validate_metric_name("openmldb_online_Requests_total"));
        assert!(!validate_metric_name("openmldb_online__total"));
    }

    #[test]
    fn registry_roundtrip_and_render() {
        let r = Registry::new();
        let c = r.counter("openmldb_online_requests_total", "requests served");
        c.add(5);
        let g = r.gauge("openmldb_core_memory_used_bytes", "resident bytes");
        g.set(1024.0);
        let h = r.histogram("openmldb_online_request_duration_ns", "request latency");
        h.record(1000);
        h.record(2000);

        // same-name lookup returns the same metric
        let c2 = r.counter("openmldb_online_requests_total", "");
        c2.inc();
        if enabled() {
            assert_eq!(c.value(), 6);
        }

        let text = r.render();
        assert!(text.contains("# TYPE openmldb_online_requests_total counter"));
        assert!(text.contains("# TYPE openmldb_core_memory_used_bytes gauge"));
        assert!(text.contains("# TYPE openmldb_online_request_duration_ns summary"));
        assert!(text.contains("openmldb_online_request_duration_ns_count"));

        let json = r.render_json();
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.contains("\"kind\":\"histogram\""));
        assert_eq!(r.metric_names().len(), 3);
    }

    #[test]
    fn render_escapes_help_text() {
        let r = Registry::new();
        r.counter(
            "openmldb_online_requests_total",
            "line one\nline two with back\\slash",
        );
        let text = r.render();
        assert!(text.contains(
            "# HELP openmldb_online_requests_total line one\\nline two with back\\\\slash\n"
        ));
        assert!(
            !text.contains("\nline two"),
            "raw newline leaked into exposition: {text:?}"
        );
    }

    #[test]
    fn render_suffixes_counters_with_total() {
        let r = Registry::new();
        r.counter("openmldb_storage_scanned_rows", "rows visited by scans")
            .add(3);
        r.counter(
            "openmldb_online_union_tuples_rows{worker=\"1\"}",
            "tuples per worker",
        )
        .add(2);
        let text = r.render();
        assert!(text.contains("# TYPE openmldb_storage_scanned_rows_total counter"));
        assert!(text.contains("# TYPE openmldb_online_union_tuples_rows_total counter"));
        if enabled() {
            assert!(text.contains("openmldb_storage_scanned_rows_total 3"));
            assert!(text.contains("openmldb_online_union_tuples_rows_total{worker=\"1\"} 2"));
        }
        // the registered (unsuffixed) series name must not appear as a sample
        assert!(!text
            .lines()
            .any(|l| l.starts_with("openmldb_storage_scanned_rows ")));
        // already-_total names are not double-suffixed
        let r2 = Registry::new();
        r2.counter("openmldb_online_requests_total", "");
        assert!(!r2.render().contains("requests_total_total"));
    }

    #[test]
    fn registry_exposes_slow_query_log() {
        let text = Registry::global().render_slow_query_report(false);
        assert!(text.starts_with("slow-query log:"));
        let json = Registry::global().render_slow_query_report(true);
        assert!(json.starts_with("{\"published_total\":"));
        let _ = Registry::global().slow_queries();
    }

    #[test]
    fn registry_labeled_series_share_type_line() {
        let r = Registry::new();
        r.gauge(
            "openmldb_online_union_worker_load_rows{worker=\"0\"}",
            "load",
        )
        .set(10.0);
        r.gauge(
            "openmldb_online_union_worker_load_rows{worker=\"1\"}",
            "load",
        )
        .set(30.0);
        let text = r.render();
        let type_lines = text
            .lines()
            .filter(|l| l.starts_with("# TYPE openmldb_online_union_worker_load_rows"))
            .count();
        assert_eq!(type_lines, 1);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn registry_rejects_bad_name() {
        Registry::new().counter("bad_name", "");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        r.counter("openmldb_online_requests_total", "");
        r.gauge("openmldb_online_requests_total", "");
    }
}
