//! Consistency-audit support: the FNV input digest folded on the warm
//! path by sampled requests, and the process-wide bounded divergence log
//! the background auditor publishes into.
//!
//! The sentinel itself (sampling, capture, replay) lives in
//! `openmldb-online`, next to the execution paths it compares; this module
//! holds only the dependency-free pieces every layer shares:
//!
//! * [`Fnv`] — the FNV-1a folder, the same oracle idiom the durability
//!   layer uses to digest recovered WAL entries;
//! * [`ScanDigest`] — a fixed-size per-window digest of the raw bytes a
//!   request's window scans consumed, armed only for sampled requests so
//!   the unsampled warm path pays a single `bool` test per window;
//! * [`DivergenceReport`] / the bounded divergence log — the audit trail a
//!   confirmed online/offline mismatch lands in.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// FNV-1a, 64-bit. Deterministic, allocation-free, order-sensitive — the
/// same digest idiom the durability oracle uses for WAL entries.
#[derive(Clone, Copy, Debug)]
pub struct Fnv(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv {
    fn default() -> Self {
        Fnv(FNV_OFFSET)
    }
}

impl Fnv {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold a byte slice.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold one `u64` (little-endian bytes).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Per-window digest slots carried by a [`ScanDigest`]. Plans with more
/// windows fold the extras into the last slot.
pub const DIGEST_WINDOWS: usize = 8;

/// Digest of the raw window inputs one sampled request scanned, one slot
/// per window. The engine folds each window's arena bytes + entry
/// timestamps right after the scan completes (before any sort), so the
/// digest is a pure function of the stored rows the scan visited — the
/// background auditor replays the request through the interpreted oracle
/// and compares slot for slot.
///
/// A window served from the pre-aggregation fast path performs no raw scan
/// and leaves its slot unset (`mask` bit clear); the auditor skips it.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanDigest {
    digests: [u64; DIGEST_WINDOWS],
    mask: u16,
    armed: bool,
}

impl ScanDigest {
    /// Arm digest capture for this request (sampled requests only).
    #[inline]
    pub fn arm(&mut self) {
        self.armed = true;
    }

    /// Whether capture is armed — the only cost the unsampled warm path
    /// pays per window.
    #[inline]
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Disarm and clear all slots (between requests).
    #[inline]
    pub fn clear(&mut self) {
        *self = ScanDigest::default();
    }

    /// Record window `wid`'s input digest. Windows past the slot budget
    /// share the last slot (combined order-sensitively, and both serve and
    /// replay fold in the same window order).
    #[inline]
    pub fn record(&mut self, wid: usize, digest: u64) {
        let slot = wid.min(DIGEST_WINDOWS - 1);
        if let Some(d) = self.digests.get_mut(slot) {
            *d = d.rotate_left(1) ^ digest;
            self.mask |= 1 << slot;
        }
    }

    /// The digest recorded for slot `slot`, or `None` when that window was
    /// never raw-scanned (pre-aggregation fast path, or no aggregates).
    pub fn slot(&self, slot: usize) -> Option<u64> {
        if slot >= DIGEST_WINDOWS || self.mask & (1 << slot) == 0 {
            return None;
        }
        self.digests.get(slot).copied()
    }

    /// Bitmask of populated slots.
    pub fn mask(&self) -> u16 {
        self.mask
    }
}

/// How a confirmed divergence was detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The served output row differs from the interpreted-oracle replay.
    OutputInterpreted,
    /// The served output row differs from the materialized-oracle replay.
    OutputMaterialized,
    /// Outputs agree but a window's scanned-input digest differs between
    /// serve time and replay with the table versions unchanged —
    /// nondeterministic scan behavior.
    ScanInput,
}

impl DivergenceKind {
    pub fn name(self) -> &'static str {
        match self {
            DivergenceKind::OutputInterpreted => "output_interpreted",
            DivergenceKind::OutputMaterialized => "output_materialized",
            DivergenceKind::ScanInput => "scan_input",
        }
    }
}

/// One confirmed online/offline divergence, with both encodings retained
/// so the mismatch can be diagnosed after the fact.
#[derive(Clone, Debug)]
pub struct DivergenceReport {
    /// Deployment the diverging request was served through.
    pub deployment: String,
    /// Trace id of the originally served request (joins against the
    /// flight-recorder post-mortem published alongside).
    pub trace_id: u64,
    pub kind: DivergenceKind,
    /// Window id for [`DivergenceKind::ScanInput`] (digest slot index).
    pub window: Option<usize>,
    /// Rendering of the row the live path served.
    pub served: String,
    /// Rendering of the oracle replay's row (or its input digest for
    /// scan-input divergences).
    pub oracle: String,
}

impl DivergenceReport {
    /// One-line human rendering for reports and logs.
    pub fn render_text(&self) -> String {
        let win = self
            .window
            .map(|w| format!(" window={w}"))
            .unwrap_or_default();
        format!(
            "divergence deployment={} trace={} kind={}{} served={} oracle={}",
            self.deployment,
            self.trace_id,
            self.kind.name(),
            win,
            self.served,
            self.oracle,
        )
    }
}

/// Retained divergence reports (oldest evicted first).
pub const DIVERGENCE_LOG_CAPACITY: usize = 128;

struct DivergenceLog {
    ring: VecDeque<DivergenceReport>,
    total: u64,
}

fn divergence_log() -> &'static Mutex<DivergenceLog> {
    static LOG: OnceLock<Mutex<DivergenceLog>> = OnceLock::new();
    LOG.get_or_init(|| {
        Mutex::new(DivergenceLog {
            ring: VecDeque::with_capacity(DIVERGENCE_LOG_CAPACITY),
            total: 0,
        })
    })
}

/// Publish a confirmed divergence into the bounded process-wide audit log
/// (cold path — only ever runs on an actual mismatch).
pub fn publish_divergence(report: DivergenceReport) {
    #[cfg(not(feature = "obs-off"))]
    {
        let mut log = divergence_log().lock().unwrap_or_else(|p| p.into_inner());
        if log.ring.len() == DIVERGENCE_LOG_CAPACITY {
            log.ring.pop_front();
        }
        log.ring.push_back(report);
        log.total += 1;
    }
    #[cfg(feature = "obs-off")]
    let _ = report;
}

/// Retained divergence reports, oldest first.
pub fn divergences() -> Vec<DivergenceReport> {
    let log = divergence_log().lock().unwrap_or_else(|p| p.into_inner());
    log.ring.iter().cloned().collect()
}

/// Total divergences ever published (survives ring eviction).
pub fn divergences_total() -> u64 {
    divergence_log()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .total
}

/// Drop retained reports and the running total (tests and bench gates).
pub fn clear_divergences() {
    let mut log = divergence_log().lock().unwrap_or_else(|p| p.into_inner());
    log.ring.clear();
    log.total = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive_and_stable() {
        let mut a = Fnv::new();
        a.write(b"ab");
        let mut b = Fnv::new();
        b.write(b"ba");
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.write(b"ab");
        assert_eq!(a.finish(), c.finish());
        // Length-prefix-free but position-sensitive: u64 folding matches
        // its own little-endian byte fold.
        let mut d = Fnv::new();
        d.write_u64(7);
        let mut e = Fnv::new();
        e.write(&7u64.to_le_bytes());
        assert_eq!(d.finish(), e.finish());
    }

    #[test]
    fn scan_digest_slots_and_overflow() {
        let mut d = ScanDigest::default();
        assert!(!d.armed());
        d.arm();
        assert!(d.armed());
        d.record(0, 11);
        d.record(2, 22);
        // Windows past the slot budget share the last slot.
        d.record(9, 33);
        d.record(10, 44);
        assert_eq!(d.slot(0), Some(11));
        assert!(d.slot(1).is_none());
        assert_eq!(d.slot(2), Some(22));
        assert!(d.slot(DIGEST_WINDOWS - 1).is_some());
        assert_ne!(d.slot(DIGEST_WINDOWS - 1), Some(33));
        d.clear();
        assert!(!d.armed());
        assert_eq!(d.mask(), 0);
    }

    #[test]
    fn divergence_log_is_bounded_and_counts() {
        clear_divergences();
        for i in 0..(DIVERGENCE_LOG_CAPACITY + 5) as u64 {
            publish_divergence(DivergenceReport {
                deployment: "d".into(),
                trace_id: i,
                kind: DivergenceKind::OutputInterpreted,
                window: None,
                served: "[1]".into(),
                oracle: "[2]".into(),
            });
        }
        let log = divergences();
        if crate::enabled() {
            assert_eq!(log.len(), DIVERGENCE_LOG_CAPACITY);
            assert_eq!(divergences_total(), DIVERGENCE_LOG_CAPACITY as u64 + 5);
            // Oldest evicted first.
            assert_eq!(log[0].trace_id, 5);
            assert!(log[0].render_text().contains("output_interpreted"));
        } else {
            assert!(log.is_empty());
        }
        clear_divergences();
        assert_eq!(divergences_total(), 0);
    }
}
