//! Bounded-cardinality labeled metrics (per-deployment attribution).
//!
//! A process serves many concurrently deployed feature scripts; global
//! counters cannot say *which* deployment burned the budget. The classic
//! fix — one metric series per label value — melts down under unbounded
//! label churn (a misbehaving client deploying 10k uniquely-named scripts
//! must not allocate 10k histograms). This module bounds cardinality with a
//! fixed **label-slot registry**: the first [`MAX_LABEL_SLOTS`]` - 1`
//! distinct names each get a dedicated slot, everything after that shares
//! the [`OVERFLOW_LABEL`] slot (`__other`), so memory is a compile-time
//! constant no matter what the workload does.
//!
//! [`LabeledCounter`] and [`LabeledHistogram`] are thin slot arrays over the
//! existing sharded, cache-line-padded primitives — the record path is one
//! bounds-clamped array index plus the unlabeled primitive's relaxed atomic,
//! and per-slot metrics are allocated lazily so an idle slot costs one
//! `OnceLock` word. Under `obs-off` the underlying primitives already
//! compile every record to a no-op, so labeled metrics inherit the same
//! guarantee with no extra gating.
//!
//! Label *resolution* ([`LabelRegistry::resolve`]) takes a mutex and is
//! meant for deploy time (cold); the hot path carries the returned
//! [`LabelId`] — a `Copy` u16 — and never touches the registry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::Counter;

/// Fixed number of label slots per labeled metric, including the overflow
/// slot. Deployments beyond `MAX_LABEL_SLOTS - 1` distinct names share
/// [`OVERFLOW_LABEL`].
pub const MAX_LABEL_SLOTS: usize = 64;

/// Name of the shared overflow slot that absorbs the cardinality tail.
pub const OVERFLOW_LABEL: &str = "__other";

/// A resolved label slot: a dense index into every labeled metric's slot
/// array. Resolve once at deploy time, carry by value on the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LabelId(u16);

impl LabelId {
    /// The shared overflow slot (`__other`), always slot 0.
    pub const OVERFLOW: LabelId = LabelId(0);

    /// Dense slot index in `0..MAX_LABEL_SLOTS`.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 as usize).min(MAX_LABEL_SLOTS - 1)
    }

    /// Whether this label landed in the overflow bucket.
    #[inline]
    pub fn is_overflow(self) -> bool {
        self.0 == 0
    }

    /// A `LabelId` straight from a slot index, clamped to the slot range
    /// (render paths that iterate all slots).
    #[inline]
    pub fn from_index(i: usize) -> LabelId {
        LabelId(i.min(MAX_LABEL_SLOTS - 1) as u16)
    }
}

/// Fixed-capacity name → slot registry. Slot 0 is always
/// [`OVERFLOW_LABEL`]; names past capacity resolve to it (and are counted
/// in [`overflow_resolutions`](Self::overflow_resolutions)), so 10k
/// distinct deployment names still occupy `MAX_LABEL_SLOTS` slots.
pub struct LabelRegistry {
    names: Mutex<Vec<String>>,
    overflow: AtomicU64,
}

impl Default for LabelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl LabelRegistry {
    pub fn new() -> Self {
        LabelRegistry {
            names: Mutex::new(vec![OVERFLOW_LABEL.to_string()]),
            overflow: AtomicU64::new(0),
        }
    }

    /// The process-wide deployment-name registry every engine crate labels
    /// against.
    pub fn deployments() -> &'static LabelRegistry {
        static GLOBAL: OnceLock<LabelRegistry> = OnceLock::new();
        GLOBAL.get_or_init(LabelRegistry::new)
    }

    /// Find or assign the slot for `name`. Cold path (deploy time): takes
    /// the registry mutex and may allocate the stored name. Once all slots
    /// are taken, unknown names resolve to [`LabelId::OVERFLOW`].
    pub fn resolve(&self, name: &str) -> LabelId {
        let mut names = lock(&self.names);
        if let Some(i) = names.iter().position(|n| n == name) {
            return LabelId(i as u16);
        }
        if names.len() < MAX_LABEL_SLOTS {
            names.push(name.to_string());
            return LabelId((names.len() - 1) as u16);
        }
        self.overflow.fetch_add(1, Ordering::Relaxed);
        LabelId::OVERFLOW
    }

    /// The slot already assigned to `name`, if any. Never assigns.
    pub fn lookup(&self, name: &str) -> Option<LabelId> {
        lock(&self.names)
            .iter()
            .position(|n| n == name)
            .map(|i| LabelId(i as u16))
    }

    /// The name registered at `id`'s slot.
    pub fn name_of(&self, id: LabelId) -> String {
        let names = lock(&self.names);
        names
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| OVERFLOW_LABEL.to_string())
    }

    /// All registered names, slot order (slot 0 = `__other` first).
    pub fn names(&self) -> Vec<String> {
        lock(&self.names).clone()
    }

    /// Slots assigned so far (including the overflow slot).
    pub fn len(&self) -> usize {
        lock(&self.names).len()
    }

    pub fn is_empty(&self) -> bool {
        false // slot 0 always exists
    }

    /// How many `resolve` calls fell into the overflow bucket because every
    /// slot was taken.
    pub fn overflow_resolutions(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }
}

fn lock(m: &Mutex<Vec<String>>) -> std::sync::MutexGuard<'_, Vec<String>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A counter with one [`Counter`] per label slot, allocated on first use.
/// Recording is `slots[id] += n` through the sharded primitive; under
/// `obs-off` the primitive itself is the no-op.
pub struct LabeledCounter {
    slots: [OnceLock<Counter>; MAX_LABEL_SLOTS],
}

impl Default for LabeledCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl LabeledCounter {
    pub fn new() -> Self {
        LabeledCounter {
            slots: std::array::from_fn(|_| OnceLock::new()),
        }
    }

    /// Add 1 to `id`'s slot.
    #[inline]
    pub fn inc(&self, id: LabelId) {
        self.add(id, 1);
    }

    /// Add `n` to `id`'s slot.
    // analysis:allow(panic-freedom): `LabelId` is only constructed through
    // `resolve`/`from_index`, both of which bound `index()` below
    // `MAX_LABEL_SLOTS` (overflow clamps to slot 0), so the slot index
    // cannot be out of range. (The call-graph rule also reaches this
    // function spuriously: trait-dispatch over-approximation links
    // aggregator `update`/`add` method calls here by name + arity.)
    #[inline]
    pub fn add(&self, id: LabelId, n: u64) {
        self.slots[id.index()].get_or_init(Counter::new).add(n);
    }

    /// Current value of `id`'s slot.
    pub fn value(&self, id: LabelId) -> u64 {
        self.slots[id.index()].get().map_or(0, Counter::value)
    }

    /// Sum over every slot — must equal the matching global counter when
    /// both are fed the same increments (the reconciliation invariant the
    /// `workload_profile` gate checks).
    pub fn total(&self) -> u64 {
        self.slots
            .iter()
            .filter_map(|s| s.get())
            .map(Counter::value)
            .sum()
    }

    /// `(slot index, value)` for every slot that has recorded at least one
    /// add (allocation order, not value order).
    pub fn per_slot(&self) -> Vec<(usize, u64)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.get().map(|c| (i, c.value())))
            .collect()
    }
}

/// A histogram with one [`Histogram`] per label slot, allocated lazily
/// (an eager slot array would pin ~4 MB per metric; idle slots cost one
/// pointer-sized `OnceLock` instead).
pub struct LabeledHistogram {
    slots: [OnceLock<Box<Histogram>>; MAX_LABEL_SLOTS],
}

impl Default for LabeledHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LabeledHistogram {
    pub fn new() -> Self {
        LabeledHistogram {
            slots: std::array::from_fn(|_| OnceLock::new()),
        }
    }

    /// Record `v` into `id`'s slot.
    #[inline]
    pub fn record(&self, id: LabelId, v: u64) {
        self.slots[id.index()]
            .get_or_init(|| Box::new(Histogram::new()))
            .record(v);
    }

    /// Snapshot of `id`'s slot, `None` if it never recorded.
    pub fn snapshot(&self, id: LabelId) -> Option<HistogramSnapshot> {
        self.slots[id.index()].get().map(|h| h.snapshot())
    }

    /// Total samples across every slot.
    pub fn total_count(&self) -> u64 {
        self.slots
            .iter()
            .filter_map(|s| s.get())
            .map(|h| h.snapshot().count())
            .sum()
    }

    /// Exact total of recorded values across every slot.
    pub fn total_sum(&self) -> u64 {
        self.slots
            .iter()
            .filter_map(|s| s.get())
            .map(|h| h.snapshot().sum())
            .sum()
    }

    /// `(slot index, snapshot)` for every slot that has recorded.
    pub fn per_slot(&self) -> Vec<(usize, HistogramSnapshot)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.get().map(|h| (i, h.snapshot())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enabled;

    #[test]
    fn registry_assigns_dense_slots_and_overflows() {
        let r = LabelRegistry::new();
        assert_eq!(r.resolve(OVERFLOW_LABEL), LabelId::OVERFLOW);
        let a = r.resolve("a");
        let b = r.resolve("b");
        assert_ne!(a, b);
        assert!(!a.is_overflow() && !b.is_overflow());
        assert_eq!(r.resolve("a"), a, "resolve is idempotent");
        assert_eq!(r.lookup("b"), Some(b));
        assert_eq!(r.lookup("nope"), None);
        assert_eq!(r.name_of(a), "a");

        // Exhaust the remaining slots, then overflow.
        for i in 0..MAX_LABEL_SLOTS {
            r.resolve(&format!("fill-{i}"));
        }
        assert_eq!(r.len(), MAX_LABEL_SLOTS);
        let over = r.resolve("one-too-many");
        assert!(over.is_overflow());
        assert!(r.overflow_resolutions() >= 1);
        assert_eq!(r.lookup("one-too-many"), None, "overflow names not stored");
    }

    #[test]
    fn labeled_counter_totals_reconcile() {
        let r = LabelRegistry::new();
        let c = LabeledCounter::new();
        let a = r.resolve("a");
        let b = r.resolve("b");
        c.add(a, 3);
        c.inc(b);
        c.add(LabelId::OVERFLOW, 10);
        if enabled() {
            assert_eq!(c.value(a), 3);
            assert_eq!(c.value(b), 1);
            assert_eq!(c.total(), 14);
            assert_eq!(c.per_slot().len(), 3);
        } else {
            assert_eq!(c.total(), 0);
        }
    }

    #[test]
    fn labeled_histogram_records_per_slot() {
        let r = LabelRegistry::new();
        let h = LabeledHistogram::new();
        let a = r.resolve("a");
        h.record(a, 100);
        h.record(a, 300);
        assert!(
            h.snapshot(LabelId::OVERFLOW).is_none(),
            "idle slot stays unallocated"
        );
        if enabled() {
            let snap = h.snapshot(a).unwrap();
            assert_eq!(snap.count(), 2);
            assert_eq!(snap.sum(), 400);
            assert_eq!(h.total_count(), 2);
            assert_eq!(h.total_sum(), 400);
        }
    }

    #[test]
    fn memory_stays_bounded_under_name_churn() {
        // 10k distinct names may not grow the registry or the metric past
        // the fixed slot count — the acceptance bound for label churn.
        let r = LabelRegistry::new();
        let c = LabeledCounter::new();
        for i in 0..10_000 {
            let id = r.resolve(&format!("deploy-{i}"));
            c.inc(id);
        }
        assert_eq!(r.len(), MAX_LABEL_SLOTS);
        assert!(r.overflow_resolutions() >= 10_000 - MAX_LABEL_SLOTS as u64);
        if enabled() {
            assert_eq!(c.total(), 10_000, "overflow slot absorbs the tail");
            assert!(c.value(LabelId::OVERFLOW) >= 10_000 - MAX_LABEL_SLOTS as u64);
        }
    }
}
