//! Request-scoped span tracing.
//!
//! A trace decomposes one online request into pipeline stages
//! (plan → cache lookup → window dispatch → storage seek → aggregate →
//! encode) with nanosecond start/duration timestamps relative to the
//! request's arrival. Traces are sampled (1 in [`DEFAULT_SAMPLE_EVERY`] by
//! default) and retained in a bounded ring buffer of [`RING_CAPACITY`]
//! entries, so tracing never grows memory and costs a single sequence-number
//! `fetch_add` plus one thread-local check per span on unsampled requests.
//!
//! The active trace is propagated through a thread-local, so deeply nested
//! code (the SQL cache, the storage layer) can call [`span`] without
//! threading a context handle through every signature: outside a sampled
//! [`with_request_trace`] scope, `span` runs the closure with zero recording.

#[cfg(not(feature = "obs-off"))]
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

/// Default sampling interval: one traced request per this many.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;

/// Maximum retained traces; older traces are dropped FIFO.
pub const RING_CAPACITY: usize = 128;

/// Pipeline stages a request moves through. Mirrors the execution order in
/// `online::engine::execute_request`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// SQL parsing and physical-plan construction.
    Plan,
    /// Plan-cache probe (hit or miss).
    CacheLookup,
    /// Choosing the window path (pre-aggregated vs. raw scan) and routing.
    WindowDispatch,
    /// Skiplist / disk seeks and row collection.
    StorageSeek,
    /// Window aggregate evaluation.
    Aggregate,
    /// Projecting and encoding the output row.
    Encode,
}

impl Stage {
    /// All stages in pipeline order; `ALL[s.index()] == s`.
    pub const ALL: [Stage; 6] = [
        Stage::Plan,
        Stage::CacheLookup,
        Stage::WindowDispatch,
        Stage::StorageSeek,
        Stage::Aggregate,
        Stage::Encode,
    ];

    /// Dense index of this stage, `0..Stage::ALL.len()` — the flight
    /// recorder's attribution slot.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            Stage::Plan => "plan",
            Stage::CacheLookup => "cache_lookup",
            Stage::WindowDispatch => "window_dispatch",
            Stage::StorageSeek => "storage_seek",
            Stage::Aggregate => "aggregate",
            Stage::Encode => "encode",
        }
    }
}

/// One timed stage within a trace.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub stage: Stage,
    /// Nanoseconds from the start of the request.
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// A completed request trace.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Request sequence number at sampling time.
    pub seq: u64,
    /// End-to-end request duration.
    pub total_ns: u64,
    /// Spans in completion order.
    pub spans: Vec<SpanRecord>,
}

#[cfg(not(feature = "obs-off"))]
struct ActiveTrace {
    t0: Instant,
    seq: u64,
    spans: Vec<SpanRecord>,
}

#[cfg(not(feature = "obs-off"))]
thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Global trace collector: samples requests and retains completed traces in
/// a bounded ring.
pub struct Tracer {
    seq: AtomicU64,
    sample_every: AtomicU64,
    ring: Mutex<VecDeque<Trace>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    pub fn new() -> Self {
        Tracer {
            seq: AtomicU64::new(0),
            sample_every: AtomicU64::new(DEFAULT_SAMPLE_EVERY),
            ring: Mutex::new(VecDeque::with_capacity(RING_CAPACITY)),
        }
    }

    /// The process-wide tracer used by [`with_request_trace`] / [`span`].
    pub fn global() -> &'static Tracer {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        GLOBAL.get_or_init(Tracer::new)
    }

    /// Change the sampling interval (`1` traces every request; `0` is
    /// clamped to `1`). Intended for tests and bench runs.
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n.max(1), Ordering::Relaxed);
    }

    /// Run `f` as a request scope. If this request is sampled, spans opened
    /// inside `f` on this thread are collected and the completed trace is
    /// pushed into the ring buffer.
    #[inline]
    pub fn with_request_trace<R>(&self, f: impl FnOnce() -> R) -> R {
        #[cfg(not(feature = "obs-off"))]
        {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let every = self.sample_every.load(Ordering::Relaxed).max(1);
            let sampled = seq.is_multiple_of(every);
            // nested scopes (offline query inside a request) never re-enter
            let already = ACTIVE.with(|a| a.borrow().is_some());
            if !sampled || already {
                return f();
            }
            ACTIVE.with(|a| {
                *a.borrow_mut() = Some(ActiveTrace {
                    t0: Instant::now(),
                    seq,
                    spans: Vec::with_capacity(8),
                })
            });
            // drop guard so a panicking `f` cannot leak the active trace
            // into an unrelated later request on this thread
            struct Finish<'t> {
                tracer: &'t Tracer,
            }
            impl Drop for Finish<'_> {
                fn drop(&mut self) {
                    if let Some(active) = ACTIVE.with(|a| a.borrow_mut().take()) {
                        self.tracer.push(Trace {
                            seq: active.seq,
                            total_ns: active.t0.elapsed().as_nanos() as u64,
                            spans: active.spans,
                        });
                    }
                }
            }
            let guard = Finish { tracer: self };
            let out = f();
            drop(guard);
            out
        }
        #[cfg(feature = "obs-off")]
        f()
    }

    #[cfg(not(feature = "obs-off"))]
    fn push(&self, trace: Trace) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Completed traces, oldest first.
    pub fn recent(&self) -> Vec<Trace> {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.iter().cloned().collect()
    }

    /// Number of requests that have passed through `with_request_trace`.
    pub fn requests_seen(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// JSON array of retained traces:
    /// `[{"seq":..,"total_ns":..,"spans":[{"stage":"plan",...}]}]`.
    pub fn render_json(&self) -> String {
        let traces = self.recent();
        let mut items = Vec::with_capacity(traces.len());
        for t in &traces {
            let spans: Vec<String> = t
                .spans
                .iter()
                .map(|s| {
                    format!(
                        "{{\"stage\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
                        s.stage.name(),
                        s.start_ns,
                        s.dur_ns
                    )
                })
                .collect();
            items.push(format!(
                "{{\"seq\":{},\"total_ns\":{},\"spans\":[{}]}}",
                t.seq,
                t.total_ns,
                spans.join(",")
            ));
        }
        format!("[{}]", items.join(","))
    }
}

/// Time `f` as `stage` within the current thread's active trace, if any,
/// and mark the stage boundary in the thread's active flight recorder
/// ([`crate::flight`]) — the recorder is per-request (always on), so stage
/// events flow even when the 1-in-N trace sampler skipped this request.
/// Outside both scopes this is two thread-local `is_some` checks and nothing
/// else.
#[inline]
pub fn span<R>(stage: Stage, f: impl FnOnce() -> R) -> R {
    #[cfg(not(feature = "obs-off"))]
    {
        crate::flight::stage_enter(stage);
        let t0 = ACTIVE.with(|a| a.borrow().as_ref().map(|t| t.t0));
        let Some(t0) = t0 else {
            let out = f();
            crate::flight::stage_exit(stage);
            return out;
        };
        let start_ns = t0.elapsed().as_nanos() as u64;
        let out = f();
        let end_ns = t0.elapsed().as_nanos() as u64;
        crate::flight::stage_exit(stage);
        ACTIVE.with(|a| {
            if let Some(active) = a.borrow_mut().as_mut() {
                active.spans.push(SpanRecord {
                    stage,
                    start_ns,
                    dur_ns: end_ns.saturating_sub(start_ns),
                });
            }
        });
        out
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = stage;
        f()
    }
}

/// Convenience wrapper over [`Tracer::global`].
#[inline]
pub fn with_request_trace<R>(f: impl FnOnce() -> R) -> R {
    Tracer::global().with_request_trace(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_outside_scope_are_noops() {
        let v = span(Stage::Plan, || 7);
        assert_eq!(v, 7);
    }

    #[test]
    fn sampled_trace_collects_spans_in_order() {
        let tracer = Tracer::new();
        tracer.set_sample_every(1);
        let out = tracer.with_request_trace(|| {
            span(Stage::Plan, || {
                std::thread::sleep(std::time::Duration::from_micros(50))
            });
            span(Stage::StorageSeek, || ());
            span(Stage::Encode, || ());
            42
        });
        assert_eq!(out, 42);
        let traces = tracer.recent();
        if !crate::enabled() {
            assert!(traces.is_empty());
            return;
        }
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(
            t.spans.iter().map(|s| s.stage).collect::<Vec<_>>(),
            vec![Stage::Plan, Stage::StorageSeek, Stage::Encode]
        );
        assert!(t.spans[0].dur_ns >= 50_000, "sleep span too short: {t:?}");
        assert!(t.total_ns >= t.spans[0].dur_ns);
        assert!(t.spans[1].start_ns >= t.spans[0].start_ns);
        let json = tracer.render_json();
        assert!(json.contains("\"stage\":\"storage_seek\""));
    }

    #[test]
    fn sampling_interval_respected() {
        let tracer = Tracer::new();
        tracer.set_sample_every(4);
        for _ in 0..8 {
            tracer.with_request_trace(|| span(Stage::Aggregate, || ()));
        }
        if crate::enabled() {
            assert_eq!(tracer.requests_seen(), 8);
            assert_eq!(tracer.recent().len(), 2); // seq 0 and 4
        }
    }

    #[test]
    fn ring_is_bounded() {
        let tracer = Tracer::new();
        tracer.set_sample_every(1);
        for _ in 0..(RING_CAPACITY + 10) {
            tracer.with_request_trace(|| ());
        }
        if crate::enabled() {
            let traces = tracer.recent();
            assert_eq!(traces.len(), RING_CAPACITY);
            // oldest were evicted
            assert_eq!(traces[0].seq, 10);
        }
    }

    #[test]
    fn nested_scopes_do_not_double_trace() {
        let tracer = Tracer::new();
        tracer.set_sample_every(1);
        tracer.with_request_trace(|| {
            tracer.with_request_trace(|| span(Stage::Plan, || ()));
        });
        if crate::enabled() {
            // the outer scope owns the trace; the inner one runs untraced
            // (but still bumps the sequence number)
            assert_eq!(tracer.recent().len(), 1);
            assert_eq!(tracer.requests_seen(), 2);
        }
    }

    #[test]
    fn panic_does_not_leak_active_trace() {
        let tracer = Tracer::new();
        tracer.set_sample_every(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tracer.with_request_trace(|| panic!("boom"));
        }));
        assert!(result.is_err());
        // a later span on this thread must not attach to the dead trace
        span(Stage::Encode, || ());
        if crate::enabled() {
            let traces = tracer.recent();
            assert_eq!(traces.len(), 1);
            assert!(traces[0].spans.is_empty());
        }
    }
}
