//! Live ops plane: a tiny dependency-free HTTP/1.1 responder over
//! [`std::net::TcpListener`] exposing the in-process observability
//! surfaces to scrapers.
//!
//! Built-in routes (served straight from the global [`Registry`]):
//!
//! * `GET /metrics` — Prometheus text exposition ([`Registry::render`]);
//! * `GET /report`  — JSON exposition ([`Registry::render_json`]).
//!
//! Everything else is delegated to the embedder's handler callback — the
//! database facade registers `/healthz` (consistency-sentinel verdict) and
//! `/explain/<deployment>` there, so this crate stays free of engine
//! dependencies. Unknown paths 404; non-GET methods 405.
//!
//! Under `obs-off` the listener is compiled out: [`serve`] returns
//! `ErrorKind::Unsupported` and no socket is ever bound.

use std::io;
#[cfg(not(feature = "obs-off"))]
use std::io::{Read as _, Write as _};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
#[cfg(not(feature = "obs-off"))]
use std::time::Duration;

/// Route handler: maps a request path to a response, or `None` to 404.
/// Consulted for every path without a built-in route.
pub type OpsHandler = Arc<dyn Fn(&str) -> Option<OpsResponse> + Send + Sync>;

/// One HTTP response: status code, content type, body.
#[derive(Clone, Debug)]
pub struct OpsResponse {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
}

impl OpsResponse {
    pub fn ok(content_type: &'static str, body: String) -> Self {
        OpsResponse {
            status: 200,
            content_type,
            body,
        }
    }

    // Only called from the connection handler, which `obs-off` compiles out.
    #[cfg_attr(feature = "obs-off", allow(dead_code))]
    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Error",
        }
    }
}

/// A running ops listener. Dropping (or calling [`shutdown`]) stops the
/// accept loop and joins the serving thread.
///
/// [`shutdown`]: OpsServer::shutdown
pub struct OpsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl OpsServer {
    /// The bound address (resolves port 0 to the kernel-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the serving thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(not(feature = "obs-off"))]
fn ops_requests() -> &'static Arc<crate::Counter> {
    static C: std::sync::OnceLock<Arc<crate::Counter>> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        crate::Registry::global().counter(
            "openmldb_obs_ops_requests_total",
            "HTTP requests served by the ops endpoint",
        )
    })
}

/// Resolve `path` against the built-in routes, then `handler`. Pure —
/// exercised directly by tests without a socket.
pub fn route(method: &str, path: &str, handler: &OpsHandler) -> OpsResponse {
    if method != "GET" {
        return OpsResponse {
            status: 405,
            content_type: "text/plain",
            body: "method not allowed\n".into(),
        };
    }
    match path {
        "/metrics" => OpsResponse::ok(
            "text/plain; version=0.0.4",
            crate::Registry::global().render(),
        ),
        "/report" => OpsResponse::ok("application/json", crate::Registry::global().render_json()),
        _ => handler(path).unwrap_or(OpsResponse {
            status: 404,
            content_type: "text/plain",
            body: "not found\n".into(),
        }),
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve on a background thread.
///
/// Compiled out under `obs-off`: returns `ErrorKind::Unsupported`.
#[cfg(not(feature = "obs-off"))]
pub fn serve(addr: &str, handler: OpsHandler) -> io::Result<OpsServer> {
    let listener = std::net::TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("openmldb-ops".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        ops_requests().inc();
                        let _ = handle_connection(stream, &handler);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        })?;
    Ok(OpsServer {
        addr: bound,
        stop,
        thread: Some(thread),
    })
}

/// `obs-off` stub: the ops plane is compiled out with the rest of the
/// observability layer.
#[cfg(feature = "obs-off")]
pub fn serve(addr: &str, handler: OpsHandler) -> io::Result<OpsServer> {
    let _ = (addr, handler);
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "ops endpoint compiled out (obs-off)",
    ))
}

#[cfg(not(feature = "obs-off"))]
fn handle_connection(mut stream: std::net::TcpStream, handler: &OpsHandler) -> io::Result<()> {
    // The accepted socket inherits the listener's non-blocking mode on some
    // platforms; serve the one request with bounded blocking reads instead.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut head = [0u8; 2048];
    let mut len = 0usize;
    loop {
        if len == head.len() {
            break;
        }
        let n = stream.read(&mut head[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if head[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let text = String::from_utf8_lossy(&head[..len]);
    let mut parts = text.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");
    let resp = route(method, path, handler);
    let headers = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        resp.status_text(),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(headers.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_extra() -> OpsHandler {
        Arc::new(|_| None)
    }

    #[test]
    fn route_serves_builtins_and_delegates() {
        let r = route("GET", "/metrics", &no_extra());
        assert_eq!(r.status, 200);
        let r = route("GET", "/report", &no_extra());
        assert_eq!(r.status, 200);
        assert!(r.body.starts_with("{\"metrics\""));
        let r = route("GET", "/nope", &no_extra());
        assert_eq!(r.status, 404);
        let r = route("POST", "/metrics", &no_extra());
        assert_eq!(r.status, 405);
        let handler: OpsHandler = Arc::new(|path| {
            (path == "/healthz")
                .then(|| OpsResponse::ok("application/json", "{\"ok\":true}".into()))
        });
        let r = route("GET", "/healthz", &handler);
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{\"ok\":true}");
    }

    #[test]
    fn serve_round_trips_over_tcp_or_is_unsupported() {
        match serve("127.0.0.1:0", no_extra()) {
            Ok(mut server) => {
                assert!(crate::enabled(), "serve must fail under obs-off");
                let addr = server.addr();
                let mut conn = std::net::TcpStream::connect(addr).expect("connect");
                use std::io::{Read as _, Write as _};
                conn.write_all(b"GET /report HTTP/1.1\r\nHost: x\r\n\r\n")
                    .expect("write");
                let mut body = String::new();
                conn.read_to_string(&mut body).expect("read");
                assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
                assert!(body.contains("{\"metrics\""), "{body}");
                server.shutdown();
            }
            Err(e) => {
                assert!(!crate::enabled(), "bind failed with obs on: {e}");
                assert_eq!(e.kind(), io::ErrorKind::Unsupported);
            }
        }
    }
}
