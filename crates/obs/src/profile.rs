//! Per-request cost profiles and per-deployment aggregates.
//!
//! The flight recorder answers "where did *this* request's time go"; the
//! cost profile answers "what did this request *do*" — rows scanned, bytes
//! decoded, storage seeks, pre-aggregation hits — and, folded per
//! deployment into the [`ProfileStore`], "what does this *deployment* cost
//! on average", rendered in an `EXPLAIN ANALYZE` style.
//!
//! Attribution mirrors the flight recorder's thread-local active-scope
//! pattern: the engine opens a [`ProfileScope`] per request, deeply nested
//! code (the storage layer's seek/scan sites) calls the free `record_*`
//! functions without threading a handle through every signature, and the
//! engine closes the scope, stamps in the flight summary's exact stage
//! times, and folds the finished [`CostProfile`] into the store under the
//! deployment's label slot. [`CostProfile`] is `Copy` and fixed-size, so
//! carrying it in the pooled request scratch keeps the warm path
//! allocation-free. Under `obs-off` every record call is an inlined no-op
//! and [`ProfileScope::finish`] returns `None`.

#[cfg(not(feature = "obs-off"))]
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::flight::NUM_STAGES;
use crate::labels::{LabelId, LabelRegistry, MAX_LABEL_SLOTS};
use crate::trace::Stage;

/// What one request did, in fixed-size counters. The `stage_ns` slots are
/// indexed by [`Stage::index`] and copied verbatim from the flight
/// recorder's exact self-time attribution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostProfile {
    /// Rows visited by window scans and seeks (storage-layer attribution).
    pub rows_scanned: u64,
    /// Encoded bytes copied into the scan arena.
    pub bytes_decoded: u64,
    /// Storage index seeks.
    pub storage_seeks: u64,
    /// Windows served by the pre-aggregation fast path.
    pub preagg_hits: u64,
    /// Windows that fell back to a raw scan despite a pre-aggregator.
    pub preagg_skips: u64,
    /// Transient-fault retries.
    pub retries: u64,
    /// Replica failovers.
    pub failovers: u64,
    /// 1 when the request returned a degraded (buckets-only) answer.
    pub degraded: u64,
    /// High-water mark of the request scratch arena, in bytes.
    pub scratch_high_water_bytes: u64,
    /// Exclusive per-stage self time, `sum + other <= total_ns`.
    pub stage_ns: [u64; NUM_STAGES],
    /// End-to-end request time.
    pub total_ns: u64,
}

impl CostProfile {
    /// Sum of the per-stage self times.
    pub fn stage_sum_ns(&self) -> u64 {
        self.stage_ns.iter().sum()
    }

    /// Accumulate `other` into `self` (high-water fields take the max).
    pub fn merge(&mut self, other: &CostProfile) {
        self.rows_scanned += other.rows_scanned;
        self.bytes_decoded += other.bytes_decoded;
        self.storage_seeks += other.storage_seeks;
        self.preagg_hits += other.preagg_hits;
        self.preagg_skips += other.preagg_skips;
        self.retries += other.retries;
        self.failovers += other.failovers;
        self.degraded += other.degraded;
        self.scratch_high_water_bytes = self
            .scratch_high_water_bytes
            .max(other.scratch_high_water_bytes);
        for (a, b) in self.stage_ns.iter_mut().zip(other.stage_ns.iter()) {
            *a += *b;
        }
        self.total_ns += other.total_ns;
    }
}

#[cfg(not(feature = "obs-off"))]
thread_local! {
    static ACTIVE: RefCell<Option<CostProfile>> = const { RefCell::new(None) };
}

/// Installs a fresh [`CostProfile`] as the thread's active accumulator for
/// one request. A scope entered while another is active on the same thread
/// is passive — records keep landing in the outer request's profile and
/// [`finish`](Self::finish) returns `None`. Panic-safe: dropping the scope
/// uninstalls the accumulator.
#[must_use]
pub struct ProfileScope {
    #[cfg(not(feature = "obs-off"))]
    armed: bool,
}

impl ProfileScope {
    #[inline]
    pub fn enter() -> Self {
        #[cfg(not(feature = "obs-off"))]
        {
            let armed = ACTIVE.with(|a| {
                let mut a = a.borrow_mut();
                if a.is_some() {
                    false
                } else {
                    *a = Some(CostProfile::default());
                    true
                }
            });
            ProfileScope { armed }
        }
        #[cfg(feature = "obs-off")]
        ProfileScope {}
    }

    /// Stop accumulating and return the request's profile. `None` when this
    /// scope was passive (nested) or under `obs-off`.
    #[inline]
    pub fn finish(self) -> Option<CostProfile> {
        #[cfg(not(feature = "obs-off"))]
        {
            if !self.armed {
                return None;
            }
            let mut this = self;
            this.armed = false;
            ACTIVE.with(|a| a.borrow_mut().take())
        }
        #[cfg(feature = "obs-off")]
        None
    }
}

impl Drop for ProfileScope {
    fn drop(&mut self) {
        #[cfg(not(feature = "obs-off"))]
        if self.armed {
            ACTIVE.with(|a| a.borrow_mut().take());
        }
    }
}

#[cfg(not(feature = "obs-off"))]
#[inline]
fn with_active(f: impl FnOnce(&mut CostProfile)) {
    ACTIVE.with(|a| {
        if let Some(p) = a.borrow_mut().as_mut() {
            f(p);
        }
    });
}

/// Record one storage index seek against the active profile, if any.
// HOT: one thread-local check per seek.
#[inline]
pub fn record_seek() {
    #[cfg(not(feature = "obs-off"))]
    with_active(|p| p.storage_seeks += 1);
}

/// Record `n` rows visited by a scan.
#[inline]
pub fn record_scan_rows(n: u64) {
    #[cfg(not(feature = "obs-off"))]
    with_active(|p| p.rows_scanned += n);
    #[cfg(feature = "obs-off")]
    let _ = n;
}

/// Record `n` encoded bytes copied/decoded for the request.
#[inline]
pub fn record_bytes(n: u64) {
    #[cfg(not(feature = "obs-off"))]
    with_active(|p| p.bytes_decoded += n);
    #[cfg(feature = "obs-off")]
    let _ = n;
}

/// Record a pre-aggregation fast-path hit.
#[inline]
pub fn record_preagg_hit() {
    #[cfg(not(feature = "obs-off"))]
    with_active(|p| p.preagg_hits += 1);
}

/// Record a pre-aggregation fallback to the raw scan.
#[inline]
pub fn record_preagg_skip() {
    #[cfg(not(feature = "obs-off"))]
    with_active(|p| p.preagg_skips += 1);
}

// ---------------------------------------------------------------------------
// Per-deployment aggregates
// ---------------------------------------------------------------------------

/// One deployment's running totals. Cache-line aligned so two deployments
/// folding concurrently never false-share.
#[repr(align(64))]
#[derive(Default)]
struct SlotAgg {
    requests: AtomicU64,
    rows_scanned: AtomicU64,
    bytes_decoded: AtomicU64,
    storage_seeks: AtomicU64,
    preagg_hits: AtomicU64,
    preagg_skips: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    degraded: AtomicU64,
    scratch_high_water: AtomicU64,
    stage_ns: [AtomicU64; NUM_STAGES],
    total_ns: AtomicU64,
}

/// Fixed-size per-deployment profile aggregates, indexed by
/// [`LabelId`] slot. Bounded memory by construction: `MAX_LABEL_SLOTS`
/// cache-line-aligned slots, no maps.
pub struct ProfileStore {
    slots: Box<[SlotAgg]>,
}

impl Default for ProfileStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfileStore {
    pub fn new() -> Self {
        ProfileStore {
            slots: (0..MAX_LABEL_SLOTS).map(|_| SlotAgg::default()).collect(),
        }
    }

    /// The process-wide store the online engine folds into.
    pub fn global() -> &'static ProfileStore {
        static GLOBAL: OnceLock<ProfileStore> = OnceLock::new();
        GLOBAL.get_or_init(ProfileStore::new)
    }

    /// Fold one finished request profile into `id`'s running totals.
    pub fn fold(&self, id: LabelId, p: &CostProfile) {
        #[cfg(not(feature = "obs-off"))]
        {
            let s = &self.slots[id.index()];
            s.requests.fetch_add(1, Ordering::Relaxed);
            s.rows_scanned.fetch_add(p.rows_scanned, Ordering::Relaxed);
            s.bytes_decoded
                .fetch_add(p.bytes_decoded, Ordering::Relaxed);
            s.storage_seeks
                .fetch_add(p.storage_seeks, Ordering::Relaxed);
            s.preagg_hits.fetch_add(p.preagg_hits, Ordering::Relaxed);
            s.preagg_skips.fetch_add(p.preagg_skips, Ordering::Relaxed);
            s.retries.fetch_add(p.retries, Ordering::Relaxed);
            s.failovers.fetch_add(p.failovers, Ordering::Relaxed);
            s.degraded.fetch_add(p.degraded, Ordering::Relaxed);
            s.scratch_high_water
                .fetch_max(p.scratch_high_water_bytes, Ordering::Relaxed);
            for (slot, v) in s.stage_ns.iter().zip(p.stage_ns.iter()) {
                slot.fetch_add(*v, Ordering::Relaxed);
            }
            s.total_ns.fetch_add(p.total_ns, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = (id, p);
    }

    /// `(request count, accumulated profile)` for `id`'s slot.
    pub fn aggregate(&self, id: LabelId) -> (u64, CostProfile) {
        let s = &self.slots[id.index()];
        let mut p = CostProfile {
            rows_scanned: s.rows_scanned.load(Ordering::Relaxed),
            bytes_decoded: s.bytes_decoded.load(Ordering::Relaxed),
            storage_seeks: s.storage_seeks.load(Ordering::Relaxed),
            preagg_hits: s.preagg_hits.load(Ordering::Relaxed),
            preagg_skips: s.preagg_skips.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
            failovers: s.failovers.load(Ordering::Relaxed),
            degraded: s.degraded.load(Ordering::Relaxed),
            scratch_high_water_bytes: s.scratch_high_water.load(Ordering::Relaxed),
            stage_ns: [0; NUM_STAGES],
            total_ns: s.total_ns.load(Ordering::Relaxed),
        };
        for (i, slot) in s.stage_ns.iter().enumerate() {
            p.stage_ns[i] = slot.load(Ordering::Relaxed);
        }
        (s.requests.load(Ordering::Relaxed), p)
    }

    /// Sum `aggregate` over every slot (the reconciliation side of the
    /// `workload_profile` gate: must match the global counters).
    pub fn aggregate_all(&self) -> (u64, CostProfile) {
        let mut requests = 0u64;
        let mut total = CostProfile::default();
        for i in 0..MAX_LABEL_SLOTS {
            let (r, p) = self.aggregate(LabelId::from_index(i));
            requests += r;
            total.merge(&p);
        }
        // merge() sums total_ns but maxes high-water; both are what the
        // reconciliation wants.
        (requests, total)
    }

    /// `EXPLAIN ANALYZE`-style render of one deployment's accumulated
    /// profile, resolved against the process-wide deployment registry.
    /// Renders a clean "no samples" section when the deployment never
    /// served a request (or is unknown).
    pub fn render_explain_analyze(&self, deployment: &str) -> String {
        let id = LabelRegistry::deployments().lookup(deployment);
        let (requests, p) = match id {
            Some(id) => self.aggregate(id),
            None => (0, CostProfile::default()),
        };
        let mut out = String::new();
        let _ = writeln!(out, "EXPLAIN ANALYZE deployment \"{deployment}\"");
        if requests == 0 {
            let _ = writeln!(out, "  (no samples)");
            return out;
        }
        let avg_us = p.total_ns as f64 / requests as f64 / 1_000.0;
        let _ = writeln!(
            out,
            "  requests={requests}  total={:.2}ms  avg={avg_us:.1}us/req",
            p.total_ns as f64 / 1e6
        );
        let denom = p.total_ns.max(1) as f64;
        for stage in Stage::ALL {
            let ns = p.stage_ns[stage.index()];
            let _ = writeln!(
                out,
                "  stage {:<16} total={:>10.3}ms  avg={:>8.1}us  ({:>4.1}%)",
                stage.name(),
                ns as f64 / 1e6,
                ns as f64 / requests as f64 / 1e3,
                100.0 * ns as f64 / denom,
            );
        }
        let other = p.total_ns.saturating_sub(p.stage_sum_ns());
        let _ = writeln!(
            out,
            "  stage {:<16} total={:>10.3}ms  avg={:>8.1}us  ({:>4.1}%)",
            "other",
            other as f64 / 1e6,
            other as f64 / requests as f64 / 1e3,
            100.0 * other as f64 / denom,
        );
        let _ = writeln!(
            out,
            "  rows scanned      {}  ({:.1}/req)",
            p.rows_scanned,
            p.rows_scanned as f64 / requests as f64
        );
        let _ = writeln!(
            out,
            "  bytes decoded     {}  ({:.1}/req)",
            p.bytes_decoded,
            p.bytes_decoded as f64 / requests as f64
        );
        let _ = writeln!(
            out,
            "  storage seeks     {}  ({:.1}/req)",
            p.storage_seeks,
            p.storage_seeks as f64 / requests as f64
        );
        let _ = writeln!(
            out,
            "  preagg            {} hits, {} skips",
            p.preagg_hits, p.preagg_skips
        );
        let _ = writeln!(
            out,
            "  resilience        {} retries, {} failovers, {} degraded",
            p.retries, p.failovers, p.degraded
        );
        let _ = writeln!(
            out,
            "  scratch high-water {} bytes",
            p.scratch_high_water_bytes
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enabled;

    #[test]
    fn scope_accumulates_and_uninstalls() {
        let scope = ProfileScope::enter();
        record_seek();
        record_scan_rows(40);
        record_bytes(512);
        record_preagg_hit();
        record_preagg_skip();
        let p = scope.finish();
        if enabled() {
            let p = p.expect("outermost scope is armed");
            assert_eq!(p.storage_seeks, 1);
            assert_eq!(p.rows_scanned, 40);
            assert_eq!(p.bytes_decoded, 512);
            assert_eq!(p.preagg_hits, 1);
            assert_eq!(p.preagg_skips, 1);
        } else {
            assert!(p.is_none());
        }
        // Records outside any scope are dropped, not crashed.
        record_seek();
    }

    #[test]
    fn nested_scope_is_passive() {
        let outer = ProfileScope::enter();
        record_scan_rows(1);
        {
            let inner = ProfileScope::enter();
            record_scan_rows(10);
            assert!(inner.finish().is_none(), "nested scope must be passive");
        }
        record_scan_rows(100);
        if enabled() {
            let p = outer.finish().unwrap();
            assert_eq!(p.rows_scanned, 111, "all records land in the outer scope");
        }
    }

    #[test]
    fn store_folds_and_renders() {
        let store = ProfileStore::new();
        let reg = LabelRegistry::new();
        let id = reg.resolve("d1");
        let mut p = CostProfile {
            rows_scanned: 10,
            total_ns: 1_000_000,
            ..Default::default()
        };
        p.stage_ns[Stage::StorageSeek.index()] = 600_000;
        store.fold(id, &p);
        store.fold(id, &p);
        let (requests, agg) = store.aggregate(id);
        if enabled() {
            assert_eq!(requests, 2);
            assert_eq!(agg.rows_scanned, 20);
            assert_eq!(agg.stage_ns[Stage::StorageSeek.index()], 1_200_000);
            let (all_req, all) = store.aggregate_all();
            assert_eq!(all_req, 2);
            assert_eq!(all.total_ns, 2_000_000);
        }
    }

    #[test]
    fn explain_analyze_handles_no_samples() {
        let store = ProfileStore::new();
        let text = store.render_explain_analyze("never-deployed");
        assert!(text.contains("EXPLAIN ANALYZE deployment \"never-deployed\""));
        assert!(text.contains("(no samples)"));
    }
}
