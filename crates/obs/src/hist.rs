//! Log-linear (HDR-style) latency histogram.
//!
//! Values are bucketed exactly below [`LINEAR_MAX`] and log-linearly above:
//! each power-of-two range is split into [`SUB_BUCKETS`] equal-width linear
//! sub-buckets, giving a worst-case relative quantisation error of
//! `1 / SUB_BUCKETS` (6.25%) across the full `u64` range — plenty for
//! distinguishing p99 from p999 while keeping the bucket array small enough
//! (976 slots) to shard per-thread.
//!
//! The record path is a single relaxed `fetch_add` on the caller's home
//! shard plus one for the running sum; shards are merged only at snapshot
//! time, so merging N per-thread shards yields *exactly* the same counts (and
//! therefore the same percentiles) as if every sample had gone into a single
//! shard. The proptest in this module pins that property down.

use crate::flight::NUM_STAGES;
#[cfg(not(feature = "obs-off"))]
use crate::PaddedU64;
use crate::SHARDS;
#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "obs-off"))]
use std::sync::{Mutex, OnceLock};

/// Values below this are bucketed exactly (bucket index == value).
pub const LINEAR_MAX: u64 = 16;

/// Linear sub-buckets per power-of-two range.
pub const SUB_BUCKETS: usize = 16;

const SUB_SHIFT: u32 = 4; // log2(SUB_BUCKETS)

/// Total bucket count: 16 exact buckets + 16 sub-buckets for each of the 60
/// power-of-two ranges `[2^4, 2^5) .. [2^63, u64::MAX]`.
pub const NUM_BUCKETS: usize = LINEAR_MAX as usize + (64 - SUB_SHIFT as usize) * SUB_BUCKETS;

/// Maps a value to its bucket index.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_SHIFT here
    let sub = ((v >> (exp - SUB_SHIFT)) & (SUB_BUCKETS as u64 - 1)) as usize;
    LINEAR_MAX as usize + (exp - SUB_SHIFT) as usize * SUB_BUCKETS + sub
}

/// Inclusive lower bound of a bucket.
pub fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        return idx as u64;
    }
    let group = (idx - LINEAR_MAX as usize) / SUB_BUCKETS;
    let sub = (idx - LINEAR_MAX as usize) % SUB_BUCKETS;
    let exp = group as u32 + SUB_SHIFT;
    (1u64 << exp) + sub as u64 * (1u64 << (exp - SUB_SHIFT))
}

/// Representative value reported for a bucket (its midpoint).
pub fn bucket_value(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        return idx as u64;
    }
    let group = (idx - LINEAR_MAX as usize) / SUB_BUCKETS;
    let sub = (idx - LINEAR_MAX as usize) % SUB_BUCKETS;
    let exp = group as u32 + SUB_SHIFT;
    let width = 1u64 << (exp - SUB_SHIFT);
    let lower = (1u64 << exp) + sub as u64 * width;
    lower + (width - 1) / 2
}

#[cfg(not(feature = "obs-off"))]
struct Shard {
    buckets: Box<[AtomicU64]>,
    sum: PaddedU64,
}

#[cfg(not(feature = "obs-off"))]
impl Shard {
    fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Shard {
            buckets: buckets.into_boxed_slice(),
            sum: PaddedU64::default(),
        }
    }
}

/// A tail exemplar: the most recent request that landed in a bucket at or
/// above the exemplar threshold, carrying enough context (flight-recorder
/// trace id + per-stage self-times) to attribute that bucket's latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// Flight-recorder trace id of the exemplified request.
    pub trace_id: u64,
    /// The exact recorded value (not the bucket representative).
    pub value: u64,
    /// Global insertion stamp; larger is newer. Shard merging keeps the
    /// maximum stamp per bucket, so the merge is exactly "newest wins" —
    /// the same answer a single unsharded store would give.
    pub stamp: u64,
    /// Per-stage self-times of the exemplified request, indexed like
    /// [`crate::trace::Stage::ALL`].
    pub stage_self_ns: [u64; NUM_STAGES],
}

/// Per-histogram exemplar slots: one `(shard, bucket)` grid, populated only
/// for values at or above the threshold (the tail — a cold path, so a slot
/// mutex is fine; the warm record path never touches this).
#[cfg(not(feature = "obs-off"))]
struct ExemplarStore {
    threshold: AtomicU64,
    stamp: AtomicU64,
    slots: Vec<Mutex<Option<Exemplar>>>,
}

#[cfg(not(feature = "obs-off"))]
impl ExemplarStore {
    fn attach(&self, shard: usize, v: u64, trace_id: u64, stage_self_ns: &[u64; NUM_STAGES]) {
        if v < self.threshold.load(Ordering::Relaxed) {
            return;
        }
        let stamp = self.stamp.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = &self.slots[shard * NUM_BUCKETS + bucket_index(v)];
        let mut guard = slot.lock().unwrap_or_else(|p| p.into_inner());
        if guard.as_ref().is_none_or(|e| e.stamp < stamp) {
            *guard = Some(Exemplar {
                trace_id,
                value: v,
                stamp,
                stage_self_ns: *stage_self_ns,
            });
        }
    }
}

/// Sharded log-linear histogram. See the module docs for the bucket layout.
#[derive(Default)]
pub struct Histogram {
    #[cfg(not(feature = "obs-off"))]
    shards: Vec<Shard>,
    #[cfg(not(feature = "obs-off"))]
    exemplars: OnceLock<ExemplarStore>,
}

impl Histogram {
    pub fn new() -> Self {
        #[cfg(not(feature = "obs-off"))]
        {
            Histogram {
                shards: (0..SHARDS).map(|_| Shard::new()).collect(),
                exemplars: OnceLock::new(),
            }
        }
        #[cfg(feature = "obs-off")]
        Histogram {}
    }

    /// Turn on exemplar capture for values `>= threshold` (calling again
    /// just updates the threshold). Allocates the slot grid once; recording
    /// below the threshold stays a pure atomic path.
    pub fn enable_exemplars(&self, threshold: u64) {
        #[cfg(not(feature = "obs-off"))]
        {
            let store = self.exemplars.get_or_init(|| ExemplarStore {
                threshold: AtomicU64::new(threshold),
                stamp: AtomicU64::new(0),
                slots: (0..SHARDS * NUM_BUCKETS)
                    .map(|_| Mutex::new(None))
                    .collect(),
            });
            store.threshold.store(threshold, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = threshold;
    }

    /// Record one sample and, when exemplars are enabled and `v` clears the
    /// threshold, retain it as the bucket's newest exemplar.
    #[inline]
    pub fn record_with_exemplar(&self, v: u64, trace_id: u64, stage_self_ns: &[u64; NUM_STAGES]) {
        self.record(v);
        #[cfg(not(feature = "obs-off"))]
        if let Some(store) = self.exemplars.get() {
            store.attach(crate::shard_idx(), v, trace_id, stage_self_ns);
        }
        #[cfg(feature = "obs-off")]
        let _ = (trace_id, stage_self_ns);
    }

    /// Exemplar-capturing twin of [`record_in_shard`](Self::record_in_shard)
    /// — test hook for exercising the exemplar merge deterministically.
    #[doc(hidden)]
    pub fn record_exemplar_in_shard(
        &self,
        shard: usize,
        v: u64,
        trace_id: u64,
        stage_self_ns: &[u64; NUM_STAGES],
    ) {
        self.record_in_shard(shard, v);
        #[cfg(not(feature = "obs-off"))]
        if let Some(store) = self.exemplars.get() {
            store.attach(shard % SHARDS, v, trace_id, stage_self_ns);
        }
        #[cfg(feature = "obs-off")]
        let _ = (shard, trace_id, stage_self_ns);
    }

    /// Merge exemplars across shards: for every bucket with at least one
    /// exemplar, the newest (maximum stamp) wins — exactly what a single
    /// unsharded store would hold. Returns `(bucket_index, exemplar)` pairs
    /// in bucket order.
    pub fn exemplars(&self) -> Vec<(usize, Exemplar)> {
        #[cfg(not(feature = "obs-off"))]
        {
            let Some(store) = self.exemplars.get() else {
                return Vec::new();
            };
            let mut out = Vec::new();
            for bucket in 0..NUM_BUCKETS {
                let mut best: Option<Exemplar> = None;
                for shard in 0..SHARDS {
                    let guard = store.slots[shard * NUM_BUCKETS + bucket]
                        .lock()
                        .unwrap_or_else(|p| p.into_inner());
                    if let Some(e) = *guard {
                        if best.as_ref().is_none_or(|b| b.stamp < e.stamp) {
                            best = Some(e);
                        }
                    }
                }
                if let Some(e) = best {
                    out.push((bucket, e));
                }
            }
            out
        }
        #[cfg(feature = "obs-off")]
        Vec::new()
    }

    /// Record one sample. Two relaxed atomic adds on the caller's home shard.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "obs-off"))]
        {
            let shard = &self.shards[crate::shard_idx()];
            shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            shard.sum.0.fetch_add(v, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Record into an explicit shard — test/bench hook for exercising the
    /// shard-merge path deterministically from a single thread.
    #[doc(hidden)]
    pub fn record_in_shard(&self, shard: usize, v: u64) {
        let shard = shard % SHARDS;
        #[cfg(not(feature = "obs-off"))]
        {
            let shard = &self.shards[shard];
            shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            shard.sum.0.fetch_add(v, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = (shard, v);
    }

    /// Merge all shards into an owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(not(feature = "obs-off"))]
        {
            let mut counts = vec![0u64; NUM_BUCKETS];
            let mut total = 0u64;
            let mut sum = 0u64;
            for shard in &self.shards {
                for (acc, b) in counts.iter_mut().zip(shard.buckets.iter()) {
                    let c = b.load(Ordering::Relaxed);
                    *acc += c;
                    total += c;
                }
                sum += shard.sum.0.load(Ordering::Relaxed);
            }
            HistogramSnapshot { counts, total, sum }
        }
        #[cfg(feature = "obs-off")]
        HistogramSnapshot {
            counts: vec![0u64; NUM_BUCKETS],
            total: 0,
            sum: 0,
        }
    }
}

/// An owned, immutable merge of a histogram's shards.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Value at quantile `q` in `[0, 1]` (bucket representative). Returns 0
    /// for an empty snapshot.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // rank of the target sample, 1-based, matching the "nearest-rank"
        // definition the bench harness uses
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(idx);
            }
        }
        bucket_value(NUM_BUCKETS - 1)
    }

    /// Per-bucket difference against an earlier snapshot of the same
    /// histogram — used to isolate the samples recorded in a window of time.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(earlier.counts.iter())
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let total = counts.iter().sum();
        HistogramSnapshot {
            counts,
            total,
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_index_is_monotonic_and_exact_below_linear_max() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_value(v as usize), v);
        }
        let mut last = 0usize;
        for exp in 4..63 {
            for off in [0u64, 1, 7, (1 << exp) - 1] {
                let v = (1u64 << exp) + off.min((1 << exp) - 1);
                let idx = bucket_index(v);
                assert!(idx >= last, "index must not decrease: v={v} idx={idx}");
                assert!(idx < NUM_BUCKETS);
                last = idx;
            }
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_value_relative_error_bounded() {
        // representative is within one sub-bucket width of the true value
        for &v in &[17u64, 100, 999, 12_345, 987_654, 10u64.pow(9), u64::MAX / 3] {
            let rep = bucket_value(bucket_index(v));
            let err = rep.abs_diff(v) as f64 / v as f64;
            assert!(
                err <= 1.0 / SUB_BUCKETS as f64 + 1e-9,
                "v={v} rep={rep} err={err}"
            );
        }
    }

    #[test]
    fn percentile_on_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        if !crate::enabled() {
            assert_eq!(snap.count(), 0);
            return;
        }
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.sum(), 500_500);
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0), (0.999, 999.0)] {
            let got = snap.percentile(q) as f64;
            let err = (got - exact).abs() / exact;
            assert!(err <= 1.0 / SUB_BUCKETS as f64, "q={q} got={got} err={err}");
        }
    }

    #[test]
    fn delta_isolates_new_samples() {
        let h = Histogram::new();
        h.record(10);
        h.record(10_000);
        let before = h.snapshot();
        for _ in 0..100 {
            h.record(500);
        }
        let d = h.snapshot().delta(&before);
        if crate::enabled() {
            assert_eq!(d.count(), 100);
            assert_eq!(d.sum(), 50_000);
            assert_eq!(bucket_index(d.percentile(0.5)), bucket_index(500));
        }
    }

    #[test]
    fn exemplars_respect_threshold_and_newest_wins() {
        let h = Histogram::new();
        assert!(h.exemplars().is_empty(), "no exemplars before enabling");
        h.enable_exemplars(100);
        h.record_with_exemplar(50, 1, &[0; NUM_STAGES]); // below threshold
        h.record_with_exemplar(5_000, 2, &[7; NUM_STAGES]);
        h.record_with_exemplar(5_001, 3, &[9; NUM_STAGES]); // same bucket, newer
        let ex = h.exemplars();
        if !crate::enabled() {
            assert!(ex.is_empty());
            return;
        }
        assert_eq!(ex.len(), 1);
        let (bucket, e) = ex[0];
        assert_eq!(bucket, bucket_index(5_001));
        assert_eq!(e.trace_id, 3);
        assert_eq!(e.value, 5_001);
        assert_eq!(e.stage_self_ns, [9; NUM_STAGES]);
    }

    proptest! {
        /// Satellite: merged per-thread shards must report the same p50/p99
        /// as a single-shard oracle within one bucket's relative error.
        #[test]
        fn merged_shards_match_single_shard_oracle(
            samples in proptest::collection::vec(1u64..1_000_000_000, 1..400),
        ) {
            if !crate::enabled() {
                return Ok(());
            }
            let sharded = Histogram::new();
            let oracle = Histogram::new();
            for (i, &v) in samples.iter().enumerate() {
                sharded.record_in_shard(i % SHARDS, v);
                oracle.record_in_shard(0, v);
            }
            let a = sharded.snapshot();
            let b = oracle.snapshot();
            prop_assert_eq!(a.count(), b.count());
            prop_assert_eq!(a.sum(), b.sum());
            for q in [0.5f64, 0.9, 0.99, 0.999] {
                let (pa, pb) = (a.percentile(q), b.percentile(q));
                // merging is exact at bucket granularity, so the two must
                // agree to the bucket — stronger than the one-bucket bound
                prop_assert_eq!(pa, pb, "q={}", q);
            }
            // and both must track the true nearest-rank percentile within
            // one sub-bucket of relative error
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.5f64, 0.99] {
                let rank = ((q * sorted.len() as f64).ceil() as usize)
                    .clamp(1, sorted.len());
                let truth = sorted[rank - 1];
                let got = a.percentile(q);
                let err = got.abs_diff(truth) as f64 / truth as f64;
                prop_assert!(
                    err <= 1.0 / SUB_BUCKETS as f64 + 1e-9,
                    "q={} truth={} got={} err={}", q, truth, got, err
                );
            }
        }

        /// Satellite: exemplars merged across shards must equal a
        /// single-shard oracle — newest (max stamp) wins per bucket, and
        /// both must agree with a sequential last-writer-wins model.
        #[test]
        fn merged_exemplars_match_single_shard_oracle(
            samples in proptest::collection::vec(1u64..1_000_000, 1..300),
        ) {
            if !crate::enabled() {
                return Ok(());
            }
            let sharded = Histogram::new();
            let oracle = Histogram::new();
            sharded.enable_exemplars(0);
            oracle.enable_exemplars(0);
            let mut model = std::collections::BTreeMap::new();
            for (i, &v) in samples.iter().enumerate() {
                let trace_id = i as u64 + 1;
                let stages = [v; NUM_STAGES];
                sharded.record_exemplar_in_shard(i % SHARDS, v, trace_id, &stages);
                oracle.record_exemplar_in_shard(0, v, trace_id, &stages);
                model.insert(bucket_index(v), (trace_id, v));
            }
            let a = sharded.exemplars();
            let b = oracle.exemplars();
            prop_assert_eq!(a.len(), b.len());
            prop_assert_eq!(a.len(), model.len());
            for (((ba, ea), (bb, eb)), (bm, (tid, v))) in
                a.iter().zip(b.iter()).zip(model.iter())
            {
                prop_assert_eq!(ba, bb);
                prop_assert_eq!(ba, bm);
                prop_assert_eq!(ea.trace_id, eb.trace_id);
                prop_assert_eq!(ea.trace_id, *tid);
                prop_assert_eq!(ea.value, *v);
                prop_assert_eq!(ea.stamp, eb.stamp);
            }
        }
    }
}
