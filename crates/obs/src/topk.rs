//! Heavy-hitter tracking: the SpaceSaving top-K sketch.
//!
//! Hot deployments and hot partition keys must be identifiable without an
//! unbounded map (a per-key HashMap over partition keys is exactly the
//! cardinality bomb the labeled-metric registry avoids). SpaceSaving
//! (Metwally et al., "Efficient computation of frequent and top-k elements
//! in data streams") keeps a fixed set of `capacity` monitored keys; an
//! unmonitored arrival evicts the current minimum and inherits its count as
//! its error bound. The classic guarantees, checked by the proptest oracle
//! in `tests/workload_attribution.rs`:
//!
//! * `estimate - err <= true_count <= estimate` for every monitored key;
//! * any key whose true count exceeds `observed / capacity` is monitored.
//!
//! The sketch takes one uncontended mutex per offer (requests are
//! millisecond-scale; one ~20 ns lock is noise against the 0.5 % obs
//! budget) and allocates only when a *new* key enters the monitored set —
//! steady-state offers on monitored keys are a HashMap probe and a counter
//! bump. Under `obs-off`, [`SpaceSaving::offer`] compiles to a no-op.

#[cfg(not(feature = "obs-off"))]
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// One monitored heavy hitter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopEntry {
    pub key: String,
    /// Estimated count (an over-estimate: `count - err <= true <= count`).
    pub count: u64,
    /// Maximum over-estimation inherited from the evicted minimum.
    pub err: u64,
}

#[cfg(not(feature = "obs-off"))]
#[derive(Default)]
struct Inner {
    /// Monitored entries, unordered; `index` maps key → position.
    entries: Vec<TopEntry>,
    index: HashMap<String, usize>,
    observed: u64,
}

/// A fixed-capacity SpaceSaving sketch over string keys.
pub struct SpaceSaving {
    capacity: usize,
    #[cfg(not(feature = "obs-off"))]
    inner: Mutex<Inner>,
    #[cfg(feature = "obs-off")]
    _inner: Mutex<()>,
}

impl SpaceSaving {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SpaceSaving capacity must be positive");
        SpaceSaving {
            capacity,
            #[cfg(not(feature = "obs-off"))]
            inner: Mutex::new(Inner::default()),
            #[cfg(feature = "obs-off")]
            _inner: Mutex::new(()),
        }
    }

    /// The process-wide sketch over deployment names (one offer per
    /// request).
    pub fn hot_deployments() -> &'static SpaceSaving {
        static GLOBAL: OnceLock<SpaceSaving> = OnceLock::new();
        GLOBAL.get_or_init(|| SpaceSaving::new(32))
    }

    /// The process-wide sketch over `deployment:partition-key` strings.
    pub fn hot_keys() -> &'static SpaceSaving {
        static GLOBAL: OnceLock<SpaceSaving> = OnceLock::new();
        GLOBAL.get_or_init(|| SpaceSaving::new(64))
    }

    /// Count one arrival of `key`.
    #[inline]
    pub fn offer(&self, key: &str) {
        self.offer_weighted(key, 1);
    }

    /// Count `w` arrivals of `key` at once.
    pub fn offer_weighted(&self, key: &str, w: u64) {
        #[cfg(not(feature = "obs-off"))]
        {
            if w == 0 {
                return;
            }
            let mut inner = self.lock();
            inner.observed += w;
            if let Some(&i) = inner.index.get(key) {
                inner.entries[i].count += w;
                return;
            }
            if inner.entries.len() < self.capacity {
                let i = inner.entries.len();
                inner.entries.push(TopEntry {
                    key: key.to_string(),
                    count: w,
                    err: 0,
                });
                inner.index.insert(key.to_string(), i);
                return;
            }
            // Evict the minimum: the newcomer inherits its count as the
            // error bound (it may have arrived up to `min` times while the
            // slot belonged to someone else).
            let (mi, min) = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.count)
                .map(|(i, e)| (i, e.count))
                .unwrap_or((0, 0));
            let old_key = std::mem::replace(&mut inner.entries[mi].key, key.to_string());
            inner.entries[mi].err = min;
            inner.entries[mi].count = min + w;
            inner.index.remove(&old_key);
            inner.index.insert(key.to_string(), mi);
        }
        #[cfg(feature = "obs-off")]
        let _ = (key, w);
    }

    /// The top `k` monitored keys, highest estimate first (ties broken by
    /// key for determinism).
    pub fn top(&self, k: usize) -> Vec<TopEntry> {
        #[cfg(not(feature = "obs-off"))]
        {
            let inner = self.lock();
            let mut out = inner.entries.clone();
            out.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
            out.truncate(k);
            out
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = k;
            Vec::new()
        }
    }

    /// The estimate for `key`, if monitored.
    pub fn estimate(&self, key: &str) -> Option<TopEntry> {
        #[cfg(not(feature = "obs-off"))]
        {
            let inner = self.lock();
            inner.index.get(key).map(|&i| inner.entries[i].clone())
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = key;
            None
        }
    }

    /// Total weight offered so far.
    pub fn observed(&self) -> u64 {
        #[cfg(not(feature = "obs-off"))]
        {
            self.lock().observed
        }
        #[cfg(feature = "obs-off")]
        0
    }

    /// Monitored-set capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop every monitored key and the observed count.
    pub fn reset(&self) {
        #[cfg(not(feature = "obs-off"))]
        {
            let mut inner = self.lock();
            inner.entries.clear();
            inner.index.clear();
            inner.observed = 0;
        }
    }

    #[cfg(not(feature = "obs-off"))]
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enabled;

    #[test]
    fn exact_within_capacity() {
        let s = SpaceSaving::new(8);
        for _ in 0..5 {
            s.offer("a");
        }
        s.offer_weighted("b", 3);
        s.offer("c");
        if enabled() {
            let top = s.top(10);
            assert_eq!(top.len(), 3);
            assert_eq!(
                top[0],
                TopEntry {
                    key: "a".into(),
                    count: 5,
                    err: 0
                }
            );
            assert_eq!(
                top[1],
                TopEntry {
                    key: "b".into(),
                    count: 3,
                    err: 0
                }
            );
            assert_eq!(s.observed(), 9);
        } else {
            assert!(s.top(10).is_empty());
        }
    }

    #[test]
    fn eviction_keeps_heavy_hitter_with_error_bound() {
        let s = SpaceSaving::new(2);
        for _ in 0..100 {
            s.offer("heavy");
        }
        // 50 distinct light keys churn through the second slot.
        for i in 0..50 {
            s.offer(&format!("light-{i}"));
        }
        if enabled() {
            let heavy = s.estimate("heavy").expect("heavy key must stay monitored");
            assert!(heavy.count >= 100);
            assert!(heavy.count - heavy.err <= 100);
            assert_eq!(s.observed(), 150);
        }
    }

    #[test]
    fn reset_clears_state() {
        let s = SpaceSaving::new(2);
        s.offer("x");
        s.reset();
        assert_eq!(s.observed(), 0);
        assert!(s.top(5).is_empty());
    }
}
