//! Always-on per-request flight recorder + slow-query post-mortems.
//!
//! The span tracer ([`crate::trace`]) samples 1 in 64 requests, so it almost
//! never catches the exact request that landed in the slow bucket. The flight
//! recorder closes that gap: **every** request carries a fixed-size binary
//! event ring ([`RING_EVENTS`] entries, last-N semantics) recording stage
//! enters/exits, storage seeks and scan lengths, pre-aggregation hits, fault
//! injections, retries, and deadline probes. The ring lives in the pooled
//! per-request scratch ([`Recorder`]), so the warm path performs **zero heap
//! allocations**: recording one event is a thread-local check plus an array
//! write.
//!
//! On fast success the ring is simply *dropped* (overwritten by the next
//! request). When a request times out, degrades, fails over, errors, or
//! exceeds the slow-query threshold, the engine *dumps* it as a structured
//! [`PostMortem`] into a bounded process-wide slow-query log, queryable via
//! [`slow_log`] / [`crate::Registry::slow_queries`] and rendered by
//! [`render_report`] (the `obs_report` tool).
//!
//! # Exact attribution
//!
//! Per-stage self-times are maintained *incrementally* as events arrive (a
//! fixed stage stack plus a time cursor), not reconstructed from the ring —
//! so attribution stays exact even after the ring wraps. The invariant every
//! post-mortem upholds: `sum(stage_self_ns) + other_ns == total_ns`, where
//! `other` is time outside any instrumented stage.
//!
//! Under the `obs-off` feature every record path in this module compiles to
//! an inlined no-op and [`Recorder`] carries no state.

use crate::trace::Stage;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

/// Events retained per request. The ring keeps the **last** `RING_EVENTS`
/// events (older ones are overwritten and counted in `dropped_events`), since
/// the moments just before a deadline fires matter most.
pub const RING_EVENTS: usize = 64;

/// Post-mortems retained in the process-wide slow-query log (FIFO eviction).
pub const SLOW_LOG_CAPACITY: usize = 256;

/// Attribution slots: one per [`Stage`] (time outside every stage is
/// reported separately as "other").
pub const NUM_STAGES: usize = Stage::ALL.len();

/// Default slow-query threshold: the paper's 20 ms decision-serving budget.
pub const DEFAULT_SLOW_QUERY_THRESHOLD_NS: u64 = 20_000_000;

/// What happened inside a request, one event per record call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A pipeline stage began (`a` = [`Stage`] index).
    StageEnter,
    /// A pipeline stage ended (`a` = [`Stage`] index).
    StageExit,
    /// A storage index seek (`a` = index id).
    StorageSeek,
    /// One window scan completed (`b` = rows visited).
    ScanRows,
    /// Pre-aggregation served the window (`a` = window id).
    PreaggHit,
    /// Pre-aggregation could not serve the window (`a` = window id).
    PreaggSkip,
    /// A chaos fault fired (`a` = injection-point index, `b` = delay ns).
    FaultInjected,
    /// A transient error triggered a retry (`b` = attempt number).
    Retry,
    /// A read failed over to a replica.
    Failover,
    /// A deadline probe ran (`b` = remaining budget ns).
    DeadlineProbe,
    /// The request entered degraded mode.
    Degraded,
    /// Plan cache hit.
    PlanCacheHit,
    /// Plan cache miss (full plan build).
    PlanCacheMiss,
    /// A window was served by its compiled bytecode program (`a` = window
    /// id).
    CompiledWindow,
    /// A window fell back to the interpreted path because its plan did not
    /// specialize (`a` = window id).
    CompiledFallback,
}

impl FlightEventKind {
    pub fn name(self) -> &'static str {
        match self {
            FlightEventKind::StageEnter => "stage_enter",
            FlightEventKind::StageExit => "stage_exit",
            FlightEventKind::StorageSeek => "storage_seek",
            FlightEventKind::ScanRows => "scan_rows",
            FlightEventKind::PreaggHit => "preagg_hit",
            FlightEventKind::PreaggSkip => "preagg_skip",
            FlightEventKind::FaultInjected => "fault_injected",
            FlightEventKind::Retry => "retry",
            FlightEventKind::Failover => "failover",
            FlightEventKind::DeadlineProbe => "deadline_probe",
            FlightEventKind::Degraded => "degraded",
            FlightEventKind::PlanCacheHit => "plan_cache_hit",
            FlightEventKind::PlanCacheMiss => "plan_cache_miss",
            FlightEventKind::CompiledWindow => "compiled_window",
            FlightEventKind::CompiledFallback => "compiled_fallback",
        }
    }
}

/// One recorded event: a nanosecond timestamp relative to request start plus
/// two payload words whose meaning depends on the kind.
#[derive(Clone, Copy, Debug)]
pub struct FlightEvent {
    pub t_ns: u64,
    pub kind: FlightEventKind,
    pub a: u32,
    pub b: u64,
}

#[cfg(not(feature = "obs-off"))]
const EMPTY_EVENT: FlightEvent = FlightEvent {
    t_ns: 0,
    kind: FlightEventKind::StageEnter,
    a: 0,
    b: 0,
};

/// Stage-stack depth tracked for attribution. Deeper nesting than this keeps
/// counting time against the deepest tracked stage.
#[cfg(not(feature = "obs-off"))]
const STACK_DEPTH: usize = 8;

#[cfg(not(feature = "obs-off"))]
struct Inner {
    t0: Instant,
    trace_id: u64,
    ring: [FlightEvent; RING_EVENTS],
    /// Events currently held (`<= RING_EVENTS`).
    len: usize,
    /// Next write slot (== oldest event once the ring has wrapped).
    next: usize,
    dropped: u64,
    stage_self_ns: [u64; NUM_STAGES],
    stack: [u8; STACK_DEPTH],
    depth: usize,
    cursor_ns: u64,
    retries: u32,
    failovers: u32,
    faults: u32,
    degraded: u32,
}

#[cfg(not(feature = "obs-off"))]
impl Inner {
    fn new() -> Box<Inner> {
        Box::new(Inner {
            t0: Instant::now(),
            trace_id: 0,
            ring: [EMPTY_EVENT; RING_EVENTS],
            len: 0,
            next: 0,
            dropped: 0,
            stage_self_ns: [0; NUM_STAGES],
            stack: [0; STACK_DEPTH],
            depth: 0,
            cursor_ns: 0,
            retries: 0,
            failovers: 0,
            faults: 0,
            degraded: 0,
        })
    }

    fn reset(&mut self, trace_id: u64) {
        self.t0 = Instant::now();
        self.trace_id = trace_id;
        self.len = 0;
        self.next = 0;
        self.dropped = 0;
        self.stage_self_ns = [0; NUM_STAGES];
        self.depth = 0;
        self.cursor_ns = 0;
        self.retries = 0;
        self.failovers = 0;
        self.faults = 0;
        self.degraded = 0;
    }

    /// Charge the interval since the cursor to the innermost open stage.
    #[inline]
    fn charge(&mut self, t_ns: u64) {
        if self.depth > 0 {
            let top = self.stack[(self.depth - 1).min(STACK_DEPTH - 1)] as usize;
            if top < NUM_STAGES {
                self.stage_self_ns[top] += t_ns.saturating_sub(self.cursor_ns);
            }
        }
        self.cursor_ns = t_ns;
    }

    // HOT: one event per scan/probe/stage transition — array writes only.
    #[inline]
    fn push(&mut self, kind: FlightEventKind, a: u32, b: u64) {
        let t_ns = self.t0.elapsed().as_nanos() as u64;
        match kind {
            FlightEventKind::StageEnter => {
                self.charge(t_ns);
                if self.depth < STACK_DEPTH {
                    self.stack[self.depth] = a as u8;
                }
                self.depth += 1;
            }
            FlightEventKind::StageExit => {
                self.charge(t_ns);
                self.depth = self.depth.saturating_sub(1);
            }
            FlightEventKind::Retry => self.retries += 1,
            FlightEventKind::Failover => self.failovers += 1,
            FlightEventKind::FaultInjected => self.faults += 1,
            FlightEventKind::Degraded => self.degraded += 1,
            _ => {}
        }
        self.ring[self.next] = FlightEvent { t_ns, kind, a, b };
        self.next = (self.next + 1) % RING_EVENTS;
        if self.len < RING_EVENTS {
            self.len += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// Retained events, oldest first.
    fn events(&self) -> Vec<FlightEvent> {
        let start = if self.len == RING_EVENTS {
            self.next
        } else {
            0
        };
        (0..self.len)
            .map(|i| self.ring[(start + i) % RING_EVENTS])
            .collect()
    }
}

#[cfg(not(feature = "obs-off"))]
thread_local! {
    static FLIGHT: std::cell::RefCell<Option<Box<Inner>>> =
        const { std::cell::RefCell::new(None) };
}

#[cfg(not(feature = "obs-off"))]
fn next_trace_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Recorder + scope
// ---------------------------------------------------------------------------

/// The pooled per-request recorder handle. Lives inside the engine's request
/// scratch so its one ring allocation happens when a pooled scratch is first
/// used (warm-up), never on the steady-state path. Under `obs-off` this is a
/// zero-sized no-op.
#[derive(Default)]
pub struct Recorder {
    #[cfg(not(feature = "obs-off"))]
    inner: Option<Box<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").finish_non_exhaustive()
    }
}

impl Recorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a full post-mortem dump from the events still held by this
    /// recorder. Cold path: allocates freely. Returns `None` when the
    /// summary does not belong to this recorder's last flight (or under
    /// `obs-off`).
    pub fn post_mortem(&self, outcome: Outcome, summary: &FlightSummary) -> Option<PostMortem> {
        #[cfg(not(feature = "obs-off"))]
        {
            if !summary.active {
                return None;
            }
            let inner = self.inner.as_ref()?;
            if inner.trace_id != summary.trace_id {
                return None;
            }
            Some(PostMortem {
                trace_id: summary.trace_id,
                outcome,
                culprit: summary.culprit(),
                total_ns: summary.total_ns,
                stage_self_ns: summary.stage_self_ns,
                other_ns: summary.other_ns,
                retries: summary.retries,
                failovers: summary.failovers,
                faults: summary.faults,
                dropped_events: summary.dropped_events,
                events: inner.events(),
                note: String::new(),
            })
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = (outcome, summary);
            None
        }
    }
}

/// Per-request accounting produced by [`FlightScope::finish`]. Fixed-size
/// (no heap) so the engine can inspect it on the warm path before deciding
/// whether to dump.
#[derive(Clone, Copy, Debug)]
pub struct FlightSummary {
    /// False when this scope was nested inside another (or under `obs-off`);
    /// all other fields are zero then.
    pub active: bool,
    pub trace_id: u64,
    pub total_ns: u64,
    /// Exclusive (self) time per [`Stage`], indexed by `Stage::index()`.
    pub stage_self_ns: [u64; NUM_STAGES],
    /// `total_ns - sum(stage_self_ns)`: time outside every instrumented
    /// stage. The three fields always sum exactly to `total_ns`.
    pub other_ns: u64,
    pub retries: u32,
    pub failovers: u32,
    pub faults: u32,
    pub degraded: u32,
    pub dropped_events: u64,
}

impl FlightSummary {
    fn inactive() -> Self {
        FlightSummary {
            active: false,
            trace_id: 0,
            total_ns: 0,
            stage_self_ns: [0; NUM_STAGES],
            other_ns: 0,
            retries: 0,
            failovers: 0,
            faults: 0,
            degraded: 0,
            dropped_events: 0,
        }
    }

    /// The stage that consumed the most self-time, or `"other"` when
    /// un-instrumented time dominates.
    pub fn culprit(&self) -> &'static str {
        let (mut best, mut best_ns) = ("other", self.other_ns);
        for (i, &ns) in self.stage_self_ns.iter().enumerate() {
            if ns > best_ns {
                best = Stage::ALL[i].name();
                best_ns = ns;
            }
        }
        best
    }
}

/// Installs a [`Recorder`] as the thread's active flight recorder for one
/// request. Panic-safe: dropping the scope (normally via
/// [`finish`](Self::finish), or by unwinding) uninstalls the recorder and
/// returns its ring to the pooled handle. A scope entered while another is
/// active on the same thread is passive — its events land in the outer
/// request's ring.
pub struct FlightScope<'a> {
    #[cfg(not(feature = "obs-off"))]
    rec: &'a mut Recorder,
    #[cfg(not(feature = "obs-off"))]
    armed: bool,
    #[cfg(feature = "obs-off")]
    _rec: std::marker::PhantomData<&'a mut Recorder>,
}

impl<'a> FlightScope<'a> {
    /// Begin recording into `rec`. Allocates the ring the first time a given
    /// recorder is used; warm reuse is allocation-free.
    #[inline]
    pub fn enter(rec: &'a mut Recorder) -> Self {
        #[cfg(not(feature = "obs-off"))]
        {
            let already = FLIGHT.with(|f| f.borrow().is_some());
            if already {
                return FlightScope { rec, armed: false };
            }
            let mut inner = rec.inner.take().unwrap_or_else(Inner::new);
            inner.reset(next_trace_id());
            FLIGHT.with(|f| *f.borrow_mut() = Some(inner));
            FlightScope { rec, armed: true }
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = rec;
            FlightScope {
                _rec: std::marker::PhantomData,
            }
        }
    }

    /// Stop recording and return the request's accounting. The event ring
    /// stays inside the recorder (for [`Recorder::post_mortem`]) until the
    /// next [`enter`](Self::enter) resets it.
    #[inline]
    #[cfg_attr(feature = "obs-off", allow(unused_mut))]
    pub fn finish(mut self) -> FlightSummary {
        #[cfg(not(feature = "obs-off"))]
        {
            if !self.armed {
                return FlightSummary::inactive();
            }
            self.armed = false;
            let Some(mut inner) = FLIGHT.with(|f| f.borrow_mut().take()) else {
                return FlightSummary::inactive();
            };
            let total_ns = inner.t0.elapsed().as_nanos() as u64;
            // A stage left open (panic inside a span, or a timeout surfacing
            // mid-stage) is charged through to the end of the request.
            if inner.depth > 0 {
                inner.charge(total_ns);
            }
            let stage_sum: u64 = inner.stage_self_ns.iter().sum();
            let summary = FlightSummary {
                active: true,
                trace_id: inner.trace_id,
                total_ns,
                stage_self_ns: inner.stage_self_ns,
                other_ns: total_ns.saturating_sub(stage_sum),
                retries: inner.retries,
                failovers: inner.failovers,
                faults: inner.faults,
                degraded: inner.degraded,
                dropped_events: inner.dropped,
            };
            self.rec.inner = Some(inner);
            summary
        }
        #[cfg(feature = "obs-off")]
        FlightSummary::inactive()
    }
}

impl Drop for FlightScope<'_> {
    fn drop(&mut self) {
        #[cfg(not(feature = "obs-off"))]
        if self.armed {
            // Unwound without finish(): uninstall so a later request on this
            // thread cannot write into a dead ring, and keep the allocation.
            if let Some(inner) = FLIGHT.with(|f| f.borrow_mut().take()) {
                self.rec.inner = Some(inner);
            }
        }
    }
}

/// Record one event into the thread's active flight recorder, if any.
/// Outside a [`FlightScope`] this is a thread-local check and nothing else.
// HOT: called per scan / per probe / per stage transition, never per row.
#[inline]
pub fn event(kind: FlightEventKind, a: u32, b: u64) {
    #[cfg(not(feature = "obs-off"))]
    FLIGHT.with(|f| {
        if let Some(inner) = f.borrow_mut().as_mut() {
            inner.push(kind, a, b);
        }
    });
    #[cfg(feature = "obs-off")]
    let _ = (kind, a, b);
}

/// [`event`] shorthand used by [`crate::trace::span`].
#[cfg(not(feature = "obs-off"))]
#[inline]
pub(crate) fn stage_enter(stage: Stage) {
    event(FlightEventKind::StageEnter, stage.index() as u32, 0);
}

/// [`event`] shorthand used by [`crate::trace::span`].
#[cfg(not(feature = "obs-off"))]
#[inline]
pub(crate) fn stage_exit(stage: Stage) {
    event(FlightEventKind::StageExit, stage.index() as u32, 0);
}

// ---------------------------------------------------------------------------
// Slow-query threshold
// ---------------------------------------------------------------------------

static SLOW_THRESHOLD_NS: AtomicU64 = AtomicU64::new(DEFAULT_SLOW_QUERY_THRESHOLD_NS);

/// Requests at or above this duration dump a post-mortem even on success.
pub fn slow_query_threshold_ns() -> u64 {
    SLOW_THRESHOLD_NS.load(Ordering::Relaxed)
}

/// Change the slow-query threshold. `0` dumps every request (report tooling);
/// `u64::MAX` disables duration-triggered dumps.
pub fn set_slow_query_threshold_ns(ns: u64) {
    SLOW_THRESHOLD_NS.store(ns, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Post-mortems + slow-query log
// ---------------------------------------------------------------------------

/// Why a request was dumped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The deadline budget was exhausted (`Error::Timeout`).
    Timeout,
    /// The request failed with a non-timeout error.
    Failed,
    /// The request succeeded but entered degraded mode.
    Degraded,
    /// The request succeeded but failed over to a replica.
    Failover,
    /// The request succeeded but exceeded the slow-query threshold.
    Slow,
    /// The consistency sentinel's oracle replay disagreed bit-for-bit with
    /// the row this request served.
    Divergence,
}

impl Outcome {
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Timeout => "timeout",
            Outcome::Failed => "failed",
            Outcome::Degraded => "degraded",
            Outcome::Failover => "failover",
            Outcome::Slow => "slow",
            Outcome::Divergence => "consistency_divergence",
        }
    }
}

/// A dumped request: exact per-stage attribution plus the retained event
/// ring. `sum(stage_self_ns) + other_ns == total_ns` always holds.
#[derive(Clone, Debug)]
pub struct PostMortem {
    pub trace_id: u64,
    pub outcome: Outcome,
    /// The stage that consumed the most self-time (or `"other"`).
    pub culprit: &'static str,
    pub total_ns: u64,
    pub stage_self_ns: [u64; NUM_STAGES],
    pub other_ns: u64,
    pub retries: u32,
    pub failovers: u32,
    pub faults: u32,
    /// Events overwritten after the ring filled.
    pub dropped_events: u64,
    /// Retained events, oldest first.
    pub events: Vec<FlightEvent>,
    /// Free-form annotation (empty for engine dumps). Consistency
    /// divergences carry both row encodings here so the mismatch is
    /// diagnosable straight from the log.
    pub note: String,
}

impl PostMortem {
    /// Human-readable dump, one attribution line per stage plus the ring.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let ms = |ns: u64| ns as f64 / 1e6;
        let _ = writeln!(
            out,
            "post-mortem trace={} outcome={} culprit={} total={:.3}ms \
             retries={} failovers={} faults={}",
            self.trace_id,
            self.outcome.name(),
            self.culprit,
            ms(self.total_ns),
            self.retries,
            self.failovers,
            self.faults,
        );
        if !self.note.is_empty() {
            let _ = writeln!(out, "  note: {}", self.note);
        }
        for (i, &ns) in self.stage_self_ns.iter().enumerate() {
            let pct = 100.0 * ns as f64 / self.total_ns.max(1) as f64;
            let _ = writeln!(
                out,
                "  stage {:<16} {:>10.3}ms {:>5.1}%",
                Stage::ALL[i].name(),
                ms(ns),
                pct
            );
        }
        let pct = 100.0 * self.other_ns as f64 / self.total_ns.max(1) as f64;
        let _ = writeln!(
            out,
            "  stage {:<16} {:>10.3}ms {:>5.1}%",
            "other",
            ms(self.other_ns),
            pct
        );
        let _ = writeln!(
            out,
            "  events ({} retained, {} dropped):",
            self.events.len(),
            self.dropped_events
        );
        for e in &self.events {
            let _ = writeln!(
                out,
                "    +{:>10.3}ms {:<14} a={} b={}",
                ms(e.t_ns),
                e.kind.name(),
                e.a,
                e.b
            );
        }
        out
    }

    /// JSON dump with the same fields as [`render_text`](Self::render_text).
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"trace_id\":{},\"outcome\":\"{}\",\"culprit\":\"{}\",\"total_ns\":{},",
            self.trace_id,
            self.outcome.name(),
            self.culprit,
            self.total_ns
        );
        let _ = write!(out, "\"stages\":{{");
        for (i, &ns) in self.stage_self_ns.iter().enumerate() {
            let _ = write!(out, "\"{}\":{ns},", Stage::ALL[i].name());
        }
        let _ = write!(out, "\"other\":{}}},", self.other_ns);
        let _ = write!(
            out,
            "\"retries\":{},\"failovers\":{},\"faults\":{},\"dropped_events\":{},\"note\":\"{}\",\"events\":[",
            self.retries,
            self.failovers,
            self.faults,
            self.dropped_events,
            crate::escape_json_string(&self.note)
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"t_ns\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
                e.t_ns,
                e.kind.name(),
                e.a,
                e.b
            );
        }
        out.push_str("]}");
        out
    }
}

fn slow_log_ring() -> &'static Mutex<VecDeque<PostMortem>> {
    static RING: OnceLock<Mutex<VecDeque<PostMortem>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(SLOW_LOG_CAPACITY)))
}

static PUBLISHED: AtomicU64 = AtomicU64::new(0);

#[cfg(not(feature = "obs-off"))]
fn postmortems_counter() -> &'static std::sync::Arc<crate::Counter> {
    static C: OnceLock<std::sync::Arc<crate::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        crate::Registry::global().counter(
            "openmldb_obs_postmortems_total",
            "post-mortems dumped into the slow-query log",
        )
    })
}

/// Publish a post-mortem into the process-wide slow-query log (cold path).
pub fn publish(pm: PostMortem) {
    #[cfg(not(feature = "obs-off"))]
    {
        postmortems_counter().inc();
        PUBLISHED.fetch_add(1, Ordering::Relaxed);
        let mut ring = slow_log_ring().lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == SLOW_LOG_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(pm);
    }
    #[cfg(feature = "obs-off")]
    let _ = pm;
}

/// Retained post-mortems, oldest first.
pub fn slow_log() -> Vec<PostMortem> {
    let ring = slow_log_ring().lock().unwrap_or_else(|p| p.into_inner());
    ring.iter().cloned().collect()
}

/// Total post-mortems ever published (survives ring eviction).
pub fn published_total() -> u64 {
    PUBLISHED.load(Ordering::Relaxed)
}

/// Drop all retained post-mortems (tests and bench harnesses).
pub fn clear_slow_log() {
    slow_log_ring()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clear();
}

/// Render the slow-query log as a report. Text mode leads with a one-line
/// summary; JSON mode emits `{"published_total":..,"slow_queries":[..]}`.
pub fn render_report(json: bool) -> String {
    let log = slow_log();
    if json {
        let items: Vec<String> = log.iter().map(PostMortem::render_json).collect();
        return format!(
            "{{\"published_total\":{},\"retained\":{},\"slow_queries\":[{}]}}",
            published_total(),
            log.len(),
            items.join(",")
        );
    }
    let mut out = format!(
        "slow-query log: {} retained of {} published (threshold {:.3}ms)\n",
        log.len(),
        published_total(),
        slow_query_threshold_ns() as f64 / 1e6
    );
    for pm in &log {
        out.push_str(&pm.render_text());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "obs-off"))]
    fn sleep_us(us: u64) {
        let t = std::time::Instant::now();
        while t.elapsed().as_micros() < us as u128 {
            std::hint::spin_loop();
        }
    }

    #[test]
    #[cfg(not(feature = "obs-off"))]
    fn attribution_sums_to_total_and_survives_ring_wrap() {
        let mut rec = Recorder::new();
        let scope = FlightScope::enter(&mut rec);
        crate::trace::span(Stage::Plan, || sleep_us(200));
        // Flood the ring well past capacity: attribution must stay exact.
        for i in 0..(RING_EVENTS as u64 * 3) {
            event(FlightEventKind::DeadlineProbe, 0, i);
        }
        crate::trace::span(Stage::StorageSeek, || {
            event(FlightEventKind::ScanRows, 0, 123);
            sleep_us(200)
        });
        let summary = scope.finish();
        assert!(summary.active);
        assert!(summary.trace_id > 0);
        let sum: u64 = summary.stage_self_ns.iter().sum();
        assert_eq!(sum + summary.other_ns, summary.total_ns);
        assert!(summary.stage_self_ns[Stage::Plan.index()] >= 200_000);
        assert!(summary.stage_self_ns[Stage::StorageSeek.index()] >= 200_000);
        assert!(summary.dropped_events > 0);

        let pm = rec.post_mortem(Outcome::Slow, &summary).unwrap();
        assert_eq!(pm.trace_id, summary.trace_id);
        assert_eq!(
            pm.stage_self_ns.iter().sum::<u64>() + pm.other_ns,
            pm.total_ns
        );
        assert_eq!(pm.events.len(), RING_EVENTS);
        // last-N semantics: the newest event is the StorageSeek exit
        assert_eq!(pm.events.last().unwrap().kind, FlightEventKind::StageExit);
        let text = pm.render_text();
        assert!(text.contains("stage storage_seek"));
        let json = pm.render_json();
        assert!(json.contains("\"culprit\""));
    }

    #[test]
    #[cfg(not(feature = "obs-off"))]
    fn nested_stages_attribute_self_time_only() {
        let mut rec = Recorder::new();
        let scope = FlightScope::enter(&mut rec);
        crate::trace::span(Stage::WindowDispatch, || {
            sleep_us(150);
            crate::trace::span(Stage::Aggregate, || sleep_us(150));
        });
        let summary = scope.finish();
        let dispatch = summary.stage_self_ns[Stage::WindowDispatch.index()];
        let agg = summary.stage_self_ns[Stage::Aggregate.index()];
        assert!(dispatch >= 150_000, "dispatch self {dispatch}");
        assert!(agg >= 150_000, "agg self {agg}");
        // exclusive times: the parent does not also absorb the child
        assert!(
            summary.stage_self_ns.iter().sum::<u64>() <= summary.total_ns,
            "self-times exceed total"
        );
    }

    #[test]
    #[cfg(not(feature = "obs-off"))]
    fn nested_scope_is_passive_and_events_land_in_outer_ring() {
        let mut outer = Recorder::new();
        let mut inner = Recorder::new();
        let scope = FlightScope::enter(&mut outer);
        let nested = FlightScope::enter(&mut inner);
        event(FlightEventKind::PreaggHit, 7, 0);
        let ns = nested.finish();
        assert!(!ns.active);
        let summary = scope.finish();
        let pm = outer.post_mortem(Outcome::Slow, &summary).unwrap();
        assert!(pm
            .events
            .iter()
            .any(|e| e.kind == FlightEventKind::PreaggHit && e.a == 7));
        assert!(inner.post_mortem(Outcome::Slow, &ns).is_none());
    }

    #[test]
    #[cfg(not(feature = "obs-off"))]
    fn unwinding_uninstalls_the_recorder() {
        let mut rec = Recorder::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _scope = FlightScope::enter(&mut rec);
            panic!("boom");
        }));
        assert!(r.is_err());
        // the thread-local must be clean: a fresh scope arms normally
        let mut rec2 = Recorder::new();
        let scope = FlightScope::enter(&mut rec2);
        assert!(scope.finish().active);
    }

    #[test]
    fn events_outside_scope_are_noops() {
        event(FlightEventKind::ScanRows, 0, 99);
        let mut rec = Recorder::new();
        let scope = FlightScope::enter(&mut rec);
        let summary = scope.finish();
        if crate::enabled() {
            assert!(summary.active);
            let pm = rec.post_mortem(Outcome::Slow, &summary).unwrap();
            assert!(pm.events.is_empty());
        } else {
            assert!(!summary.active);
            assert!(rec.post_mortem(Outcome::Slow, &summary).is_none());
        }
    }

    #[test]
    fn slow_log_publish_retain_and_render() {
        clear_slow_log();
        let before = published_total();
        let pm = PostMortem {
            trace_id: 99,
            outcome: Outcome::Timeout,
            culprit: "storage_seek",
            total_ns: 1_000_000,
            stage_self_ns: [0; NUM_STAGES],
            other_ns: 1_000_000,
            retries: 1,
            failovers: 0,
            faults: 2,
            dropped_events: 0,
            events: vec![],
            note: "served=[1] oracle=[2]".into(),
        };
        publish(pm.clone());
        if crate::enabled() {
            assert_eq!(published_total(), before + 1);
            let log = slow_log();
            assert_eq!(log.last().unwrap().trace_id, 99);
            let report = render_report(false);
            assert!(report.contains("outcome=timeout"));
            assert!(report.contains("note: served=[1] oracle=[2]"));
            let json = render_report(true);
            assert!(json.contains("\"outcome\":\"timeout\""));
            assert!(json.contains("\"note\":\"served=[1] oracle=[2]\""));
        } else {
            assert!(slow_log().is_empty());
        }
    }

    #[test]
    fn slow_log_is_bounded() {
        if !crate::enabled() {
            return;
        }
        clear_slow_log();
        for i in 0..(SLOW_LOG_CAPACITY + 5) {
            publish(PostMortem {
                trace_id: i as u64,
                outcome: Outcome::Slow,
                culprit: "other",
                total_ns: 1,
                stage_self_ns: [0; NUM_STAGES],
                other_ns: 1,
                retries: 0,
                failovers: 0,
                faults: 0,
                dropped_events: 0,
                events: vec![],
                note: String::new(),
            });
        }
        let log = slow_log();
        assert_eq!(log.len(), SLOW_LOG_CAPACITY);
        assert_eq!(log[0].trace_id, 5);
        clear_slow_log();
    }

    #[test]
    fn threshold_roundtrip() {
        let orig = slow_query_threshold_ns();
        set_slow_query_threshold_ns(5);
        assert_eq!(slow_query_threshold_ns(), 5);
        set_slow_query_threshold_ns(orig);
    }
}
