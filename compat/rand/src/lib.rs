//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and the
//! `Rng` / `SeedableRng` traits as generic bounds.
//!
//! The generator is xoshiro256++ seeded via splitmix64 — deterministic for a
//! given seed (the workload generators rely on reproducibility) and easily
//! good enough statistically for the Zipf samplers and benchmark inputs.
//! The exact value stream differs from upstream `rand`'s ChaCha-based
//! `StdRng`; nothing in the workspace depends on upstream's stream.
//!
//! `gen_range` uses multiply-shift range reduction for integers; the bias is
//! at most `span / 2^64`, irrelevant at workspace span sizes.

use std::ops::{Range, RangeInclusive};

/// Core entropy source (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the high 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` from the high 24 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`] (subset of `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift reduction of a 64-bit draw onto the span.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + draw as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$ty as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random-value methods (subset of `rand::Rng`), blanket-
/// implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: usize = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_small_spans_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "{hits}");
    }
}
