//! Collection strategies (`proptest::collection::{vec, btree_set}`).

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::Range;

use crate::{Strategy, TestRng};

/// `Vec` of `size` (sampled from the range) values from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet` built from up to `size` samples (duplicates collapse, so the
/// result can be smaller than the sampled target — same as real proptest).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Debug,
{
    assert!(
        size.start < size.end,
        "collection::btree_set: empty size range"
    );
    BTreeSetStrategy { element, size }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Debug,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.clone().generate(rng);
        let mut set = BTreeSet::new();
        // Allow a few extra draws so small targets usually fill up even
        // with collisions, without risking a long loop on narrow domains.
        for _ in 0..target * 4 {
            if set.len() >= target.max(self.size.start) {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        if set.is_empty() && self.size.start > 0 {
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_within_range() {
        let strat = vec(0i64..5, 2..7);
        let mut rng = TestRng::for_case("unit", 10);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()), "{}", v.len());
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn btree_set_is_nonempty_and_in_domain() {
        let strat = btree_set(0i64..200, 1..60);
        let mut rng = TestRng::for_case("unit", 11);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 60);
            assert!(s.iter().all(|x| (0..200).contains(x)));
        }
    }
}
