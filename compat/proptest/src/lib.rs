//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot fetch crates, so this crate reproduces the
//! property-testing API the test suites are written against:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`;
//! * strategies for numeric ranges, `any::<T>()`, [`Just`], tuples, vectors
//!   of strategies, and a small character-class regex subset for `&str`
//!   patterns like `"[a-zA-Z0-9 ]{0,40}"`;
//! * [`collection::vec`] and [`collection::btree_set`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros;
//! * [`ProptestConfig`] with a `cases` knob, reduced automatically under
//!   Miri and overridable via `OPENMLDB_PROPTEST_CASES`.
//!
//! **Deliberately absent:** shrinking (a failing case prints its seed and
//! generated inputs instead of a minimized counterexample) and persistent
//! regression files (`proptest-regressions/` directories are ignored).
//! Failure output includes the case's seed so a failure reproduces by
//! setting `OPENMLDB_PROPTEST_SEED`.

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;

/// Everything the test suites import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Effective case count: the `OPENMLDB_PROPTEST_CASES` env var wins,
    /// then Miri gets a hard cap (interpretation is ~100x slower), then the
    /// configured value applies.
    pub fn resolved_cases(&self) -> u32 {
        if let Ok(v) = std::env::var("OPENMLDB_PROPTEST_CASES") {
            if let Ok(n) = v.parse::<u32>() {
                return n.max(1);
            }
        }
        if cfg!(miri) {
            return self.cases.min(4);
        }
        self.cases
    }
}

// ---------------------------------------------------------------------------
// Test-case plumbing used by the macros
// ---------------------------------------------------------------------------

/// A failed `prop_assert!` inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

/// RNG handed to strategies. Deterministic per (property name, case index).
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn for_case(property: &str, case: u64) -> Self {
        if let Ok(v) = std::env::var("OPENMLDB_PROPTEST_SEED") {
            if let Ok(seed) = v.parse::<u64>() {
                return TestRng {
                    inner: StdRng::seed_from_u64(seed),
                };
            }
        }
        // FNV-1a over the property name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in property.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n.max(1))
    }
}

// ---------------------------------------------------------------------------
// Strategy trait
// ---------------------------------------------------------------------------

/// Value-generation strategy. Unlike real proptest there is no shrink tree;
/// `generate` directly produces a value.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

// ---------------------------------------------------------------------------
// Leaf strategies
// ---------------------------------------------------------------------------

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-domain strategy for primitive types (`any::<bool>()` etc).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub struct ArbitraryStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Primitive types with a full-domain generator, biased toward edge cases.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        match rng.below(16) {
            0 => 0,
            1 => i32::MAX,
            2 => i32::MIN,
            3 => -1,
            _ => rng.next_u64() as i32,
        }
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        match rng.below(16) {
            0 => 0,
            1 => i64::MAX,
            2 => i64::MIN,
            3 => -1,
            _ => rng.next_u64() as i64,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        match rng.below(16) {
            0 => 0.0,
            1 => -0.0,
            2 => f32::NAN,
            3 => f32::INFINITY,
            4 => f32::NEG_INFINITY,
            5 => f32::MIN_POSITIVE,
            _ => f32::from_bits(rng.next_u64() as u32),
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(16) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::NAN,
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            5 => f64::MIN_POSITIVE,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

/// Character-class regex subset for `&str` strategies. Supported syntax:
/// literal characters, `[...]` classes with `a-z` ranges, and `{m,n}` /
/// `{n}` repetition after a class or literal — enough for patterns like
/// `"c_[a-z0-9]{0,6}"` and `"[ -~]{0,120}"`. Anything else panics loudly.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum PatternAtom {
    Class(Vec<char>),
    Repeat {
        choices: Vec<char>,
        min: usize,
        max: usize,
    },
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern:?}");
                    set.extend((lo..=hi).filter(|c| c.is_ascii() || *c == lo));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            assert!(
                !"\\^$.|?*+()".contains(c),
                "unsupported regex syntax {c:?} in pattern {pattern:?}"
            );
            i += 1;
            vec![c]
        };
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((a, b)) => (
                    a.parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}")),
                    b.parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}")),
                ),
                None => {
                    let n = body
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}"));
                    (n, n)
                }
            };
            atoms.push(PatternAtom::Repeat { choices, min, max });
            i = close + 1;
        } else {
            atoms.push(PatternAtom::Class(choices));
        }
    }
    atoms
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse_pattern(pattern) {
        match atom {
            PatternAtom::Class(choices) => {
                out.push(choices[rng.below(choices.len())]);
            }
            PatternAtom::Repeat { choices, min, max } => {
                let n = min + rng.below(max - min + 1);
                for _ in 0..n {
                    out.push(choices[rng.below(choices.len())]);
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Composite strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (S0.0),
    (S0.0, S1.1),
    (S0.0, S1.1, S2.2),
    (S0.0, S1.1, S2.2, S3.3),
    (S0.0, S1.1, S2.2, S3.3, S4.4),
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
);

/// A `Vec` of strategies generates a `Vec` of one value from each (used for
/// row generation where every column has its own strategy).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Weighted union over same-valued strategies — the engine behind
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: Debug> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Union { arms, total_weight }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total_weight;
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        self.arms[self.arms.len() - 1].1.generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Weighted / unweighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Fails the current property case (returns `Err` through the body closure)
/// when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = config.resolved_cases();
            for case in 0..cases as u64 {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest property {} failed at case {}/{}: {}\n\
                         (re-run just this case with OPENMLDB_PROPTEST_SEED after \
                         reproducing the seed derivation, or raise/lower case counts \
                         with OPENMLDB_PROPTEST_CASES)",
                        stringify!($name), case, cases, e.message
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;
    use crate::Strategy;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case("unit", 0);
        for _ in 0..1_000 {
            let (a, b) = (0i64..10, -5i32..5).generate(&mut rng);
            assert!((0..10).contains(&a));
            assert!((-5..5).contains(&b));
        }
    }

    #[test]
    fn pattern_subset_generates_matching_strings() {
        let mut rng = TestRng::for_case("unit", 1);
        for _ in 0..500 {
            let s = "c_[a-z0-9]{0,6}".generate(&mut rng);
            assert!(s.starts_with("c_"), "{s:?}");
            assert!(s.len() <= 8, "{s:?}");
            assert!(s[2..]
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let t = "[ -~]{0,120}".generate(&mut rng);
            assert!(t.len() <= 120);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)), "{t:?}");
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = TestRng::for_case("unit", 2);
        let hits = (0..10_000).filter(|_| strat.generate(&mut rng)).count();
        assert!((8_000..9_800).contains(&hits), "{hits}");
    }

    #[test]
    fn boxed_and_flat_map_compose() {
        let strat = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0i64..10, n..n + 1))
            .boxed();
        let mut rng = TestRng::for_case("unit", 3);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32 })]

        /// The macro pipeline itself: patterns, bodies, prop_assert.
        #[test]
        fn macro_roundtrip((a, b) in (0i64..100, 0i64..100), flip in any::<bool>()) {
            let sum = a + b;
            prop_assert!(sum >= a && sum >= b);
            if flip {
                prop_assert_eq!(sum - a, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest property")]
    fn failing_property_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4 })]
            #[allow(unused)]
            fn always_fails(x in 0i64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
