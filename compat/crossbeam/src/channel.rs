//! Multi-producer multi-consumer channels with the `crossbeam::channel` API
//! surface this workspace uses: `bounded`, `unbounded`, blocking `send` /
//! `recv`, clonable `Sender` / `Receiver`, and disconnect semantics (a recv
//! on a drained channel whose senders are all gone returns `Err`).
//!
//! Built on a `Mutex<VecDeque>` with two condvars (not a lock-free queue):
//! the workspace's channel users move coarse work items, so queue-lock
//! contention is not on any measured hot path.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// Capacity for bounded channels; `None` = unbounded.
    cap: Option<usize>,
    /// Signalled when the queue gains an item or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when the queue loses an item or the last receiver leaves.
    not_full: Condvar,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the unsent value back like crossbeam's.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is drained and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Sending half of a channel. Clonable; the channel disconnects for
/// receivers once the last clone is dropped.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Block until the value is enqueued (bounded channels wait for space)
    /// or every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.chan.cap {
                Some(cap) if state.queue.len() >= cap => {
                    state = match self.chan.not_full.wait(state) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.lock().senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.chan.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake receivers blocked on an empty queue so they observe the
            // disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

/// Receiving half of a channel. Clonable (MPMC); the channel disconnects
/// for senders once the last clone is dropped.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Block until a value arrives or the channel is drained with every
    /// sender gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.chan.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = match self.chan.not_empty.wait(state) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.chan.lock();
        if let Some(v) = state.queue.pop_front() {
            drop(state);
            self.chan.not_full.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.lock().receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.chan.lock();
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            // Wake senders blocked on a full queue so they observe the
            // disconnect.
            self.chan.not_full.notify_all();
        }
    }
}

fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

/// Channel with a capacity bound; `send` blocks while full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    new_chan(Some(cap.max(1)))
}

/// Channel without a capacity bound; `send` never blocks on space.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_chan(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1), "drains before disconnecting");
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receivers_drop() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded::<i32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).map_err(|_| ()));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap().unwrap();
    }

    #[test]
    fn mpmc_consumers_partition_items() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let c1 = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        let c2 = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut all = c1.join().unwrap();
        all.extend(c2.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
