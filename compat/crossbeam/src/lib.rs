//! Offline stand-in for the subset of `crossbeam` this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. Only `crossbeam::channel` is reproduced here (the storage crate's
//! epoch-based reclamation, which upstream takes from `crossbeam::epoch`,
//! lives in `openmldb_storage::sync::epoch` so the schedule-exploring model
//! checker can instrument it).

pub mod channel;
