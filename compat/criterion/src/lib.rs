//! Offline stand-in for the subset of `criterion` this workspace's benches
//! use: `Criterion::benchmark_group`, `bench_function`, `Bencher::{iter,
//! iter_batched}`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Methodology is deliberately simple (no statistical analysis or HTML
//! reports): each benchmark warms up briefly, then runs batches until a
//! fixed measurement budget elapses and reports the median batch's
//! ns/iteration on stdout. Good enough to compare hot paths relative to one
//! another on one machine; not a replacement for real criterion's rigor.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(250);

/// How batched setup output is sized; only a hint in this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`/`iter_batched`.
    ns_per_iter: f64,
}

impl Bencher {
    fn time_batches(&mut self, mut run_batch: impl FnMut(u64) -> Duration) {
        // Warm up and size the batch so one batch is ~1ms.
        let mut batch: u64 = 1;
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            let took = run_batch(batch);
            if took < Duration::from_millis(1) && batch < 1 << 20 {
                batch *= 2;
            }
        }
        let mut samples: Vec<f64> = Vec::new();
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE || samples.len() < 5 {
            let took = run_batch(batch);
            samples.push(took.as_nanos() as f64 / batch as f64);
            if samples.len() >= 1_000 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Time a closure, reporting the median ns per call.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        self.time_batches(|batch| {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            start.elapsed()
        });
    }

    /// Time `routine` on fresh `setup()` output, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.time_batches(|batch| {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            start.elapsed()
        });
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        println!("{}/{:<28} {:>14.1} ns/iter", self.name, id, b.ns_per_iter);
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== group {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        println!("{:<36} {:>14.1} ns/iter", id, b.ns_per_iter);
        self
    }
}

/// Collects benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_nonzero_time() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(b.ns_per_iter > 0.0);
    }
}
