//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! external crates cannot be fetched. This crate reproduces the *API* of
//! `parking_lot::{Mutex, RwLock, Condvar}` on top of `std::sync` with the
//! parking_lot calling conventions (non-poisoning guards returned straight
//! from `lock()` / `read()` / `write()`, `Condvar::wait(&mut guard)`).
//!
//! Poisoning is intentionally swallowed: like parking_lot, a panic while a
//! guard is held does not poison the lock — subsequent users see the data
//! as-is. That matches what the workspace's callers expect.

use std::fmt;
use std::ops::{Deref, DerefMut};

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Non-poisoning mutex with the parking_lot API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait`] can
/// temporarily take the std guard out while blocking.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Condition variable compatible with [`MutexGuard`], parking_lot-style:
/// `wait` takes the guard by `&mut` and re-acquires before returning.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let reacquired = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(reacquired);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let (reacquired, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(reacquired);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Non-poisoning reader-writer lock with the parking_lot API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "non-poisoning: lock still usable");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
