//! # OpenMLDB (Rust reproduction)
//!
//! A real-time relational data feature computation system for online ML —
//! a from-scratch Rust reproduction of *OpenMLDB* (SIGMOD 2025).
//!
//! One compiled feature script serves both execution stages: the **offline
//! batch engine** computes training features over historical tables and the
//! **online request engine** computes the identical values for live request
//! tuples in sub-millisecond time, backed by a lock-free two-level skiplist,
//! a compact row encoding, long-window pre-aggregation, self-adjusting
//! window unions, multi-window parallelism and time-aware skew resolution.
//!
//! ## Quickstart
//!
//! ```
//! use openmldb::{Database, Row, Value};
//!
//! let db = Database::new();
//! db.execute(
//!     "CREATE TABLE actions (userid BIGINT, price DOUBLE, ts TIMESTAMP, \
//!      INDEX(KEY=userid, TS=ts))",
//! ).unwrap();
//! db.execute("INSERT INTO actions VALUES (1, 25.0, 1000), (1, 75.0, 2000)").unwrap();
//!
//! // Deploy a feature script once...
//! db.deploy(
//!     "DEPLOY demo AS SELECT userid, sum(price) OVER w AS spend FROM actions \
//!      WINDOW w AS (PARTITION BY userid ORDER BY ts \
//!      ROWS_RANGE BETWEEN 5s PRECEDING AND CURRENT ROW)",
//! ).unwrap();
//!
//! // ...and serve online requests against it.
//! let request = Row::new(vec![Value::Bigint(1), Value::Double(10.0), Value::Timestamp(2500)]);
//! let features = db.request("demo", &request).unwrap();
//! assert_eq!(features[1], Value::Double(110.0)); // 25 + 75 + 10
//! ```

pub use openmldb_baselines as baselines;
pub use openmldb_chaos as chaos;
pub use openmldb_core::{digest_entries, DurabilityOptions};
pub use openmldb_core::{
    estimate_memory, recommend_engine, Database, EngineChoice, ExecResult, IndexMemProfile,
    MemoryAlert, MemoryMonitor, TableMemProfile, TableType,
};
pub use openmldb_core::{OpsConfig, OpsPlane};
pub use openmldb_core::{RequestOptions, RequestOutput, RetryPolicy};
pub use openmldb_exec as exec;
pub use openmldb_obs as obs;
pub use openmldb_offline as offline;
pub use openmldb_online as online;
pub use openmldb_sql as sql;
pub use openmldb_storage as storage;
pub use openmldb_types::Deadline;
pub use openmldb_types::{
    ColumnDef, CompactCodec, DataType, Error, KeyValue, Result, Row, RowBatch, RowCodec, Schema,
    UnsafeRowCodec, Value,
};
pub use openmldb_workload as workload;
