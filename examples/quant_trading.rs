//! Quantitative-trading time-series features: the paper's `drawdown`
//! (maximum peak-to-trough loss) and `ew_avg` (exponentially weighted
//! average) window functions over a price stream — the Section 4.1
//! category-3 aggregations that standard SQL does not provide.
//!
//! Run with: `cargo run --release --example quant_trading`

use openmldb::{Database, ExecResult, Row, Value};

fn main() -> openmldb::Result<()> {
    let db = Database::new();
    db.execute(
        "CREATE TABLE ticks (symbol STRING, price DOUBLE, volume BIGINT, ts TIMESTAMP,
         INDEX(KEY=symbol, TS=ts))",
    )?;

    // A synthetic price path with a 30% crash and partial recovery.
    let path = [
        100.0, 104.0, 110.0, 118.0, 121.0, // rally: peak 121
        117.0, 104.0, 92.0, 84.7, // crash: trough 84.7 (−30% from 121)
        90.0, 97.0, 103.0, 108.0, // recovery
    ];
    for (i, price) in path.iter().enumerate() {
        db.execute(&format!(
            "INSERT INTO ticks VALUES ('ACME', {price}, {}, {})",
            1_000 + i as i64 * 7,
            (i as i64 + 1) * 60_000
        ))?;
    }

    let script = "SELECT symbol,
            drawdown(price) OVER w_day AS max_drawdown,
            ew_avg(price, 0.3) OVER w_day AS ewma_price,
            min(price) OVER w_day AS low,
            max(price) OVER w_day AS high,
            lag(price, 1) OVER w_day AS prev_price
        FROM ticks
        WINDOW w_day AS (PARTITION BY symbol ORDER BY ts
                         ROWS_RANGE BETWEEN 1d PRECEDING AND CURRENT ROW)";

    // Offline: indicator series for backtesting, one row per tick.
    let ExecResult::Batch(batch) = db.execute(script)? else {
        unreachable!()
    };
    println!(
        "{:<6} {:>12} {:>12} {:>8} {:>8} {:>10}",
        "tick", "drawdown", "ewma", "low", "high", "prev"
    );
    for (i, row) in batch.rows.iter().enumerate() {
        println!(
            "{:<6} {:>12.4} {:>12.2} {:>8.1} {:>8.1} {:>10}",
            i,
            row[1].as_f64().unwrap_or(0.0),
            row[2].as_f64().unwrap_or(0.0),
            row[3].as_f64().unwrap_or(0.0),
            row[4].as_f64().unwrap_or(0.0),
            row[5].to_string(),
        );
    }

    // Offline snapshots scan newest-first, so row 0 is the latest tick; its
    // window covers the whole path and carries the full peak-to-trough loss.
    let final_dd = batch.rows.first().expect("rows")[1].as_f64()?;
    assert!((final_dd - (121.0 - 84.7) / 121.0).abs() < 1e-9);
    println!(
        "\nmax drawdown over the window: {:.2}% (peak 121 → trough 84.7)",
        final_dd * 100.0
    );

    // Online: a live tick gets the same indicators in request mode.
    db.deploy(&format!("DEPLOY quant AS {script}"))?;
    let tick = Row::new(vec![
        Value::string("ACME"),
        Value::Double(111.5),
        Value::Bigint(5_000),
        Value::Timestamp(14 * 60_000),
    ]);
    let features = db.request("quant", &tick)?;
    println!("live tick features: {:?}", features.values());
    Ok(())
}
