//! Quickstart: create a table, load data, deploy a feature script once, and
//! serve it in both execution modes — offline batch for training features,
//! online request mode for serving — with identical results.
//!
//! Run with: `cargo run --release --example quickstart`

use openmldb::{Database, ExecResult, Row, Value};

fn main() -> openmldb::Result<()> {
    let db = Database::new();

    // 1. Schema with a time-series index: partition key + ordering column.
    db.execute(
        "CREATE TABLE actions (
            userid BIGINT,
            category STRING,
            price DOUBLE,
            ts TIMESTAMP,
            INDEX(KEY=userid, TS=ts))",
    )?;

    // 2. Load a little history.
    for i in 0..20 {
        db.execute(&format!(
            "INSERT INTO actions VALUES ({}, 'cat{}', {}.5, {})",
            i % 3,
            i % 2,
            i,
            1_000 + i * 250
        ))?;
    }

    // 3. One feature script, deployed once.
    let feature_sql = "SELECT userid,
            sum(price) OVER w AS spend_3s,
            count(price) OVER w AS events_3s,
            avg(price) OVER w AS avg_3s
        FROM actions
        WINDOW w AS (PARTITION BY userid ORDER BY ts
                     ROWS_RANGE BETWEEN 3s PRECEDING AND CURRENT ROW)";
    db.deploy(&format!("DEPLOY quickstart AS {feature_sql}"))?;

    // 4. Offline mode: training features for every historical row.
    let ExecResult::Batch(training) = db.execute(feature_sql)? else {
        unreachable!()
    };
    println!("offline training rows: {}", training.rows.len());
    println!("output schema:         {}", training.schema);
    for row in training.rows.iter().take(3) {
        println!("  {:?}", row.values());
    }

    // 5. Online request mode: one feature row per incoming tuple,
    //    millisecond-class, consistent with the offline values.
    let request = Row::new(vec![
        Value::Bigint(1),
        Value::string("cat1"),
        Value::Double(9.0),
        Value::Timestamp(7_000),
    ]);
    let start = std::time::Instant::now();
    let features = db.request("quickstart", &request)?;
    println!(
        "online features for user 1 @t=7000: {:?}  ({:.1?})",
        features.values(),
        start.elapsed()
    );

    // 6. The compilation cache makes re-deployments cheap.
    let (hits, misses) = db.plan_cache_stats();
    println!("plan cache: {hits} hits / {misses} misses");
    Ok(())
}
