//! Real-time anti-fraud risk control (the paper's Akulaku scenario):
//! millisecond-budget features over *years* of transaction history,
//! made feasible by long-window pre-aggregation (Section 5.1).
//!
//! Deploys the same script twice — with and without the
//! `long_windows` option — and contrasts request latency, then shows the
//! memory-isolation behaviour of Section 8.2.
//!
//! Run with: `cargo run --release --example risk_control`

use std::time::Instant;

use openmldb::{Database, Row, Value};

fn main() -> openmldb::Result<()> {
    let db = Database::new();
    db.execute(
        "CREATE TABLE txns (account BIGINT, amount DOUBLE, merchant STRING, ts TIMESTAMP,
         INDEX(KEY=account, TS=ts))",
    )?;

    // Two years of transactions for a busy account (hotspot key).
    const DAY: i64 = 86_400_000;
    let mut n = 0u64;
    for day in 0..730 {
        for k in 0..40 {
            let row = Row::new(vec![
                Value::Bigint(7),
                Value::Double(((day * 40 + k) % 97) as f64 + 1.0),
                Value::string(if k % 5 == 0 { "electronics" } else { "grocery" }),
                Value::Timestamp(day * DAY + k * 60_000),
            ]);
            db.insert_row("txns", &row)?;
            n += 1;
        }
    }
    println!("loaded {n} transactions across 730 days");

    let script = "SELECT account,
            sum(amount) OVER w_year AS spend_1y,
            count(amount) OVER w_year AS txn_count_1y,
            max(amount) OVER w_year AS max_txn_1y,
            avg(amount) OVER w_hour AS avg_1h
        FROM txns
        WINDOW w_year AS (PARTITION BY account ORDER BY ts
                          ROWS_RANGE BETWEEN 365d PRECEDING AND CURRENT ROW),
               w_hour AS (PARTITION BY account ORDER BY ts
                          ROWS_RANGE BETWEEN 1h PRECEDING AND CURRENT ROW)";

    // Plain deployment: the year window scans raw tuples per request.
    db.deploy(&format!("DEPLOY risk_scan AS {script}"))?;
    // Pre-aggregated deployment: daily buckets answer the year window.
    db.deploy(&format!(
        "DEPLOY risk_fast OPTIONS(long_windows=\"w_year:1d\") AS {script}"
    ))?;

    let request = Row::new(vec![
        Value::Bigint(7),
        Value::Double(1_500.0), // suspicious amount
        Value::string("electronics"),
        Value::Timestamp(730 * DAY),
    ]);

    let time_requests = |name: &str| -> openmldb::Result<(Row, f64)> {
        // Warm up, then measure.
        db.request_readonly(name, &request)?;
        let start = Instant::now();
        const REPS: u32 = 20;
        let mut out = None;
        for _ in 0..REPS {
            out = Some(db.request_readonly(name, &request)?);
        }
        Ok((
            out.expect("ran"),
            start.elapsed().as_secs_f64() * 1_000.0 / REPS as f64,
        ))
    };

    let (slow_row, slow_ms) = time_requests("risk_scan")?;
    let (fast_row, fast_ms) = time_requests("risk_fast")?;
    assert_eq!(
        slow_row, fast_row,
        "pre-aggregation must not change features"
    );
    println!("raw-scan request latency:  {slow_ms:.3} ms");
    println!("pre-agg  request latency:  {fast_ms:.3} ms");
    println!(
        "speedup: {:.1}x (paper Figure 11 reports ~45x at 860K tuples)",
        slow_ms / fast_ms
    );
    println!("features: {:?}", fast_row.values());

    // Memory isolation (Section 8.2): writes fail, reads continue.
    let table = openmldb::online::TableProvider::table(&db, "txns").expect("exists");
    let monitor = db.memory_monitor();
    monitor.on_alert(|a| {
        println!(
            "ALERT: table `{}` at {} bytes (threshold {})",
            a.table, a.used_bytes, a.threshold_bytes
        )
    });
    monitor.watch(table.clone(), table.mem_used(), 0.5);
    monitor.poll();
    let denied = db.insert_row("txns", &request);
    println!("write under memory pressure: {denied:?}");
    assert!(denied.is_err());
    let still_reads = db.request_readonly("risk_fast", &request)?;
    assert_eq!(still_reads, fast_row);
    println!("reads keep serving while writes are rejected — service stays online");
    Ok(())
}
