//! The paper's Figure 1 scenario: personalized product recommendation.
//!
//! Window-unions the `actions` and `orders` streams over a 3-second window
//! per user, computes the paper's example features (distinct product-type
//! count, conditional per-category average price via `avg_cate_where`,
//! top-frequency products), LAST JOINs the user profile, and exports the
//! feature rows in LibSVM format for the ranking model.
//!
//! Run with: `cargo run --release --example product_recommendation`

use openmldb::exec::{infer_feature_kinds, to_libsvm};
use openmldb::{Database, Row, Value};

fn main() -> openmldb::Result<()> {
    let db = Database::new();

    // Streams share a schema so they can be window-unioned (Section 5.2).
    for table in ["actions", "orders"] {
        db.execute(&format!(
            "CREATE TABLE {table} (
                userid BIGINT, product_type STRING, category STRING,
                price DOUBLE, quantity INT, ts TIMESTAMP,
                INDEX(KEY=userid, TS=ts))"
        ))?;
    }
    db.execute(
        "CREATE TABLE profiles (userid BIGINT, age INT, city STRING, updated TIMESTAMP,
         INDEX(KEY=userid, TS=updated))",
    )?;

    // Recent user activity (all within the last 3 seconds of t=10_000).
    let activity = [
        ("actions", 1, "sneaker", "shoes", 89.0, 1, 7_500),
        ("actions", 1, "boot", "shoes", 120.0, 2, 8_200),
        ("orders", 1, "tote", "bags", 60.0, 2, 8_900),
        ("orders", 1, "satchel", "bags", 75.0, 1, 9_500),
        ("actions", 1, "sneaker", "shoes", 95.0, 3, 9_800),
        ("actions", 2, "novel", "books", 15.0, 1, 9_000),
    ];
    for (table, user, ptype, cat, price, qty, ts) in activity {
        db.execute(&format!(
            "INSERT INTO {table} VALUES ({user}, '{ptype}', '{cat}', {price}, {qty}, {ts})"
        ))?;
    }
    db.execute("INSERT INTO profiles VALUES (1, 31, 'shanghai', 1000), (2, 24, 'beijing', 1000)")?;

    // The Figure 1 feature script: window union + extended functions +
    // stream join, deployed once for both stages.
    db.deploy(
        "DEPLOY recsys AS SELECT
            actions.userid,
            profiles.age,
            distinct_count(product_type) OVER w_union_3s AS product_count,
            avg_cate_where(price, quantity > 1, category) OVER w_union_3s AS product_prices,
            topn_frequency(product_type, 2) OVER w_union_3s AS hot_products,
            sum(price) OVER w_union_3s AS spend_3s
        FROM actions
        LAST JOIN profiles ORDER BY profiles.updated ON actions.userid = profiles.userid
        WINDOW w_union_3s AS (
            UNION orders
            PARTITION BY userid ORDER BY ts
            ROWS_RANGE BETWEEN 3s PRECEDING AND CURRENT ROW)",
    )?;

    // A live click arrives: compute its features in request mode.
    let click = Row::new(vec![
        Value::Bigint(1),
        Value::string("sandal"),
        Value::string("shoes"),
        Value::Double(45.0),
        Value::Int(1),
        Value::Timestamp(10_000),
    ]);
    let features = db.request("recsys", &click)?;
    let dep = db.deployment("recsys").expect("deployed above");
    println!("feature schema: {}", dep.query.output_schema);
    println!("online features: {:?}", features.values());

    // Export for the model: feature signatures → LibSVM line.
    let kinds = infer_feature_kinds(&dep.query);
    println!("libsvm: {}", to_libsvm(&features, &kinds)?);

    // Sanity: the conditional category averages only count quantity > 1.
    let prices = features[3].as_str()?;
    assert!(
        prices.contains("bags:60"),
        "only the qty-2 bag order counts: {prices}"
    );
    // boot (qty 2, 120) and sneaker (qty 3, 95) pass; the qty-1 rows do not.
    assert!(
        prices.contains("shoes:107.5"),
        "qty>1 shoes average 107.5: {prices}"
    );
    println!("ok: avg_cate_where filtered by quantity > 1");
    Ok(())
}
