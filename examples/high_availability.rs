//! High availability and storage placement: binlog-fed replicas (the
//! paper's ZooKeeper-coordinated tablet replicas, §3.1) and the §8.1
//! estimation-guided choice between the in-memory and disk engines.
//!
//! Run with: `cargo run --release --example high_availability`

use std::sync::Arc;

use openmldb::storage::{DataTable, DiskTable, IndexSpec, MemTable, ReplicaTable, Ttl};
use openmldb::{
    estimate_memory, recommend_engine, Database, EngineChoice, IndexMemProfile, KeyValue, Row,
    TableMemProfile, TableType, Value,
};

fn txn(account: i64, amount: f64, ts: i64) -> Row {
    Row::new(vec![
        Value::Bigint(account),
        Value::Double(amount),
        Value::Timestamp(ts),
    ])
}

fn main() -> openmldb::Result<()> {
    let schema = openmldb::Schema::from_pairs(&[
        ("account", openmldb::DataType::Bigint),
        ("amount", openmldb::DataType::Double),
        ("ts", openmldb::DataType::Timestamp),
    ])?;
    let index = IndexSpec {
        name: "by_account".into(),
        key_cols: vec![0],
        ts_col: Some(2),
        ttl: Ttl::Unlimited,
    };

    // ---- 1. Placement: ask the §8.1 model which engine fits -------------
    let profile = TableMemProfile {
        replicas: 2,
        indexes: vec![IndexMemProfile {
            unique_keys: 50_000_000,
            avg_key_len: 16,
        }],
        rows: 2_000_000_000,
        avg_row_len: 120,
        table_type: TableType::Absolute,
        data_copies: 1,
    };
    let estimate = estimate_memory(&[profile]);
    println!(
        "estimated footprint for the production table: {:.1} GB",
        estimate as f64 / 1e9
    );
    let choice = recommend_engine(estimate, 64 * (1 << 30), 25);
    println!("placement with 64 GB RAM and a 25 ms budget: {choice:?}");
    assert_eq!(choice, EngineChoice::DiskRequired);

    // ---- 2. Both backends serve the same deployment ---------------------
    let sql = "DEPLOY spend AS SELECT account, sum(amount) OVER w AS spend_1m FROM txns \
               WINDOW w AS (PARTITION BY account ORDER BY ts \
               ROWS_RANGE BETWEEN 1m PRECEDING AND CURRENT ROW)";
    let request = txn(7, 25.0, 120_000);
    let mut outputs = Vec::new();
    for backend in ["memory", "disk"] {
        let db = Database::new();
        let table: Arc<dyn DataTable> = match backend {
            "memory" => Arc::new(MemTable::new("txns", schema.clone(), vec![index.clone()])?),
            _ => Arc::new(DiskTable::new("txns", schema.clone(), vec![index.clone()])?),
        };
        for i in 0..1_000 {
            table.put(&txn(i % 10, (i % 97) as f64, i * 150))?;
        }
        db.register_table(table)
            .expect("registering on an in-memory db cannot fail");
        db.deploy(sql)?;
        let out = db.request_readonly("spend", &request)?;
        println!("{backend:>6} backend features: {:?}", out.values());
        outputs.push(out);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "identical features on either engine"
    );

    // ---- 3. Replication and failover ------------------------------------
    let leader = MemTable::new("txns", schema, vec![index])?;
    for i in 0..500 {
        leader.put(&txn(i % 5, i as f64, i * 100))?;
    }
    // Two replicas attach mid-stream: catch-up is exactly-once.
    let replicas: Vec<ReplicaTable> = openmldb::storage::replicate(&leader, 2)?;
    for i in 500..1_000 {
        leader.put(&txn(i % 5, i as f64, i * 100))?;
    }
    for (i, r) in replicas.iter().enumerate() {
        r.sync();
        println!("replica {i}: {} rows applied", r.applied_rows());
        assert_eq!(r.applied_rows(), 1_000);
    }

    // The leader "tablet" dies; a replica keeps serving reads.
    let survivor = replicas[0].table();
    drop(leader);
    let latest = survivor
        .latest(0, &[KeyValue::Int(3)])?
        .expect("row exists");
    println!(
        "after failover, latest txn for account 3: {:?}",
        latest.values()
    );
    Ok(())
}
