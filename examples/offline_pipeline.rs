//! Offline feature pipeline at batch scale: multi-window parallelism
//! (Section 6.1) and time-aware skew resolution (Section 6.2) on a
//! skewed TalkingData-like click log, with feature export to CSV/LibSVM.
//!
//! Run with: `cargo run --release --example offline_pipeline`

use std::time::Instant;

use openmldb::exec::{infer_feature_kinds, to_csv, to_libsvm};
use openmldb::offline::{OfflineOptions, SkewConfig, WindowExecMode};
use openmldb::workload::talkingdata_rows;
use openmldb::{Database, Value};

fn main() -> openmldb::Result<()> {
    let db = Database::new();
    db.execute(
        "CREATE TABLE clicks (ip BIGINT, app INT, device INT, os INT, channel INT,
         click_time TIMESTAMP, is_attributed INT,
         INDEX(KEY=ip, TS=click_time))",
    )?;

    // Zipf-skewed ips: one hot ip dominates — the skew scenario.
    let rows = talkingdata_rows(30_000, 50, 2024);
    for row in &rows {
        db.insert_row("clicks", row)?;
    }
    println!("loaded {} clicks over 50 ips (zipf-skewed)", rows.len());

    // Two independent windows over different keys (ip / app), plus signature
    // functions for ML-ready export.
    let script = "SELECT
            binary_label(is_attributed) AS label,
            continuous(count(channel) OVER w_ip) AS ip_clicks_10s,
            continuous(distinct_count(app) OVER w_ip) AS ip_apps_10s,
            discrete(channel, 256) AS channel_bucket
        FROM clicks
        WINDOW w_ip AS (PARTITION BY ip ORDER BY click_time
                        ROWS_RANGE BETWEEN 10s PRECEDING AND CURRENT ROW)";

    let run = |label: &str, opts: &OfflineOptions| -> openmldb::Result<f64> {
        let start = Instant::now();
        let batch = db.offline_query_with(script, opts)?;
        let secs = start.elapsed().as_secs_f64();
        println!("{label:<34} {:>8.3}s  ({} rows)", secs, batch.rows.len());
        Ok(secs)
    };

    println!("\n--- engine configurations ---");
    let naive = run(
        "recompute-per-row (Spark-like)",
        &OfflineOptions {
            mode: WindowExecMode::RecomputePerRow,
            parallel_windows: false,
            skew: None,
            threads: 1,
        },
    )?;
    let sweep = run(
        "incremental sweep",
        &OfflineOptions {
            mode: WindowExecMode::Incremental,
            parallel_windows: false,
            skew: None,
            threads: 1,
        },
    )?;
    let skewed = run(
        "incremental + skew repartitioning",
        &OfflineOptions {
            mode: WindowExecMode::Incremental,
            parallel_windows: true,
            skew: Some(SkewConfig {
                factor: 4,
                hot_threshold: 0.2,
            }),
            threads: 4,
        },
    )?;
    println!(
        "\nspeedups vs naive: sweep {:.1}x, sweep+skew {:.1}x",
        naive / sweep,
        naive / skewed
    );

    // Export the first feature rows for the trainer.
    let batch = db.offline_query(script)?;
    let q = openmldb::sql::PlanCache::new().compile(script, &db)?;
    let kinds = infer_feature_kinds(&q);
    println!("\n--- export ---");
    for row in batch.rows.iter().take(3) {
        println!("csv:    {}", to_csv(row));
        println!("libsvm: {}", to_libsvm(row, &kinds)?);
    }
    let attributed = batch.rows.iter().filter(|r| r[0] == Value::Int(1)).count();
    println!("\n{} of {} clicks attributed", attributed, batch.rows.len());
    Ok(())
}
