#!/usr/bin/env bash
# Full local analysis gauntlet: formatting, clippy, the workspace lint,
# tests, the deterministic schedule explorer, and (when installed) miri.
# Optional tools are detected at runtime and skipped with a notice — this
# script must pass on a box that has only stable rustc + cargo.
#
# Usage: scripts/analysis.sh [--quick]
#   --quick   skip the release build and the raised-case proptest pass

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (deny warnings, incl. undocumented_unsafe_blocks)"
cargo clippy --workspace --all-targets -- -D warnings

step "workspace lint (line rules + call-graph rules, SARIF emitted)"
cargo run -q -p openmldb-analysis -- lint
[ -s target/analysis.sarif ] || { echo "missing target/analysis.sarif"; exit 1; }

if [ "$QUICK" -eq 0 ]; then
    step "release build"
    cargo build --workspace --release
fi

step "workspace tests"
cargo test --workspace -q

step "observability compiled out (obs-off build + tests)"
cargo build -q -p openmldb --features obs-off
cargo test -q -p openmldb-obs --features obs-off
cargo test -q -p openmldb --features obs-off --test observability

step "schedule explorer (model-check feature)"
cargo test -q -p openmldb-storage --features model-check

step "fault injection armed (chaos build + seeded resilience suite)"
cargo build -q -p openmldb --features chaos
cargo test -q --test resilience --features chaos
cargo test -q -p openmldb-storage -p openmldb-online -p openmldb-core --features chaos

step "fault injection compiled out (resilience suite, clean path)"
cargo test -q --test resilience

step "crash recovery suite (clean path, then WalFsync/SnapshotWrite kills armed)"
cargo test -q --test recovery
cargo test -q --test recovery --features chaos

step "recovery experiment gate (reduced-scale seeded crash sweep)"
cargo test -q -p openmldb-bench --features chaos seeded_crash_cycles

step "scan path under chaos + obs-off (feature-matrix corner)"
cargo test -q -p openmldb-storage -p openmldb-online --features chaos,obs-off

if [ "$QUICK" -eq 0 ]; then
    step "hot-path allocation gate (reduced scale)"
    BENCH_SCALE=0.1 cargo run -q --release -p openmldb-bench --bin hotpath_allocs
fi

step "tail-latency attribution contract (tailtrace gate, chaos on)"
BENCH_SCALE=0.1 cargo test -q -p openmldb-bench --features chaos tailtrace

step "slow-query report smoke (obs_report, text + json + durability section)"
cargo run -q -p openmldb-bench --bin obs_report > target/obs_report.txt
grep -q "slow-query log:" target/obs_report.txt
grep -q "durability & recovery" target/obs_report.txt
cargo run -q -p openmldb-bench --bin obs_report -- --json | grep -q '"slow_queries"'

if [ "$QUICK" -eq 0 ]; then
    step "property tests, raised case count"
    OPENMLDB_PROPTEST_CASES=512 cargo test -q -p openmldb-storage -p openmldb-types
fi

step "miri (optional)"
if rustup component list 2>/dev/null | grep -q "^miri.*(installed)"; then
    # Miri cannot run the OS-thread-heavy suites; the proptest shim caps
    # its case count under cfg(miri) and heavy tests are #[ignore]d there.
    cargo +nightly miri test -p openmldb-types
else
    echo "miri not installed; skipping (rustup +nightly component add miri)"
fi

step "all analysis steps passed"
