//! End-to-end crash-and-restart recovery: the durable WAL + snapshot spine
//! must reconstruct byte-identical table state — zero lost rows, zero
//! duplicated rows — from any crash point, including mid-record torn WAL
//! writes and snapshots severed mid-file.
//!
//! The oracle is the binlog digest ([`openmldb::digest_entries`], FNV-1a
//! over the canonical WAL encoding): after recovery the in-memory binlog
//! must hash identically to the record prefix that survived on disk.
//!
//! This suite runs in its own process on purpose: chaos plans are global,
//! and installing one next to unrelated concurrently-running tests would
//! perturb them. Without the `chaos` cargo feature the injector is
//! compiled out — every test still runs and asserts the clean-path
//! behaviour.

use std::fs;
use std::path::{Path, PathBuf};

use openmldb::chaos::{CrashSchedule, InjectionPoint, Plan};
use openmldb::online::TableProvider;
use openmldb::storage::{snapshot, wal};
use openmldb::{digest_entries, Database, Row, Value};
use proptest::prelude::*;

/// The CI seed triple, same as `tests/resilience.rs`.
const SEEDS: [u64; 3] = [0xA11CE, 0xB0B, 0xC0FFEE];

fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "openmldb_recovery_{tag}_{}_{seq}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dst)?;
    for entry in fs::read_dir(src)? {
        let entry = entry?;
        let to = dst.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_dir(&entry.path(), &to)?;
        } else {
            fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

fn mk_row(i: i64) -> Row {
    Row::new(vec![
        Value::Bigint(i % 8),
        Value::Double(i as f64 * 0.25),
        Value::Timestamp(1_000 + i * 5),
    ])
}

/// Build a durable golden directory: `rows` inserts into `events`, a
/// snapshot attempt after each index in `snapshot_at`, final sync. Returns
/// the still-open database.
fn golden(dir: &Path, rows: i64, snapshot_at: &[i64]) -> Database {
    let db = Database::recover(dir).expect("durable open");
    db.execute("CREATE TABLE events (k BIGINT, v DOUBLE, ts TIMESTAMP, INDEX(KEY=k, TS=ts))")
        .expect("create");
    for i in 0..rows {
        db.insert_row("events", &mk_row(i)).expect("insert");
        if snapshot_at.contains(&i) {
            // Tolerated failure: under an armed SnapshotWrite kill the
            // attempt dies mid-write, leaving the same partial tmp file a
            // real crash would.
            let _ = db.snapshot_now();
        }
    }
    db.sync_durable().expect("sync");
    db
}

struct CrashOutcome {
    surviving: u64,
    expected_digest: u64,
    recovered_digest: u64,
    recovered_rows: u64,
}

/// Model one crash: copy the golden dir, sever the WAL at `cut` bytes,
/// drop snapshots that could not have existed at that point (covered
/// offset past the surviving log), optionally tear the newest survivor,
/// then recover and digest.
fn crash_and_recover(golden_dir: &Path, cut: u64, tear: bool) -> CrashOutcome {
    let cycle = tmp_dir("cycle");
    copy_dir(golden_dir, &cycle).expect("copy");
    let wal_dir = cycle.join("wal").join("events");
    wal::truncate_to(&wal_dir, cut).expect("truncate");

    let scan = wal::read_dir(&wal_dir).expect("scan");
    let surviving = scan.records.len() as u64;
    let expected_digest = digest_entries(scan.records.iter().map(|r| &r.entry));

    let snap_dir = cycle.join("snap");
    let mut newest = None;
    for (covered, path) in snapshot::list(&snap_dir, "events").expect("list") {
        if covered > surviving {
            fs::remove_file(&path).expect("remove future snapshot");
        } else if newest.is_none() {
            newest = Some(path);
        }
    }
    if tear {
        if let Some(path) = newest {
            snapshot::tear_for_test(&path, 0.5).expect("tear");
        }
    }

    let db = Database::recover(&cycle).expect("recover");
    let recovered_digest = db.table_digest("events").expect("digest");
    let recovered_rows = db
        .table("events")
        .map(|t| t.row_count() as u64)
        .unwrap_or(0);
    drop(db);
    let _ = fs::remove_dir_all(&cycle);
    CrashOutcome {
        surviving,
        expected_digest,
        recovered_digest,
        recovered_rows,
    }
}

/// Clean restart: every row, the deployment, and its serving behaviour
/// survive a shutdown/recover cycle byte-identically.
#[test]
fn clean_restart_is_byte_identical_and_still_serves() {
    let dir = tmp_dir("clean");
    let db = golden(&dir, 100, &[50]);
    db.deploy(
        "DEPLOY f AS SELECT k, sum(v) OVER w AS s FROM events \
         WINDOW w AS (PARTITION BY k ORDER BY ts \
         ROWS_RANGE BETWEEN 10s PRECEDING AND CURRENT ROW)",
    )
    .expect("deploy");
    let req = mk_row(1_000);
    let before_digest = db.table_digest("events").unwrap();
    let before_row = db.request_readonly("f", &req).expect("request");
    drop(db);

    let db2 = Database::recover(&dir).expect("recover");
    assert_eq!(db2.table_digest("events").unwrap(), before_digest);
    assert_eq!(db2.table("events").unwrap().row_count(), 100);
    let after_row = db2.request_readonly("f", &req).expect("request replayed");
    assert_eq!(
        after_row, before_row,
        "recovered deployment serves identically"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// The headline contract, per CI seed: a sweep of seeded crash points
/// (arbitrary byte offsets — mid-record cuts included, snapshots sometimes
/// torn) always recovers exactly the surviving record prefix, and the
/// whole sweep is a pure function of the seed (two runs, identical
/// outcomes).
#[test]
fn fixed_seed_crash_sweep_loses_nothing_and_is_deterministic() {
    let dir = tmp_dir("sweep");
    let db = golden(&dir, 120, &[40, 80]);
    drop(db);
    let total = wal::total_bytes(&dir.join("wal").join("events")).unwrap();

    for seed in SEEDS {
        let schedule = CrashSchedule::new(seed);
        let sweep = |cycles: u64| -> Vec<(u64, u64)> {
            (0..cycles)
                .map(|k| {
                    let cut = schedule.crash_bytes(k, total);
                    let out = crash_and_recover(&dir, cut, schedule.tear_snapshot(k));
                    assert_eq!(
                        out.recovered_digest, out.expected_digest,
                        "seed {seed:#x} cycle {k}: digest mismatch (cut {cut} of {total})"
                    );
                    assert_eq!(
                        out.recovered_rows, out.surviving,
                        "seed {seed:#x} cycle {k}: lost or duplicated rows"
                    );
                    (out.surviving, out.recovered_digest)
                })
                .collect()
        };
        let first = sweep(20);
        let second = sweep(20);
        assert_eq!(first, second, "seed {seed:#x}: sweep is deterministic");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Kill points armed (no-op without the `chaos` feature): WAL fsyncs die
/// randomly (the durable watermark lags) and snapshot writes die mid-file
/// (tmp orphans). Recovery must still reconstruct everything the log
/// holds, and the orphaned partials must be invisible.
#[test]
fn armed_fsync_and_snapshot_kills_never_corrupt() {
    for seed in SEEDS {
        openmldb::chaos::install(
            Plan::new(seed)
                .kill_rate(InjectionPoint::WalFsync, 0.3)
                .kill_rate(InjectionPoint::SnapshotWrite, 0.5),
        );
        let dir = tmp_dir("kills");
        let db = golden(&dir, 90, &[20, 40, 60, 80]);
        openmldb::chaos::reset();
        // Post-reset barrier: a killed final fsync must not hide rows from
        // the comparison below.
        db.sync_durable().expect("sync after reset");
        let before = db.table_digest("events").unwrap();
        drop(db);

        let db2 = Database::recover(&dir).expect("recover");
        assert_eq!(
            db2.table_digest("events").unwrap(),
            before,
            "seed {seed:#x}: recovery under armed kills is byte-identical"
        );
        assert_eq!(
            db2.table("events").unwrap().row_count(),
            90,
            "seed {seed:#x}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Any byte-level WAL cut — including mid-record torn writes — recovers
    /// to exactly the surviving full-record prefix: zero lost, zero
    /// duplicated, byte-identical.
    #[test]
    fn torn_wal_tail_recovers_exact_prefix(
        cut_fraction in 0.0f64..1.0,
        rows in 20i64..70,
    ) {
        let dir = tmp_dir("torn");
        let db = golden(&dir, rows, &[]);
        drop(db);
        let total = wal::total_bytes(&dir.join("wal").join("events")).unwrap();
        let cut = ((total as f64) * cut_fraction) as u64;
        let out = crash_and_recover(&dir, cut, false);
        prop_assert!(out.surviving <= rows as u64);
        prop_assert_eq!(out.recovered_digest, out.expected_digest);
        prop_assert_eq!(out.recovered_rows, out.surviving);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A snapshot severed mid-file (the crash that tore the WAL also tore
    /// the snapshot) must never poison recovery: validation rejects it and
    /// replay falls back to an older snapshot or the full WAL.
    #[test]
    fn mid_snapshot_tear_falls_back_without_losing_rows(
        tear_fraction in 0.0f64..0.95,
        rows in 30i64..70,
    ) {
        let dir = tmp_dir("snaptear");
        let db = golden(&dir, rows, &[rows / 2]);
        drop(db);
        let snap_dir = dir.join("snap");
        let list = snapshot::list(&snap_dir, "events").unwrap();
        prop_assert!(!list.is_empty(), "golden run must have published a snapshot");
        snapshot::tear_for_test(&list[0].1, tear_fraction).unwrap();

        let db2 = Database::recover(&dir).expect("recover");
        let scan = wal::read_dir(&dir.join("wal").join("events")).unwrap();
        let expected = digest_entries(scan.records.iter().map(|r| &r.entry));
        prop_assert_eq!(db2.table_digest("events").unwrap(), expected);
        prop_assert_eq!(db2.table("events").unwrap().row_count() as i64, rows);
        drop(db2);
        let _ = fs::remove_dir_all(&dir);
    }
}
