//! End-to-end resilience: deterministic fault injection, deadline-budgeted
//! serving, replica failover, and the buckets-only degradation tier.
//!
//! This suite runs in its own process on purpose: chaos plans are global,
//! and installing one next to unrelated concurrently-running tests would
//! perturb them. Without the `chaos` cargo feature the injector is
//! compiled out — every test still runs and asserts the clean-path
//! behaviour (no retries, no faults, identical results).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use openmldb::chaos::{InjectionPoint, Plan};
use openmldb::online::{execute_request_with, Deployment, PreAggregator, TableProvider};
use openmldb::sql::{compile_select, parse_select, Catalog};
use openmldb::storage::{DataTable, IndexSpec, MemTable, ReplicaTable, Ttl};
use openmldb::{Database, Deadline, Error, KeyValue, RequestOptions, Result, Row, Schema, Value};
use proptest::prelude::*;

/// The CI seed triple: every seeded test iterates all three, so one run of
/// this binary covers three independent deterministic fault schedules.
const SEEDS: [u64; 3] = [0xA11CE, 0xB0B, 0xC0FFEE];

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("k", openmldb::DataType::Bigint),
        ("v", openmldb::DataType::Double),
        ("ts", openmldb::DataType::Timestamp),
    ])
    .unwrap()
}

fn mk_table(name: &str) -> Arc<MemTable> {
    Arc::new(
        MemTable::new(
            name,
            schema(),
            vec![IndexSpec {
                name: "by_k".into(),
                key_cols: vec![0],
                ts_col: Some(2),
                ttl: Ttl::Unlimited,
            }],
        )
        .unwrap(),
    )
}

fn row(k: i64, v: f64, ts: i64) -> Row {
    Row::new(vec![
        Value::Bigint(k),
        Value::Double(v),
        Value::Timestamp(ts),
    ])
}

struct Cat;
impl Catalog for Cat {
    fn table_schema(&self, name: &str) -> Option<Schema> {
        (name == "events").then(schema)
    }
}

/// A provider that injects a fixed latency into every ranged read —
/// feature-independent slow storage for the deadline tests.
struct SlowProvider {
    tables: HashMap<String, Arc<dyn DataTable>>,
    delay: Duration,
}

impl SlowProvider {
    fn new(delay: Duration) -> Self {
        SlowProvider {
            tables: HashMap::new(),
            delay,
        }
    }

    fn insert(&mut self, table: Arc<MemTable>) {
        let name = DataTable::name(&*table).to_string();
        let delay = self.delay;
        self.tables.insert(
            name,
            Arc::new(SlowTable {
                inner: table,
                delay,
            }),
        );
    }
}

impl TableProvider for SlowProvider {
    fn table(&self, name: &str) -> Option<Arc<dyn DataTable>> {
        self.tables.get(name).cloned()
    }
}

struct SlowTable {
    inner: Arc<MemTable>,
    delay: Duration,
}

impl DataTable for SlowTable {
    fn name(&self) -> &str {
        DataTable::name(&*self.inner)
    }
    fn backend(&self) -> openmldb::storage::Backend {
        self.inner.backend()
    }
    fn set_max_memory_bytes(&self, limit: usize) {
        DataTable::set_max_memory_bytes(&*self.inner, limit)
    }
    fn schema(&self) -> &Schema {
        DataTable::schema(&*self.inner)
    }
    fn replicator(&self) -> &Arc<openmldb::storage::Replicator> {
        DataTable::replicator(&*self.inner)
    }
    fn index_specs(&self) -> Vec<IndexSpec> {
        DataTable::index_specs(&*self.inner)
    }
    fn find_index(&self, key_cols: &[usize], ts_col: Option<usize>) -> Option<usize> {
        DataTable::find_index(&*self.inner, key_cols, ts_col)
    }
    fn put(&self, row: &Row) -> Result<u64> {
        DataTable::put(&*self.inner, row)
    }
    fn latest(&self, index_id: usize, key: &[KeyValue]) -> Result<Option<Row>> {
        std::thread::sleep(self.delay);
        DataTable::latest(&*self.inner, index_id, key)
    }
    fn latest_where(
        &self,
        index_id: usize,
        key: &[KeyValue],
        upper_ts: Option<i64>,
        pred: &mut dyn FnMut(&Row) -> bool,
    ) -> Result<Option<Row>> {
        std::thread::sleep(self.delay);
        DataTable::latest_where(&*self.inner, index_id, key, upper_ts, pred)
    }
    fn range_projected(
        &self,
        index_id: usize,
        key: &[KeyValue],
        lower_ts: i64,
        upper_ts: i64,
        wanted: Option<&[bool]>,
    ) -> Result<Vec<(i64, Row)>> {
        std::thread::sleep(self.delay);
        DataTable::range_projected(&*self.inner, index_id, key, lower_ts, upper_ts, wanted)
    }
    fn latest_n_projected(
        &self,
        index_id: usize,
        key: &[KeyValue],
        upper_ts: i64,
        limit: usize,
        wanted: Option<&[bool]>,
    ) -> Result<Vec<(i64, Row)>> {
        std::thread::sleep(self.delay);
        DataTable::latest_n_projected(&*self.inner, index_id, key, upper_ts, limit, wanted)
    }
    fn scan_window(
        &self,
        index_id: usize,
        key: &[KeyValue],
        lower_ts: i64,
        upper_ts: i64,
        limit: Option<usize>,
        visitor: &mut dyn FnMut(i64, &[u8]) -> bool,
    ) -> Result<()> {
        // Delay *per visited entry* (not per call) so a deadline can expire
        // in the middle of a streaming scan, between rows.
        let delay = self.delay;
        DataTable::scan_window(
            &*self.inner,
            index_id,
            key,
            lower_ts,
            upper_ts,
            limit,
            &mut |ts, data| {
                std::thread::sleep(delay);
                visitor(ts, data)
            },
        )
    }
    fn scan_all(&self, index_id: usize) -> Result<Vec<Row>> {
        DataTable::scan_all(&*self.inner, index_id)
    }
    fn gc(&self, now_ms: i64) -> usize {
        DataTable::gc(&*self.inner, now_ms)
    }
    fn mem_used(&self) -> usize {
        DataTable::mem_used(&*self.inner)
    }
    fn row_count(&self) -> usize {
        DataTable::row_count(&*self.inner)
    }
}

fn serving_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE events (k BIGINT, v DOUBLE, ts TIMESTAMP, INDEX(KEY=k, TS=ts))")
        .unwrap();
    for i in 0..400i64 {
        db.insert_row("events", &row(i % 8, (i % 10) as f64, i * 25))
            .unwrap();
    }
    db.deploy(
        "DEPLOY f AS SELECT k, sum(v) OVER w AS s, count(v) OVER w AS c FROM events \
         WINDOW w AS (PARTITION BY k ORDER BY ts \
         ROWS_RANGE BETWEEN 2s PRECEDING AND CURRENT ROW)",
    )
    .unwrap();
    db
}

/// One serving loop under an installed plan; returns
/// (ok, timeouts, degraded, retries, failovers, lost).
fn serve_loop(db: &Database, requests: usize) -> (usize, usize, usize, u64, u64, usize) {
    serve_loop_with(
        db,
        requests,
        &RequestOptions::with_deadline(Duration::from_millis(500)),
    )
}

fn serve_loop_with(
    db: &Database,
    requests: usize,
    opts: &RequestOptions,
) -> (usize, usize, usize, u64, u64, usize) {
    let (mut ok, mut timeouts, mut degraded, mut lost) = (0usize, 0usize, 0usize, 0usize);
    let (mut retries, mut failovers) = (0u64, 0u64);
    for i in 0..requests {
        let req = row((i % 8) as i64, 1.0, 10_000 + i as i64);
        match db.request_readonly_with("f", &req, opts) {
            Ok(o) => {
                ok += 1;
                if o.degraded {
                    degraded += 1;
                }
                retries += u64::from(o.retries);
                failovers += u64::from(o.failovers);
            }
            Err(Error::Timeout { .. }) => timeouts += 1,
            Err(_) => lost += 1,
        }
    }
    (ok, timeouts, degraded, retries, failovers, lost)
}

/// The headline contract at 1% faults, per CI seed: zero lost requests,
/// every request resolves, and the whole run is a pure function of the
/// seed (two identical runs produce identical outcome counts).
#[test]
fn fixed_seeds_one_percent_faults_zero_lost() {
    let db = serving_db();
    db.enable_failover("events").unwrap();
    for seed in SEEDS {
        let plan = || {
            Plan::new(seed)
                .error_rate(InjectionPoint::SkiplistSeek, 0.01)
                .latency(
                    InjectionPoint::SkiplistSeek,
                    0.01,
                    Duration::from_micros(100),
                )
        };
        openmldb::chaos::install(plan());
        let first = serve_loop(&db, 300);
        openmldb::chaos::install(plan());
        let second = serve_loop(&db, 300);
        openmldb::chaos::reset();

        let (ok, timeouts, _degraded, retries, _failovers, lost) = first;
        assert_eq!(lost, 0, "seed {seed:#x}: no request may be lost");
        assert_eq!(ok + timeouts, 300, "seed {seed:#x}: every request resolves");
        if openmldb::chaos::enabled() {
            assert!(
                retries > 0,
                "seed {seed:#x}: 1% faults must exercise retries"
            );
            assert_eq!(
                first, second,
                "seed {seed:#x}: same seed, same call sequence, same outcomes"
            );
        } else {
            assert_eq!(retries, 0);
            assert_eq!(timeouts, 0);
        }
    }
}

/// Exactly-once binlog delivery under subscriber kills: kills leave a
/// contiguous applied prefix, and the flush barrier heals every gap from
/// the durable log — the replica ends complete with no duplicates.
#[test]
fn exactly_once_delivery_under_kills() {
    for seed in SEEDS {
        openmldb::chaos::install(Plan::new(seed).kill_rate(InjectionPoint::BinlogDelivery, 0.3));
        let leader = mk_table("events");
        let replica = ReplicaTable::follow(&*leader).unwrap();
        for i in 0..200i64 {
            leader.put(&row(i % 4, i as f64, i * 10)).unwrap();
        }
        replica.sync();
        openmldb::chaos::reset();

        assert_eq!(
            replica.applied_rows(),
            200,
            "seed {seed:#x}: every entry applied exactly once after healing"
        );
        assert_eq!(replica.apply_errors(), 0, "seed {seed:#x}");
        assert_eq!(replica.lag(), 0, "seed {seed:#x}");
        // Values survived the kills byte-for-byte.
        let key = [KeyValue::Int(3)];
        assert_eq!(
            leader.range(0, &key, 0, i64::MAX).unwrap(),
            replica.table().range(0, &key, 0, i64::MAX).unwrap(),
            "seed {seed:#x}"
        );
    }
}

/// Failover end-to-end under heavy faulting. The injection stream is
/// per-call, not per-table, so "dead primary, healthy replica" cannot be
/// expressed directly — instead we fault 60% of ALL seeks so the primary's
/// retry ladder exhausts often enough to exercise failover, and give the
/// ladder a retry budget deep enough that the fallback round always finds
/// clean draws. The plan is seeded, so the outcome is deterministic.
#[test]
fn heavy_faulting_fails_over_and_loses_nothing() {
    if !openmldb::chaos::enabled() {
        return; // needs real injected faults
    }
    let db = serving_db();
    db.enable_failover("events").unwrap();
    openmldb::chaos::install(Plan::new(SEEDS[0]).error_rate(InjectionPoint::SkiplistSeek, 0.6));
    let opts = RequestOptions {
        deadline: Deadline::within_ms(2_000),
        retry: openmldb::RetryPolicy {
            max_retries: 7,
            ..openmldb::RetryPolicy::default()
        },
        ..RequestOptions::default()
    };
    let (ok, timeouts, _degraded, retries, failovers, lost) = serve_loop_with(&db, 200, &opts);
    openmldb::chaos::reset();
    assert_eq!(
        lost, 0,
        "retry + failover must absorb heavy transient faults"
    );
    assert_eq!(ok + timeouts, 200);
    assert!(retries > 0, "60% faults must exercise retries");
    assert!(
        failovers > 0,
        "some primary ladders must exhaust and fail over"
    );
    assert!(
        ok > 0,
        "the fallback answered requests the primary could not"
    );
}

/// Buckets-only degradation: when slow raw-edge reads blow the budget on a
/// pre-aggregated window, the answer comes from buckets alone, is flagged
/// `degraded`, and matches the pre-aggregator's own buckets-only oracle.
#[test]
fn degraded_answer_matches_buckets_only_oracle() {
    let events = mk_table("events");
    for i in 0..50i64 {
        events.put(&row(1, 1.0, i * 100)).unwrap();
    }
    let q = Arc::new(
        compile_select(
            &parse_select(
                "SELECT sum(v) OVER w AS s, count(v) OVER w AS c FROM events \
                 WINDOW w AS (PARTITION BY k ORDER BY ts \
                 ROWS_RANGE BETWEEN 2500 PRECEDING AND CURRENT ROW)",
            )
            .unwrap(),
            &Cat,
        )
        .unwrap(),
    );
    let preagg = PreAggregator::new(&q.windows[0], &q.aggregates, vec![1_000]).unwrap();
    preagg.attach(events.replicator(), openmldb::CompactCodec::new(schema()));
    events.replicator().flush();

    // Raw edge reads sleep 80 ms against a 20 ms budget: the first edge
    // fetch blows the deadline, the second surfaces Timeout inside the
    // window — which is exactly the degradation trigger.
    let mut provider = SlowProvider::new(Duration::from_millis(80));
    provider.insert(events);
    let dep = Deployment::new("d", q).with_preagg(0, preagg.clone());

    // Anchor past the last complete bucket and misaligned lower bound →
    // two uncovered edges.
    let request = row(1, 7.0, 5_250);
    let opts = RequestOptions {
        deadline: Deadline::within(Duration::from_millis(20)),
        ..RequestOptions::default()
    };
    let out = execute_request_with(&provider, &dep, &request, &opts).unwrap();
    assert!(out.degraded, "budget blown on a pre-aggregated window");

    // The oracle: the pre-aggregator's own answer with raw edges skipped.
    let oracle = preagg
        .query_with_extra_row(
            &[KeyValue::Int(1)],
            5_250 - 2_500,
            5_250,
            Some(&request),
            |_, _| Ok(Vec::new()),
        )
        .unwrap();
    assert_eq!(out.row[0], oracle[0], "degraded sum == buckets-only oracle");
    assert_eq!(
        out.row[1], oracle[1],
        "degraded count == buckets-only oracle"
    );

    // Degraded answers are disabled on request: same setup must Timeout.
    let strict = RequestOptions {
        deadline: Deadline::within(Duration::from_millis(20)),
        allow_degraded: false,
        ..RequestOptions::default()
    };
    let err = execute_request_with(&provider, &dep, &request, &strict).unwrap_err();
    assert!(matches!(err, Error::Timeout { .. }), "{err:?}");
}

/// A deadline that expires *between rows* of a streaming window scan must
/// surface as a typed `Timeout` — never as a feature row computed from the
/// partial aggregate the scan had accumulated so far — and the timed-out
/// attempt must not leak scratch state into the next request.
#[test]
fn mid_stream_deadline_yields_typed_timeout_not_partial_aggregate() {
    let events = mk_table("events");
    for i in 0..400i64 {
        events.put(&row(1, 1.0, i * 10)).unwrap();
    }
    let q = Arc::new(
        compile_select(
            &parse_select(
                "SELECT sum(v) OVER w AS s, count(v) OVER w AS c FROM events \
                 WINDOW w AS (PARTITION BY k ORDER BY ts \
                 ROWS_RANGE BETWEEN 10s PRECEDING AND CURRENT ROW)",
            )
            .unwrap(),
            &Cat,
        )
        .unwrap(),
    );
    // 2 ms per *visited entry*: the 400-row scan takes ~800 ms end to end,
    // so a 30 ms budget expires mid-stream, not before the scan starts.
    let mut provider = SlowProvider::new(Duration::from_millis(2));
    provider.insert(events);
    let dep = Deployment::new("d", q);
    let request = row(1, 1.0, 10_000);

    // Unbudgeted reference: all 400 stored rows plus the request row.
    let relaxed = RequestOptions::default();
    let full = execute_request_with(&provider, &dep, &request, &relaxed).unwrap();
    assert_eq!(full.row[0], Value::Double(401.0));
    assert_eq!(full.row[1], Value::Bigint(401));

    let strict = RequestOptions {
        deadline: Deadline::within(Duration::from_millis(30)),
        allow_degraded: false,
        ..RequestOptions::default()
    };
    match execute_request_with(&provider, &dep, &request, &strict) {
        Err(Error::Timeout { stage, budget_ms }) => {
            assert_eq!(stage, "window_scan", "expired between scanned rows");
            assert_eq!(budget_ms, 30);
        }
        // The contract permits only the full answer or a typed Timeout —
        // a partial sum/count would show up as a different row here.
        Ok(out) => assert_eq!(out.row, full.row),
        Err(e) => panic!("only Timeout or the full answer allowed, got {e:?}"),
    }

    // The aborted attempt returned its scratch to the deployment pool;
    // a later unbudgeted request must see clean buffers, not stale entries.
    let again = execute_request_with(&provider, &dep, &request, &relaxed).unwrap();
    assert_eq!(again.row, full.row);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// Deadline-budgeted serving never hangs: with arbitrarily slow storage
    /// and an arbitrary budget, every request resolves to a feature row or
    /// a typed Timeout, within budget + bounded slack (one storage access
    /// may be in flight when the budget expires, plus scheduling noise).
    #[test]
    fn deadline_budget_is_honored_never_hangs(
        budget_ms in 1u64..60,
        delay_ms in 0u64..8,
        rows in 1usize..40,
    ) {
        let events = mk_table("events");
        for i in 0..rows as i64 {
            events.put(&row(1, i as f64, i * 10)).unwrap();
        }
        let q = Arc::new(
            compile_select(
                &parse_select(
                    "SELECT sum(v) OVER w AS s FROM events \
                     WINDOW w AS (PARTITION BY k ORDER BY ts \
                     ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW)",
                )
                .unwrap(),
                &Cat,
            )
            .unwrap(),
        );
        let mut provider = SlowProvider::new(Duration::from_millis(delay_ms));
        provider.insert(events);
        let dep = Deployment::new("d", q);
        let opts = RequestOptions {
            deadline: Deadline::within_ms(budget_ms),
            ..RequestOptions::default()
        };

        let t0 = Instant::now();
        let out = execute_request_with(&provider, &dep, &row(1, 1.0, 10_000), &opts);
        let elapsed = t0.elapsed();

        // Slack: one in-flight storage access (delay_ms) + retries'
        // capped backoffs + generous scheduling noise.
        let slack = Duration::from_millis(delay_ms * 4 + 250);
        prop_assert!(
            elapsed <= Duration::from_millis(budget_ms) + slack,
            "took {elapsed:?} against budget {budget_ms} ms"
        );
        match out {
            Ok(o) => prop_assert!(!o.degraded, "no preagg deployed, cannot degrade"),
            Err(Error::Timeout { stage, budget_ms: b }) => {
                prop_assert!(!stage.is_empty());
                prop_assert_eq!(b, budget_ms);
            }
            Err(e) => prop_assert!(false, "only success or Timeout allowed, got {e:?}"),
        }
    }
}
