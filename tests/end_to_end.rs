//! End-to-end lifecycle tests spanning every crate: SQL DDL/DML, execution
//! modes, TTL garbage collection, memory isolation, feature export, the disk
//! engine, and concurrent serving.

use std::sync::Arc;

use openmldb::exec::{infer_feature_kinds, to_libsvm, FeatureKind};
use openmldb::online::TableProvider;
use openmldb::sql::PlanCache;
use openmldb::storage::{ColumnFamilySpec, DiskEngine};
use openmldb::{Database, ExecResult, KeyValue, Row, Value};

fn feature_db() -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE clicks (user BIGINT, item STRING, price DOUBLE, label INT, ts TIMESTAMP,
         INDEX(KEY=user, TS=ts, TTL=1d, TTL_TYPE=absolute))",
    )
    .unwrap();
    for i in 0..200i64 {
        db.execute(&format!(
            "INSERT INTO clicks VALUES ({}, 'item{}', {}.25, {}, {})",
            i % 8,
            i % 20,
            i % 50,
            (i % 5 == 0) as i32,
            i * 1_000
        ))
        .unwrap();
    }
    db
}

#[test]
fn full_lifecycle_train_then_serve() {
    let db = feature_db();
    let script = "SELECT
            binary_label(label) AS y,
            continuous(sum(price) OVER w) AS spend,
            continuous(count(price) OVER w) AS events,
            discrete(item, 1024) AS item_id
        FROM clicks
        WINDOW w AS (PARTITION BY user ORDER BY ts
                     ROWS_RANGE BETWEEN 30s PRECEDING AND CURRENT ROW)";

    // Offline: training set + LibSVM export.
    let ExecResult::Batch(training) = db.execute(script).unwrap() else {
        panic!()
    };
    assert_eq!(training.rows.len(), 200);
    let plan = PlanCache::new().compile(script, &db).unwrap();
    let kinds = infer_feature_kinds(&plan);
    assert_eq!(kinds[0], FeatureKind::Label);
    assert!(matches!(kinds[3], FeatureKind::Discrete { dim: 1024 }));
    let line = to_libsvm(&training.rows[0], &kinds).unwrap();
    assert!(line.split(' ').count() >= 3, "label + features: {line}");

    // Online: deploy the same script, serve a request.
    db.deploy(&format!("DEPLOY serving AS {script}")).unwrap();
    let request = Row::new(vec![
        Value::Bigint(3),
        Value::string("item7"),
        Value::Double(19.5),
        Value::Int(0),
        Value::Timestamp(220_000),
    ]);
    let features = db.request("serving", &request).unwrap();
    assert_eq!(features.len(), 4);
    assert_eq!(features[0], Value::Int(0));
}

#[test]
fn ttl_gc_shrinks_windows() {
    let db = feature_db();
    db.deploy(
        "DEPLOY counts AS SELECT count(price) OVER w AS c FROM clicks \
         WINDOW w AS (PARTITION BY user ORDER BY ts \
         ROWS_RANGE BETWEEN 1000s PRECEDING AND CURRENT ROW)",
    )
    .unwrap();
    let request = Row::new(vec![
        Value::Bigint(1),
        Value::string("x"),
        Value::Double(0.0),
        Value::Int(0),
        Value::Timestamp(200_000),
    ]);
    let before = db.request_readonly("counts", &request).unwrap();
    // GC at a "now" far enough that the 1-day TTL expires old rows.
    let removed = db.gc(200_000 + 86_400_000);
    assert!(
        removed > 0,
        "absolute TTL evicts everything older than a day"
    );
    let after = db.request_readonly("counts", &request).unwrap();
    assert!(after[0].as_i64().unwrap() < before[0].as_i64().unwrap());
}

#[test]
fn deployment_and_statement_errors_are_reported() {
    let db = feature_db();
    // Unknown deployment.
    assert!(db.request_readonly("nope", &Row::new(vec![])).is_err());
    // Duplicate deployment name.
    db.deploy("DEPLOY dup AS SELECT user FROM clicks").unwrap();
    let err = db
        .deploy("DEPLOY dup AS SELECT user FROM clicks")
        .unwrap_err();
    assert!(err.to_string().contains("already exists"));
    // Unknown window in long_windows.
    let err = db
        .deploy(
            "DEPLOY bad OPTIONS(long_windows=\"nope:1d\") AS \
             SELECT sum(price) OVER w AS s FROM clicks \
             WINDOW w AS (PARTITION BY user ORDER BY ts ROWS_RANGE BETWEEN 1d PRECEDING AND CURRENT ROW)",
        )
        .unwrap_err();
    assert!(err.to_string().contains("unknown window"));
    // Order-dependent aggregate cannot be pre-aggregated.
    let err = db
        .deploy(
            "DEPLOY bad2 OPTIONS(long_windows=\"w:1d\") AS \
             SELECT drawdown(price) OVER w AS d FROM clicks \
             WINDOW w AS (PARTITION BY user ORDER BY ts ROWS_RANGE BETWEEN 1d PRECEDING AND CURRENT ROW)",
        )
        .unwrap_err();
    assert!(err.to_string().contains("order-dependent"));
    // Bad SQL surfaces parse position.
    assert!(db.execute("SELEC 1").is_err());
}

#[test]
fn concurrent_requests_and_writes() {
    let db = Arc::new(feature_db());
    db.deploy(
        "DEPLOY conc AS SELECT user, count(price) OVER w AS c FROM clicks \
         WINDOW w AS (PARTITION BY user ORDER BY ts \
         ROWS_RANGE BETWEEN 60s PRECEDING AND CURRENT ROW)",
    )
    .unwrap();
    let mut handles = Vec::new();
    for t in 0..4 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..200 {
                let row = Row::new(vec![
                    Value::Bigint(t),
                    Value::string("live"),
                    Value::Double(1.0),
                    Value::Int(0),
                    Value::Timestamp(300_000 + i * 10 + t),
                ]);
                let out = db.request("conc", &row).unwrap();
                assert!(out[1].as_i64().unwrap() >= 1, "window includes the request");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // 4 threads × 200 requests all persisted on top of the 200 seed rows.
    let ExecResult::Batch(b) = db.execute("SELECT user FROM clicks").unwrap() else {
        panic!()
    };
    assert_eq!(b.rows.len(), 200 + 800);
}

#[test]
fn disk_engine_serves_time_ranges() {
    // The RocksDB-substitute path (Section 7.3) as a persistence tier.
    let engine = DiskEngine::new(
        vec![
            ColumnFamilySpec {
                name: "by_user".into(),
                eviction_ttl_ms: Some(100_000),
            },
            ColumnFamilySpec {
                name: "by_item".into(),
                eviction_ttl_ms: None,
            },
        ],
        64, // tiny memtable to force flushes
    )
    .unwrap();
    for i in 0..500i64 {
        let payload: Arc<[u8]> = Arc::from(i.to_le_bytes().to_vec().into_boxed_slice());
        engine
            .put(0, &[KeyValue::Int(i % 10)], i * 100, payload.clone())
            .unwrap();
        engine
            .put(1, &[KeyValue::Int(i % 3)], i * 100, payload)
            .unwrap();
    }
    let hits = engine
        .range(0, &[KeyValue::Int(4)], 10_000, 30_000)
        .unwrap();
    assert!(!hits.is_empty());
    assert!(hits.windows(2).all(|w| w[0].0 >= w[1].0), "newest first");
    for (ts, _) in &hits {
        assert!((10_000..=30_000).contains(ts));
    }
    // now=120_000, TTL 100_000 → cf0 entries older than ts=20_000 expire.
    let dropped = engine.evict(120_000);
    assert_eq!(dropped, 200, "cf0 drops its first 200 entries");
    assert!(engine
        .range(0, &[KeyValue::Int(4)], 0, 19_999)
        .unwrap()
        .is_empty());
    assert_eq!(
        engine
            .range(1, &[KeyValue::Int(1)], 0, i64::MAX)
            .unwrap()
            .len(),
        167
    );
}

#[test]
fn memory_model_guides_engine_choice() {
    use openmldb::{
        estimate_memory, recommend_engine, EngineChoice, IndexMemProfile, TableMemProfile,
        TableType,
    };
    let profile = TableMemProfile {
        replicas: 3,
        indexes: vec![IndexMemProfile {
            unique_keys: 10_000_000,
            avg_key_len: 16,
        }],
        rows: 100_000_000,
        avg_row_len: 500,
        table_type: TableType::Absolute,
        data_copies: 1,
    };
    let estimate = estimate_memory(&[profile]);
    assert!(estimate > 150_000_000_000, "hundreds of GB: {estimate}");
    assert_eq!(
        recommend_engine(estimate, 64 * (1 << 30), 10),
        EngineChoice::DiskRequired
    );
}

#[test]
fn memory_isolation_keeps_serving() {
    let db = feature_db();
    db.deploy(
        "DEPLOY iso AS SELECT count(price) OVER w AS c FROM clicks \
         WINDOW w AS (PARTITION BY user ORDER BY ts ROWS_RANGE BETWEEN 60s PRECEDING AND CURRENT ROW)",
    )
    .unwrap();
    let table = TableProvider::table(&db, "clicks").unwrap();
    db.memory_monitor()
        .watch(table.clone(), table.mem_used(), 0.9);
    let request = Row::new(vec![
        Value::Bigint(1),
        Value::string("x"),
        Value::Double(1.0),
        Value::Int(0),
        Value::Timestamp(999_000),
    ]);
    // `request` persists the row — that write is now rejected...
    assert!(db.request("iso", &request).is_err());
    // ...but the read-only path still serves.
    assert!(db.request_readonly("iso", &request).is_ok());
    assert_eq!(db.memory_monitor().poll().len(), 1);
}

#[test]
fn disk_backed_table_serves_all_three_modes() {
    let db = Database::new();
    db.create_disk_table(
        "CREATE TABLE cold (k BIGINT, v DOUBLE, ts TIMESTAMP, INDEX(KEY=k, TS=ts))",
    )
    .unwrap();
    for i in 0..300 {
        db.execute(&format!(
            "INSERT INTO cold VALUES ({}, {}.0, {})",
            i % 4,
            i,
            i * 10
        ))
        .unwrap();
    }
    let sql = "SELECT k, sum(v) OVER w AS s FROM cold WINDOW w AS \
               (PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 500 PRECEDING AND CURRENT ROW)";
    // Offline mode.
    let ExecResult::Batch(batch) = db.execute(sql).unwrap() else {
        panic!()
    };
    assert_eq!(batch.rows.len(), 300);
    // Preview mode (cached).
    let p1 = db.preview(sql, 10).unwrap();
    let p2 = db.preview(sql, 10).unwrap();
    assert_eq!(p1.rows, p2.rows);
    assert_eq!(db.preview_cache_hits(), 1);
    // Request mode.
    db.deploy(&format!("DEPLOY cold_q AS {sql}")).unwrap();
    let out = db
        .request(
            "cold_q",
            &Row::new(vec![
                Value::Bigint(2),
                Value::Double(5.0),
                Value::Timestamp(3_000),
            ]),
        )
        .unwrap();
    // Stored k=2 rows with ts ∈ [2500, 3000] are i ∈ {250, 254, ..., 298}
    // (13 rows, Σi = 3562) plus the request row's 5.0.
    assert_eq!(out[1].as_f64().unwrap(), 3_567.0);
}
