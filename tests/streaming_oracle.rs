//! Property-based oracle for the zero-allocation request path: the
//! streaming `RowView` pipeline (`execute_request`) must produce
//! **bit-identical** feature rows to the materializing reference path
//! (`execute_request_materialized`) — same schemas, same frames, same
//! float-fold order. Fuzzed across random schemas (numeric and var-length
//! string columns, random null bitmaps), ROWS / ROWS_RANGE frames,
//! MAXSIZE caps and EXCLUDE CURRENT_ROW.

use openmldb::online::{execute_request, execute_request_materialized};
use openmldb::{Database, Row, Value};
use proptest::prelude::*;

/// Payload column type by index: the mix covers every RowView read shape —
/// fixed-width numerics, the null bitmap, and var-length string slices.
fn type_name(t: u8) -> &'static str {
    match t % 4 {
        0 => "DOUBLE",
        1 => "BIGINT",
        2 => "INT",
        _ => "STRING",
    }
}

/// Deterministic column value from a per-row seed. Bit `j` of `nulls`
/// blanks column `j` (null-bitmap edge cases, including all-null rows).
/// Strings vary in length from empty up — the var-length offsets are where
/// a borrowed decoder can go wrong.
fn col_value(t: u8, j: usize, seed: u64, nulls: u8) -> Value {
    if nulls & (1 << (j % 8)) != 0 {
        return Value::Null;
    }
    let s = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(j as u32);
    match t % 4 {
        0 => Value::Double((s % 2_000) as f64 / 8.0 - 125.0),
        1 => Value::Bigint(s as i64 % 500),
        2 => Value::Int(s as i32 % 100),
        _ => Value::string("ab".repeat((s % 7) as usize)),
    }
}

fn make_row(id: i64, k: i64, ts: i64, cols: &[u8], seed: u64, nulls: u8) -> Row {
    let mut v = Vec::with_capacity(cols.len() + 3);
    v.push(Value::Bigint(id));
    v.push(Value::Bigint(k));
    for (j, &t) in cols.iter().enumerate() {
        v.push(col_value(t, j, seed, nulls));
    }
    v.push(Value::Timestamp(ts));
    Row::new(v)
}

/// Aggregates per column, chosen by type so every RowView accessor is
/// exercised: numeric sum/min/max/count, string count/distinct_count.
fn select_list(cols: &[u8]) -> String {
    let mut out = String::from("id");
    for (j, &t) in cols.iter().enumerate() {
        match t % 4 {
            0..=2 => {
                out.push_str(&format!(
                    ", sum(c{j}) OVER w AS s{j}, min(c{j}) OVER w AS mn{j}, \
                     max(c{j}) OVER w AS mx{j}, count(c{j}) OVER w AS ct{j}"
                ));
            }
            _ => {
                out.push_str(&format!(
                    ", count(c{j}) OVER w AS ct{j}, distinct_count(c{j}) OVER w AS dc{j}"
                ));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn streaming_pipeline_matches_materializing_path(
        cols in proptest::collection::vec(0u8..4, 1..4),
        rows in proptest::collection::vec((0i64..4, 0i64..300, 0u64..u64::MAX, 0u8..255), 10..80),
        probes in proptest::collection::vec((0i64..5, 0i64..350, 0u64..u64::MAX, 0u8..255), 1..4),
        frame in 1i64..200,
        rows_frame in any::<bool>(),
        maxsize in 0usize..8,
        exclude in any::<bool>(),
    ) {
        let db = Database::new();
        let col_defs: String = cols
            .iter()
            .enumerate()
            .map(|(j, &t)| format!("c{j} {}, ", type_name(t)))
            .collect();
        db.execute(&format!(
            "CREATE TABLE t (id BIGINT, k BIGINT, {col_defs}ts TIMESTAMP, \
             INDEX(KEY=k, TS=ts))"
        ))
        .unwrap();
        for (i, (k, ts, seed, nulls)) in rows.iter().enumerate() {
            db.insert_row("t", &make_row(i as i64, *k, *ts, &cols, *seed, *nulls))
                .unwrap();
        }

        let frame_clause = if rows_frame {
            format!("ROWS BETWEEN {frame} PRECEDING AND CURRENT ROW")
        } else {
            format!("ROWS_RANGE BETWEEN {frame} PRECEDING AND CURRENT ROW")
        };
        let maxsize_clause = if maxsize > 0 {
            format!(" MAXSIZE {maxsize}")
        } else {
            String::new()
        };
        let exclude_clause = if exclude { " EXCLUDE CURRENT_ROW" } else { "" };
        let sql = format!(
            "SELECT {} FROM t WINDOW w AS (PARTITION BY k ORDER BY ts \
             {frame_clause}{maxsize_clause}{exclude_clause})",
            select_list(&cols)
        );
        db.deploy(&format!("DEPLOY p AS {sql}")).unwrap();
        let dep = db.deployment("p").unwrap();

        for (n, (k, ts, seed, nulls)) in probes.iter().enumerate() {
            let probe = make_row(900_000 + n as i64, *k, *ts, &cols, *seed, *nulls);
            let streaming = execute_request(&db, &dep, &probe).unwrap();
            let materialized = execute_request_materialized(&db, &dep, &probe).unwrap();
            // Bit-identical: both paths fold the same values in the same
            // order, so even float aggregates must match exactly.
            prop_assert_eq!(
                streaming.values(),
                materialized.values(),
                "probe {} diverged under {}",
                n,
                sql
            );
        }
    }
}
