//! Property-based oracle for the zero-allocation request path: the
//! streaming `RowView` pipeline (`execute_request`) must produce
//! **bit-identical** feature rows to the materializing reference path
//! (`execute_request_materialized`) — same schemas, same frames, same
//! float-fold order. Fuzzed across random schemas (numeric and var-length
//! string columns, random null bitmaps), ROWS / ROWS_RANGE frames,
//! MAXSIZE caps and EXCLUDE CURRENT_ROW.
//!
//! Since plans now specialize into bytecode programs at deploy time, the
//! oracle runs **three-way**: the compiled streaming path (the deployment's
//! default when the plan specializes), the interpreted streaming path
//! (pinned via [`Deployment::with_interpreted_windows`]), and the
//! materializing reference — all bit-identical, including typed deadline
//! timeouts.

use std::time::Duration;

use openmldb::online::{
    execute_request, execute_request_materialized, execute_request_with, Deployment,
};
use openmldb::{Database, Error, RequestOptions, Row, Value};
use proptest::prelude::*;

/// Payload column type by index: the mix covers every RowView read shape —
/// fixed-width numerics, the null bitmap, and var-length string slices.
fn type_name(t: u8) -> &'static str {
    match t % 4 {
        0 => "DOUBLE",
        1 => "BIGINT",
        2 => "INT",
        _ => "STRING",
    }
}

/// Deterministic column value from a per-row seed. Bit `j` of `nulls`
/// blanks column `j` (null-bitmap edge cases, including all-null rows).
/// Strings vary in length from empty up — the var-length offsets are where
/// a borrowed decoder can go wrong.
fn col_value(t: u8, j: usize, seed: u64, nulls: u8) -> Value {
    if nulls & (1 << (j % 8)) != 0 {
        return Value::Null;
    }
    let s = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(j as u32);
    match t % 4 {
        0 => Value::Double((s % 2_000) as f64 / 8.0 - 125.0),
        1 => Value::Bigint(s as i64 % 500),
        2 => Value::Int(s as i32 % 100),
        _ => Value::string("ab".repeat((s % 7) as usize)),
    }
}

fn make_row(id: i64, k: i64, ts: i64, cols: &[u8], seed: u64, nulls: u8) -> Row {
    let mut v = Vec::with_capacity(cols.len() + 3);
    v.push(Value::Bigint(id));
    v.push(Value::Bigint(k));
    for (j, &t) in cols.iter().enumerate() {
        v.push(col_value(t, j, seed, nulls));
    }
    v.push(Value::Timestamp(ts));
    Row::new(v)
}

/// Aggregates per column, chosen by type so every RowView accessor is
/// exercised: numeric sum/min/max/count, string count/distinct_count.
fn select_list(cols: &[u8]) -> String {
    let mut out = String::from("id");
    for (j, &t) in cols.iter().enumerate() {
        match t % 4 {
            0..=2 => {
                out.push_str(&format!(
                    ", sum(c{j}) OVER w AS s{j}, min(c{j}) OVER w AS mn{j}, \
                     max(c{j}) OVER w AS mx{j}, count(c{j}) OVER w AS ct{j}"
                ));
            }
            _ => {
                out.push_str(&format!(
                    ", count(c{j}) OVER w AS ct{j}, distinct_count(c{j}) OVER w AS dc{j}"
                ));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn streaming_pipeline_matches_materializing_path(
        cols in proptest::collection::vec(0u8..4, 1..4),
        rows in proptest::collection::vec((0i64..4, 0i64..300, 0u64..u64::MAX, 0u8..255), 10..80),
        probes in proptest::collection::vec((0i64..5, 0i64..350, 0u64..u64::MAX, 0u8..255), 1..4),
        frame in 1i64..200,
        rows_frame in any::<bool>(),
        maxsize in 0usize..8,
        exclude in any::<bool>(),
    ) {
        let db = Database::new();
        let col_defs: String = cols
            .iter()
            .enumerate()
            .map(|(j, &t)| format!("c{j} {}, ", type_name(t)))
            .collect();
        db.execute(&format!(
            "CREATE TABLE t (id BIGINT, k BIGINT, {col_defs}ts TIMESTAMP, \
             INDEX(KEY=k, TS=ts))"
        ))
        .unwrap();
        for (i, (k, ts, seed, nulls)) in rows.iter().enumerate() {
            db.insert_row("t", &make_row(i as i64, *k, *ts, &cols, *seed, *nulls))
                .unwrap();
        }

        let frame_clause = if rows_frame {
            format!("ROWS BETWEEN {frame} PRECEDING AND CURRENT ROW")
        } else {
            format!("ROWS_RANGE BETWEEN {frame} PRECEDING AND CURRENT ROW")
        };
        let maxsize_clause = if maxsize > 0 {
            format!(" MAXSIZE {maxsize}")
        } else {
            String::new()
        };
        let exclude_clause = if exclude { " EXCLUDE CURRENT_ROW" } else { "" };
        let sql = format!(
            "SELECT {} FROM t WINDOW w AS (PARTITION BY k ORDER BY ts \
             {frame_clause}{maxsize_clause}{exclude_clause})",
            select_list(&cols)
        );
        db.deploy(&format!("DEPLOY p AS {sql}")).unwrap();
        let dep = db.deployment("p").unwrap();
        // Same plan, specialization pinned off: the interpreted streaming
        // path the compiled kernels must reproduce bit for bit.
        let interp =
            Deployment::new("p_interp", dep.query.clone()).with_interpreted_windows();

        for (n, (k, ts, seed, nulls)) in probes.iter().enumerate() {
            let probe = make_row(900_000 + n as i64, *k, *ts, &cols, *seed, *nulls);
            let streaming = execute_request(&db, &dep, &probe).unwrap();
            let interpreted = execute_request(&db, &interp, &probe).unwrap();
            let materialized = execute_request_materialized(&db, &dep, &probe).unwrap();
            // Bit-identical: all paths fold the same values in the same
            // order, so even float aggregates must match exactly.
            prop_assert_eq!(
                streaming.values(),
                materialized.values(),
                "probe {} diverged (compiled vs materialized) under {}",
                n,
                sql
            );
            prop_assert_eq!(
                streaming.values(),
                interpreted.values(),
                "probe {} diverged (compiled vs interpreted) under {}",
                n,
                sql
            );
        }

        // Typed timeout parity: an exhausted deadline must surface the same
        // `Error::Timeout` on the compiled and interpreted streaming paths
        // (degradation off so the timeout cannot be absorbed).
        let (k, ts, seed, nulls) = probes[0];
        let probe = make_row(990_000, k, ts, &cols, seed, nulls);
        let opts = RequestOptions {
            allow_degraded: false,
            ..RequestOptions::with_deadline(Duration::ZERO)
        };
        let compiled_timeout = execute_request_with(&db, &dep, &probe, &opts);
        let interp_timeout = execute_request_with(&db, &interp, &probe, &opts);
        match (&compiled_timeout, &interp_timeout) {
            (
                Err(Error::Timeout { stage: s1, budget_ms: b1 }),
                Err(Error::Timeout { stage: s2, budget_ms: b2 }),
            ) => {
                prop_assert_eq!(s1, s2, "timeout stages diverged");
                prop_assert_eq!(b1, b2);
            }
            other => prop_assert!(false, "expected typed timeouts, got {:?}", other),
        }
    }
}

/// A plan using an aggregate with no specialized kernel (`distinct_count`)
/// must fall back per window: the deployment still serves correct answers
/// through the interpreted path, and every such serve is attributed on the
/// fallback counter.
#[test]
fn unsupported_plans_serve_interpreted_with_fallback_attribution() {
    let db = Database::new();
    db.execute(
        "CREATE TABLE t (id BIGINT, k BIGINT, v BIGINT, ts TIMESTAMP, \
         INDEX(KEY=k, TS=ts))",
    )
    .unwrap();
    for i in 0..40i64 {
        db.insert_row(
            "t",
            &Row::new(vec![
                Value::Bigint(i),
                Value::Bigint(i % 3),
                Value::Bigint(i * 7 % 13),
                Value::Timestamp(1_000 + i),
            ]),
        )
        .unwrap();
    }
    db.deploy(
        "DEPLOY pf AS SELECT id, distinct_count(v) OVER w AS dc, sum(v) OVER w AS sv \
         FROM t WINDOW w AS (PARTITION BY k ORDER BY ts \
         ROWS BETWEEN 10 PRECEDING AND CURRENT ROW)",
    )
    .unwrap();
    let dep = db.deployment("pf").unwrap();

    // The specializer recorded why the window stays interpreted.
    assert!(
        dep.program()
            .fallback_reason(0)
            .is_some_and(|r| r.contains("no specialized kernel")),
        "distinct_count must decline specialization"
    );
    assert_eq!(dep.program().compiled_windows(), 0);
    assert_eq!(dep.program().fallback_windows(), 1);

    let before = openmldb::online::metrics::compiled_fallback().value();
    let probe = Row::new(vec![
        Value::Bigint(900_000),
        Value::Bigint(1),
        Value::Bigint(5),
        Value::Timestamp(2_000),
    ]);
    let served = execute_request(&db, &dep, &probe).unwrap();
    let oracle = execute_request_materialized(&db, &dep, &probe).unwrap();
    assert_eq!(served.values(), oracle.values());
    // Counter attribution is compiled out under obs-off; the serve-path
    // equivalence above is the part that must hold everywhere.
    if cfg!(not(feature = "obs-off")) {
        assert_eq!(
            openmldb::online::metrics::compiled_fallback().value(),
            before + 1,
            "each interpreted serve of a declined window increments the counter"
        );
    }
}

/// Plans inside the specializable subset compile end to end and serve
/// through the kernels (sanity pin for the compiled-path counter, so the
/// three-way proptest above is actually comparing distinct paths).
#[test]
fn specialized_plans_serve_through_compiled_kernels() {
    let db = Database::new();
    db.execute(
        "CREATE TABLE t (id BIGINT, k BIGINT, v DOUBLE, ts TIMESTAMP, \
         INDEX(KEY=k, TS=ts))",
    )
    .unwrap();
    for i in 0..64i64 {
        db.insert_row(
            "t",
            &Row::new(vec![
                Value::Bigint(i),
                Value::Bigint(i % 2),
                Value::Double(i as f64 * 0.75 - 9.0),
                Value::Timestamp(1_000 + i),
            ]),
        )
        .unwrap();
    }
    db.deploy(
        "DEPLOY pc AS SELECT id, sum(v) OVER w AS sv, min(v) OVER w AS mv, \
         stddev(v) OVER w AS dv FROM t WINDOW w AS (PARTITION BY k ORDER BY ts \
         ROWS BETWEEN 20 PRECEDING AND CURRENT ROW MAXSIZE 15)",
    )
    .unwrap();
    let dep = db.deployment("pc").unwrap();
    assert_eq!(dep.program().compiled_windows(), 1);
    assert_eq!(dep.program().fallback_windows(), 0);

    let before = openmldb::online::metrics::compiled_windows().value();
    let probe = Row::new(vec![
        Value::Bigint(900_000),
        Value::Bigint(1),
        Value::Double(3.5),
        Value::Timestamp(2_000),
    ]);
    let served = execute_request(&db, &dep, &probe).unwrap();
    let oracle = execute_request_materialized(&db, &dep, &probe).unwrap();
    assert_eq!(served.values(), oracle.values());
    if cfg!(not(feature = "obs-off")) {
        assert_eq!(
            openmldb::online::metrics::compiled_windows().value(),
            before + 1
        );
    }
}
