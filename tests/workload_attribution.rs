//! Property-based checks for the workload-attribution primitives: the
//! SpaceSaving heavy-hitter sketch against an exact-count oracle, and the
//! bounded-cardinality label registry under fuzzed deployment churn.

use std::collections::HashMap;

use openmldb_obs::{LabelRegistry, LabeledCounter, SpaceSaving, MAX_LABEL_SLOTS, OVERFLOW_LABEL};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// SpaceSaving's classic guarantees versus an exact HashMap count:
    /// `estimate - err <= true <= estimate` for every monitored key, and
    /// every key whose true count exceeds `observed / capacity` is
    /// monitored (top-K membership).
    #[test]
    fn spacesaving_tracks_exact_counts(
        // Key space deliberately larger than capacity; low ids are drawn
        // with the same probability as high ones, but the stream length
        // lets some keys dominate by chance.
        stream in proptest::collection::vec(0u32..40, 50..600),
        capacity in 4usize..16,
    ) {
        // Under obs-off the sketch is compiled to a no-op and observes
        // nothing; the guarantees below only apply with obs enabled.
        if !openmldb_obs::enabled() {
            return Ok(());
        }
        let sketch = SpaceSaving::new(capacity);
        let mut exact: HashMap<u32, u64> = HashMap::new();
        for k in &stream {
            sketch.offer(&k.to_string());
            *exact.entry(*k).or_insert(0) += 1;
        }
        prop_assert_eq!(sketch.observed(), stream.len() as u64);

        let monitored = sketch.top(capacity);
        prop_assert!(monitored.len() <= capacity);
        for e in &monitored {
            let true_count = exact.get(&e.key.parse::<u32>().unwrap()).copied().unwrap_or(0);
            prop_assert!(
                e.count >= true_count,
                "estimate {} underestimates true {} for {}", e.count, true_count, e.key
            );
            prop_assert!(
                e.count - e.err <= true_count,
                "lower bound {} exceeds true {} for {}", e.count - e.err, true_count, e.key
            );
        }
        // Guaranteed membership: anything heavier than observed/capacity
        // cannot have been evicted.
        let threshold = stream.len() as u64 / capacity as u64;
        for (k, &n) in &exact {
            if n > threshold {
                prop_assert!(
                    monitored.iter().any(|e| e.key == k.to_string()),
                    "key {k} with count {n} > {threshold} must be monitored"
                );
            }
        }
    }

    /// Label-registry overflow under deployment churn: the registry never
    /// exceeds its slot budget, every name past the budget resolves to the
    /// shared `__other` slot, and a labeled counter's per-slot totals still
    /// reconcile exactly with the number of increments.
    #[test]
    fn label_registry_overflow_reconciles(
        names in proptest::collection::vec("dep_[a-e]{1,6}", 1..300),
    ) {
        // Under obs-off resolution and counting are no-ops; the exact
        // reconciliation below only applies with obs enabled.
        if !openmldb_obs::enabled() {
            return Ok(());
        }
        // Fresh registry per case (the global one is shared process-wide).
        let reg = LabelRegistry::new();
        let counter = LabeledCounter::new();
        let mut distinct: Vec<String> = Vec::new();
        for name in &names {
            let id = reg.resolve(name);
            counter.inc(id);
            if !distinct.contains(name) {
                distinct.push(name.clone());
            }
            // Slot 0 is reserved for the overflow label; dense names start
            // at slot 1, so the budget admits MAX_LABEL_SLOTS - 1 names.
            let admitted = distinct
                .iter()
                .position(|n| n == name)
                .map(|p| p + 1 < MAX_LABEL_SLOTS)
                .unwrap_or(false);
            prop_assert_eq!(id.is_overflow(), !admitted, "name {}", name);
        }
        prop_assert!(reg.len() <= MAX_LABEL_SLOTS);
        // Exact reconciliation: nothing is lost to the overflow slot.
        prop_assert_eq!(counter.total(), names.len() as u64);
        let by_name: u64 = reg
            .names()
            .iter()
            .filter(|n| n.as_str() != OVERFLOW_LABEL)
            .filter_map(|n| reg.lookup(n))
            .map(|id| counter.value(id))
            .sum();
        let overflow = counter.value(openmldb_obs::LabelId::OVERFLOW);
        prop_assert_eq!(by_name + overflow, names.len() as u64);
    }
}

/// 10k distinct deployment names: memory stays bounded at the slot budget
/// and every post-budget increment lands in `__other` (the acceptance
/// bound from the issue, at integration level).
#[test]
fn ten_thousand_names_stay_bounded() {
    let reg = LabelRegistry::new();
    let counter = LabeledCounter::new();
    for i in 0..10_000 {
        let id = reg.resolve(&format!("churn_{i}"));
        counter.inc(id);
    }
    // The memory bound holds in every configuration; the exact counts
    // only exist when obs is compiled in.
    assert!(reg.len() <= MAX_LABEL_SLOTS);
    if openmldb_obs::enabled() {
        assert_eq!(counter.total(), 10_000);
        assert!(reg.overflow_resolutions() >= 10_000 - MAX_LABEL_SLOTS as u64);
    }
}
