//! End-to-end observability: one process exercises the online engine, the
//! plan cache, storage GC, the incremental executor and the memory manager,
//! then checks that the global registry exposes the full metric surface and
//! that the span tracer captured request breakdowns.

use openmldb::obs::{Registry, Stage, Tracer};
use openmldb::sql::ast::Frame;
use openmldb::{recommend_engine, Row, Value};

fn serve_some_requests() -> openmldb::Database {
    let db = openmldb::Database::new();
    db.execute(
        "CREATE TABLE actions (userid BIGINT, price DOUBLE, ts TIMESTAMP, \
         INDEX(KEY=userid, TS=ts, TTL=10s, TTL_TYPE=absolute))",
    )
    .unwrap();
    for i in 0..100i64 {
        db.execute(&format!(
            "INSERT INTO actions VALUES ({}, {}.5, {})",
            i % 4,
            i % 10,
            i * 100
        ))
        .unwrap();
    }
    db.deploy(
        "DEPLOY f AS SELECT userid, sum(price) OVER w AS spend FROM actions \
         WINDOW w AS (PARTITION BY userid ORDER BY ts \
         ROWS_RANGE BETWEEN 5s PRECEDING AND CURRENT ROW)",
    )
    .unwrap();
    for i in 0..128i64 {
        let request = Row::new(vec![
            Value::Bigint(i % 4),
            Value::Double(1.0),
            Value::Timestamp(20_000 + i),
        ]);
        db.request("f", &request).unwrap();
    }
    // offline queries route through the plan cache: first compiles (miss),
    // second reuses (hit)
    for _ in 0..2 {
        db.execute(
            "SELECT userid, sum(price) OVER w AS spend FROM actions \
             WINDOW w AS (PARTITION BY userid ORDER BY ts \
             ROWS_RANGE BETWEEN 5s PRECEDING AND CURRENT ROW)",
        )
        .unwrap();
    }
    db
}

#[test]
fn registry_exposes_cross_crate_metric_surface() {
    // trace every request so the tracer assertions below are deterministic
    Tracer::global().set_sample_every(1);

    let db = serve_some_requests();

    // exec: drive a sliding window directly (subtract-and-evict + eviction)
    {
        use openmldb::sql::functions::lookup;
        use openmldb::sql::plan::{BoundAggregate, PhysExpr};
        let aggs = [BoundAggregate {
            window_id: 0,
            func: lookup("sum").unwrap(),
            args: vec![PhysExpr::Column(0)],
            output_type: openmldb::DataType::Double,
        }];
        let refs: Vec<&BoundAggregate> = aggs.iter().collect();
        let mut w =
            openmldb::exec::SlidingWindow::new(Frame::RowsRange { preceding_ms: 10 }, &refs)
                .unwrap();
        for i in 0..50i64 {
            w.push(i * 5, &[Value::Bigint(1)]).unwrap();
        }
    }

    // storage: TTL GC far in the future evicts everything inserted above
    db.gc(10_000_000);

    // core: tier decisions + a memory-monitor poll
    recommend_engine(10, 100, 10);
    recommend_engine(10, 100, 25);
    recommend_engine(200, 100, 10);
    db.memory_monitor().poll();

    let render = Registry::global().render();
    let names = Registry::global().metric_names();

    let expected = [
        // online
        "openmldb_online_requests_total",
        "openmldb_online_request_duration_ns",
        // sql
        "openmldb_sql_plan_cache_hits_total",
        "openmldb_sql_plan_cache_misses_total",
        // storage
        "openmldb_storage_seeks_total",
        "openmldb_storage_scan_len_rows",
        "openmldb_storage_ttl_evictions_total",
        // exec
        "openmldb_exec_incremental_steps_total",
        "openmldb_exec_window_evictions_total",
        // core
        "openmldb_core_tier_inmemory_total",
        "openmldb_core_tier_ondisk_total",
        "openmldb_core_tier_diskrequired_total",
        "openmldb_core_memory_used_bytes",
    ];
    for name in expected {
        assert!(
            names.iter().any(|n| n == name),
            "metric {name} not registered; have: {names:?}"
        );
        assert!(render.contains(name), "render() missing {name}");
    }
    assert!(
        names.len() >= 12,
        "expected >= 12 metrics, got {}: {names:?}",
        names.len()
    );

    // Prometheus text structure
    assert!(render.contains("# TYPE openmldb_online_requests_total counter"));
    assert!(render.contains("# TYPE openmldb_online_request_duration_ns summary"));
    assert!(render.contains("openmldb_online_request_duration_ns{quantile=\"0.99\"}"));

    // JSON exposition parses the same surface
    let json = Registry::global().render_json();
    assert!(json.contains("\"name\":\"openmldb_online_requests_total\""));
    assert!(json.contains("\"p999\""));

    if openmldb::obs::enabled() {
        // The attribution globals register lazily from the per-request
        // profile fold, so they only exist with obs compiled in.
        for name in [
            "openmldb_online_scan_rows",
            "openmldb_online_request_time_ns",
            "openmldb_online_stage_time_ns",
        ] {
            assert!(
                names.iter().any(|n| n == name),
                "attribution metric {name} not registered; have: {names:?}"
            );
        }
        let requests = Registry::global()
            .counter("openmldb_online_requests_total", "")
            .value();
        assert!(requests >= 128, "served requests recorded: {requests}");
        let dur = Registry::global()
            .histogram("openmldb_online_request_duration_ns", "")
            .snapshot();
        assert!(dur.count() >= 128);
        assert!(dur.percentile(0.999) >= dur.percentile(0.5));

        // the tracer retained request breakdowns with the expected stages
        let traces = Tracer::global().recent();
        assert!(!traces.is_empty(), "sampled traces retained");
        let has = |stage: Stage| {
            traces
                .iter()
                .any(|t| t.spans.iter().any(|s| s.stage == stage))
        };
        assert!(has(Stage::StorageSeek), "storage_seek spans: {traces:?}");
        assert!(has(Stage::WindowDispatch));
        assert!(has(Stage::Aggregate));
        assert!(has(Stage::Encode));
        let trace_json = Tracer::global().render_json();
        assert!(trace_json.contains("\"stage\":\"window_dispatch\""));
    }
}

/// Per-deployment workload attribution: labeled series slice the request
/// traffic by deployment, the cost-profile store renders an EXPLAIN ANALYZE
/// breakdown, and the heavy-hitter sketch surfaces the deployment.
#[test]
fn per_deployment_attribution_is_exposed() {
    let db = serve_some_requests();
    if !openmldb::obs::enabled() {
        return;
    }

    let reg = Registry::global();
    let labeled = reg.labeled_metric_names();
    for name in [
        "openmldb_online_deployment_requests_total",
        "openmldb_online_deployment_scan_rows",
        "openmldb_online_deployment_stage_time_ns",
        "openmldb_online_deployment_request_time_ns",
        "openmldb_online_deployment_duration_ns",
    ] {
        assert!(
            labeled.iter().any(|n| n == name),
            "labeled metric {name} not registered; have: {labeled:?}"
        );
    }
    let series = reg.labeled_series("openmldb_online_deployment_requests_total");
    let served = series
        .iter()
        .find(|(label, _)| label == "f")
        .map(|&(_, v)| v)
        .unwrap_or(0);
    assert!(served >= 128, "deployment f attributed {served} requests");

    // The Prometheus exposition carries the per-deployment sample line.
    let render = reg.render();
    assert!(
        render.contains("openmldb_online_deployment_requests_total{deployment=\"f\"}"),
        "labeled sample line missing from render()"
    );

    // EXPLAIN ANALYZE: per-stage breakdown plus cost counters, non-empty
    // for a deployment that has served traffic.
    let explain = db.explain_analyze("f");
    assert!(
        explain.contains("EXPLAIN ANALYZE deployment \"f\""),
        "{explain}"
    );
    assert!(!explain.contains("(no samples)"), "{explain}");
    assert!(explain.contains("rows scanned"), "{explain}");
    assert!(explain.contains("stage storage_seek"), "{explain}");
    // An unknown deployment renders a clean empty section, not an error.
    let empty = db.explain_analyze("nosuch");
    assert!(empty.contains("(no samples)"), "{empty}");

    // The heavy-hitter sketch monitored the only active deployment.
    let top = openmldb::obs::SpaceSaving::hot_deployments().top(5);
    assert!(top.iter().any(|e| e.key == "f"), "hot deployments: {top:?}");
}

/// A budget of zero forces a typed timeout; the flight recorder must dump a
/// post-mortem whose per-stage self-times sum exactly to the total.
#[test]
fn timeout_dumps_an_exactly_attributed_post_mortem() {
    use openmldb::obs::flight;
    use openmldb::RequestOptions;
    use std::time::Duration;

    let db = serve_some_requests();
    let request = Row::new(vec![
        Value::Bigint(1),
        Value::Double(1.0),
        Value::Timestamp(30_000),
    ]);
    let opts = RequestOptions::with_deadline(Duration::ZERO);

    let before = flight::published_total();
    let err = db
        .request_readonly_with("f", &request, &opts)
        .expect_err("zero budget must time out");
    assert!(matches!(err, openmldb::Error::Timeout { .. }), "{err:?}");

    if openmldb::obs::enabled() {
        assert!(
            flight::published_total() > before,
            "the timeout must publish a post-mortem"
        );
        let log = Registry::global().slow_queries();
        let pm = log
            .iter()
            .rev()
            .find(|pm| pm.outcome == openmldb::obs::Outcome::Timeout)
            .expect("a timeout post-mortem in the slow-query log");
        let stage_sum: u64 = pm.stage_self_ns.iter().sum();
        assert_eq!(
            stage_sum + pm.other_ns,
            pm.total_ns,
            "attribution must sum exactly to the total: {pm:?}"
        );
        assert!(!pm.culprit.is_empty());
        let text = pm.render_text();
        assert!(text.contains("outcome=timeout"), "{text}");
        let report = Registry::global().render_slow_query_report(false);
        assert!(report.contains("slow-query log:"), "{report}");
    }
}

/// Requests slower than the exemplar threshold leave their trace id and
/// stage breakdown on the latency histogram's buckets.
#[test]
fn slow_requests_attach_exemplars_to_the_latency_histogram() {
    if !openmldb::obs::enabled() {
        return;
    }
    let h = Registry::global().histogram("openmldb_online_request_duration_ns", "");
    // Threshold 0: every request from here on qualifies as an exemplar.
    h.enable_exemplars(0);

    let _db = serve_some_requests();

    let exemplars = h.exemplars();
    assert!(
        !exemplars.is_empty(),
        "requests must have attached exemplars"
    );
    for (_bucket, ex) in &exemplars {
        assert!(ex.trace_id > 0, "exemplars carry a live trace id: {ex:?}");
    }
}
