//! End-to-end consistency sentinel + live ops plane: sampled serving feeds
//! the audit queue, the background auditor replays through both oracle
//! paths, clean serving confirms zero divergences, a chaos-corrupted
//! compiled kernel is caught and attributed, and the HTTP ops endpoint
//! exposes `/metrics`, `/report`, `/healthz` and `/explain/<deployment>`.
//!
//! The sentinel's queue, twin cache and counters are process-wide, so
//! every test here serializes on one local mutex and works with per-drain
//! [`AuditStats`] rather than global totals.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use openmldb::chaos::{InjectionPoint, Plan};
use openmldb::obs::Registry;
use openmldb::online::sentinel;
use openmldb::{Database, OpsConfig, Row, Value};

fn lock() -> MutexGuard<'static, ()> {
    static L: OnceLock<Mutex<()>> = OnceLock::new();
    L.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A database with one deployed window query over a pre-loaded table. The
/// serving loops below are read-only so the table version stays fixed and
/// every captured sample audits (no stale skips).
fn sentinel_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute(
        "CREATE TABLE actions (userid BIGINT, price DOUBLE, ts TIMESTAMP, \
         INDEX(KEY=userid, TS=ts, TTL=0, TTL_TYPE=latest))",
    )
    .unwrap();
    for i in 0..200i64 {
        db.execute(&format!(
            "INSERT INTO actions VALUES ({}, {}.25, {})",
            i % 5,
            i % 13,
            1_000 + i * 7
        ))
        .unwrap();
    }
    db.deploy(
        "DEPLOY fsent AS SELECT userid, sum(price) OVER w AS spend, \
         count(price) OVER w AS hits FROM actions \
         WINDOW w AS (PARTITION BY userid ORDER BY ts \
         ROWS_RANGE BETWEEN 5s PRECEDING AND CURRENT ROW)",
    )
    .unwrap();
    db
}

fn serve(db: &Database, n: i64) {
    for i in 0..n {
        let request = Row::new(vec![
            Value::Bigint(i % 5),
            Value::Double(1.0),
            Value::Timestamp(3_000 + i),
        ]);
        db.request_readonly("fsent", &request).unwrap();
    }
}

/// Satellite regression: metric trend rings must advance while the process
/// serves — the ops driver owns the periodic `Registry::tick`.
#[test]
fn ops_driver_ticks_registry_during_serving() {
    if !openmldb::obs::enabled() {
        return;
    }
    let _g = lock();
    sentinel::reset();
    let db = sentinel_db();
    let before = Registry::global().ticks();
    let plane = db
        .start_ops(OpsConfig {
            http_addr: None,
            sample_every: 8,
            tick_every: Duration::from_millis(5),
            audit_batch: 64,
        })
        .unwrap();
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(60) {
        serve(&db, 4);
    }
    drop(plane);
    assert!(
        Registry::global().ticks() > before,
        "driver must advance trend ticks while serving"
    );
    sentinel::set_sample_every(0);
    sentinel::reset();
}

/// Clean serving: every sample audits through both oracles with zero
/// divergences, and the queue fully drains.
#[test]
fn clean_serving_audits_with_zero_divergences() {
    if !openmldb::obs::enabled() {
        return;
    }
    let _g = lock();
    sentinel::reset();
    let db = sentinel_db();
    sentinel::set_sample_every(1);
    serve(&db, 32);
    sentinel::set_sample_every(0);
    let stats = db.sentinel_drain(4096);
    assert!(stats.audited >= 32, "all 32 samples must audit: {stats:?}");
    assert_eq!(stats.divergences, 0, "clean serving must not diverge");
    assert_eq!(stats.stale_skips, 0, "read-only serving cannot go stale");
    assert_eq!(stats.errors, 0);
    assert_eq!(sentinel::queue_len(), 0, "queue must fully drain");
    sentinel::reset();
}

/// A write landing between capture and audit moves the version signature:
/// the audit is skipped as stale, never reported as a divergence.
#[test]
fn write_between_capture_and_audit_is_a_stale_skip() {
    if !openmldb::obs::enabled() {
        return;
    }
    let _g = lock();
    sentinel::reset();
    let db = sentinel_db();
    sentinel::set_sample_every(1);
    serve(&db, 8);
    sentinel::set_sample_every(0);
    db.execute("INSERT INTO actions VALUES (1, 9.0, 99999)")
        .unwrap();
    let stats = db.sentinel_drain(4096);
    assert_eq!(stats.audited, 0, "stale samples must not replay: {stats:?}");
    assert_eq!(stats.divergences, 0);
    assert_eq!(stats.stale_skips, 8);
    sentinel::reset();
}

/// The acceptance scenario: a chaos-corrupted compiled kernel silently
/// perturbs served aggregates; the sentinel detects the divergence,
/// attributes it to the right deployment, and surfaces it in `/healthz`,
/// the flight-recorder slow log, and the bounded divergence log. Without
/// the `chaos` feature the same serving stays clean.
#[test]
fn corrupted_compiled_kernel_divergence_is_detected() {
    if !openmldb::obs::enabled() {
        return;
    }
    let _g = lock();
    sentinel::reset();
    openmldb::chaos::reset();
    let db = sentinel_db();
    let divergence_log_before = openmldb::obs::audit::divergences_total();
    sentinel::set_sample_every(1);
    openmldb::chaos::install(Plan::new(0xA11CE).kill_rate(InjectionPoint::CompiledKernel, 1.0));
    serve(&db, 16);
    openmldb::chaos::reset();
    sentinel::set_sample_every(0);
    let stats = db.sentinel_drain(4096);
    if openmldb::chaos::enabled() {
        assert!(
            stats.divergences >= 1,
            "corrupted kernel must be caught: {stats:?}"
        );
        // Attribution: the bounded divergence log names the deployment.
        let log = openmldb::obs::audit::divergences();
        assert!(
            log.iter().any(|d| d.deployment == "fsent"),
            "divergence must be attributed to fsent"
        );
        assert!(openmldb::obs::audit::divergences_total() > divergence_log_before);
        // Flight recorder: a consistency_divergence post-mortem landed.
        assert!(
            Registry::global()
                .slow_queries()
                .iter()
                .any(|pm| pm.outcome.name() == "consistency_divergence"),
            "slow log must carry the divergence post-mortem"
        );
        // Health verdict flips.
        assert!(db.healthz_json().contains("\"ok\":false"));
    } else {
        assert_eq!(stats.divergences, 0, "no chaos feature, no corruption");
    }
    sentinel::reset();
}

fn http_get(addr: std::net::SocketAddr, request_line: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("{request_line}\r\nHost: localhost\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The live ops endpoint end-to-end over a real socket: Prometheus
/// exposition, JSON report, the sentinel health verdict, per-deployment
/// explain, 404s and 405s.
#[test]
fn ops_endpoint_serves_all_routes() {
    if !openmldb::obs::enabled() {
        return;
    }
    let _g = lock();
    sentinel::reset();
    let db = sentinel_db();
    let plane = db
        .start_ops(OpsConfig {
            http_addr: Some("127.0.0.1:0".into()),
            sample_every: 4,
            tick_every: Duration::from_millis(50),
            audit_batch: 64,
        })
        .unwrap();
    let addr = plane.addr().expect("listener bound");
    serve(&db, 8);

    let (status, body) = http_get(addr, "GET /metrics HTTP/1.1");
    assert_eq!(status, 200);
    assert!(
        body.contains("openmldb_online_requests_total"),
        "Prometheus exposition must include engine counters"
    );

    let (status, body) = http_get(addr, "GET /report HTTP/1.1");
    assert_eq!(status, 200);
    assert!(body.trim_start().starts_with('{'), "JSON report body");

    let (status, body) = http_get(addr, "GET /healthz HTTP/1.1");
    assert_eq!(status, 200);
    assert!(body.contains("\"samples\":"));
    assert!(body.contains("\"divergences\":"));

    let (status, body) = http_get(addr, "GET /explain/fsent HTTP/1.1");
    assert_eq!(status, 200);
    assert!(!body.is_empty());

    let (status, _) = http_get(addr, "GET /no-such-route HTTP/1.1");
    assert_eq!(status, 404);

    let (status, _) = http_get(addr, "POST /metrics HTTP/1.1");
    assert_eq!(status, 405);

    drop(plane);
    // The listener is down after shutdown: connecting must fail.
    assert!(TcpStream::connect(addr).is_err());
    sentinel::set_sample_every(0);
    sentinel::reset();
}
