//! The paper's headline guarantee, tested differentially: a feature script
//! compiled once produces **identical values** in offline batch mode and
//! online request mode, across function mixes, frame types, joins and
//! window unions.

use openmldb::{Database, ExecResult, Row, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup(seed: u64, rows: usize) -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE events (id BIGINT, k BIGINT, v DOUBLE, q INT, cat STRING, ts TIMESTAMP,
         INDEX(KEY=k, TS=ts))",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE extra (id BIGINT, k BIGINT, v DOUBLE, q INT, cat STRING, ts TIMESTAMP,
         INDEX(KEY=k, TS=ts))",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE dim (k BIGINT, weight DOUBLE, updated TIMESTAMP,
         INDEX(KEY=k, TS=updated))",
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let cats = ["a", "b", "c"];
    for i in 0..rows {
        let table = if i % 4 == 0 { "extra" } else { "events" };
        db.insert_row(
            table,
            &Row::new(vec![
                Value::Bigint(i as i64),
                Value::Bigint(rng.gen_range(0..5)),
                Value::Double(rng.gen_range(-10.0..10.0)),
                Value::Int(rng.gen_range(0..4)),
                Value::string(cats[rng.gen_range(0..3usize)]),
                Value::Timestamp(rng.gen_range(0..10_000)),
            ]),
        )
        .unwrap();
    }
    for k in 0..5 {
        db.execute(&format!("INSERT INTO dim VALUES ({k}, {k}.5, 100)"))
            .unwrap();
    }
    db
}

/// Row equality up to floating-point association error: the offline engine's
/// subtract-and-evict accumulators sum in a different order than the online
/// engine's fresh window scan, so Double features may differ by ~1 ULP-scale
/// noise while every set/count/string feature must match exactly.
fn assert_rows_close(a: &Row, b: &Row, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: arity");
    for (i, (x, y)) in a.values().iter().zip(b.values()).enumerate() {
        match (x, y) {
            (Value::Double(p), Value::Double(q)) => {
                let scale = p.abs().max(q.abs()).max(1.0);
                assert!(
                    (p - q).abs() / scale < 1e-9,
                    "{context}: column {i}: {p} vs {q}"
                );
            }
            _ => assert_eq!(x, y, "{context}: column {i}"),
        }
    }
}

/// Compare online request-mode output against the offline batch row for the
/// same tuple: insert the probe, batch everything, find the probe by id.
fn assert_consistent(db: &Database, name: &str, sql: &str, probe: Row) {
    db.deploy(&format!("DEPLOY {name} AS {sql}")).unwrap();
    let online = db.request(name, &probe).unwrap(); // computes THEN persists
    let ExecResult::Batch(batch) = db.execute(sql).unwrap() else {
        panic!()
    };
    let id = probe[0].clone();
    let offline = batch
        .rows
        .iter()
        .find(|r| r[0] == id)
        .unwrap_or_else(|| panic!("probe id {id:?} missing from batch output"));
    assert_rows_close(&online, offline, &format!("online vs offline for `{name}`"));
}

fn probe(id: i64, k: i64, ts: i64) -> Row {
    Row::new(vec![
        Value::Bigint(id),
        Value::Bigint(k),
        Value::Double(3.25),
        Value::Int(2),
        Value::string("b"),
        Value::Timestamp(ts),
    ])
}

#[test]
fn simple_aggregates_range_frame() {
    let db = setup(1, 300);
    assert_consistent(
        &db,
        "d1",
        "SELECT id, sum(v) OVER w AS s, count(v) OVER w AS c, avg(v) OVER w AS a, \
                min(v) OVER w AS lo, max(v) OVER w AS hi \
         FROM events WINDOW w AS (PARTITION BY k ORDER BY ts \
         ROWS_RANGE BETWEEN 2s PRECEDING AND CURRENT ROW)",
        probe(100_000, 2, 8_000),
    );
}

#[test]
fn rows_frame_and_conditionals() {
    let db = setup(2, 300);
    assert_consistent(
        &db,
        "d2",
        "SELECT id, count_where(v, q > 1) OVER w AS cw, sum_where(v, q > 1) OVER w AS sw, \
                distinct_count(cat) OVER w AS dc \
         FROM events WINDOW w AS (PARTITION BY k ORDER BY ts \
         ROWS BETWEEN 20 PRECEDING AND CURRENT ROW)",
        probe(100_001, 1, 9_000),
    );
}

#[test]
fn extended_ml_functions() {
    let db = setup(3, 300);
    assert_consistent(
        &db,
        "d3",
        "SELECT id, topn_frequency(cat, 2) OVER w AS topcat, \
                avg_cate_where(v, q > 0, cat) OVER w AS cate_avg, \
                drawdown(v) OVER w AS dd, ew_avg(v, 0.4) OVER w AS ew \
         FROM events WINDOW w AS (PARTITION BY k ORDER BY ts \
         ROWS_RANGE BETWEEN 5s PRECEDING AND CURRENT ROW)",
        probe(100_002, 3, 9_500),
    );
}

#[test]
fn window_union_consistency() {
    let db = setup(4, 400);
    assert_consistent(
        &db,
        "d4",
        "SELECT id, sum(v) OVER w AS s, count(v) OVER w AS c \
         FROM events WINDOW w AS (UNION extra PARTITION BY k ORDER BY ts \
         ROWS_RANGE BETWEEN 3s PRECEDING AND CURRENT ROW)",
        probe(100_003, 0, 7_777),
    );
}

#[test]
fn last_join_consistency() {
    let db = setup(5, 200);
    assert_consistent(
        &db,
        "d5",
        "SELECT events.id, dim.weight, sum(v) OVER w AS s FROM events \
         LAST JOIN dim ORDER BY dim.updated ON events.k = dim.k \
         WINDOW w AS (PARTITION BY k ORDER BY ts \
         ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW)",
        probe(100_004, 4, 6_000),
    );
}

#[test]
fn multi_window_consistency() {
    let db = setup(6, 300);
    assert_consistent(
        &db,
        "d6",
        "SELECT id, sum(v) OVER w1 AS by_k, count(v) OVER w2 AS by_cat FROM events \
         WINDOW w1 AS (PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 2s PRECEDING AND CURRENT ROW), \
                w2 AS (PARTITION BY cat ORDER BY ts ROWS_RANGE BETWEEN 2s PRECEDING AND CURRENT ROW)",
        probe(100_005, 2, 8_800),
    );
}

#[test]
fn preagg_deployment_consistency() {
    // The long_windows option must not change any feature value.
    let db = setup(7, 500);
    let sql = "SELECT id, sum(v) OVER w AS s, count(v) OVER w AS c, max(v) OVER w AS m \
               FROM events WINDOW w AS (PARTITION BY k ORDER BY ts \
               ROWS_RANGE BETWEEN 8s PRECEDING AND CURRENT ROW)";
    db.deploy(&format!("DEPLOY plain AS {sql}")).unwrap();
    db.deploy(&format!(
        "DEPLOY fast OPTIONS(long_windows=\"w:500\") AS {sql}"
    ))
    .unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    for i in 0..50 {
        let p = probe(
            200_000 + i,
            rng.gen_range(0..5),
            rng.gen_range(5_000..12_000),
        );
        let a = db.request_readonly("plain", &p).unwrap();
        let b = db.request_readonly("fast", &p).unwrap();
        assert_rows_close(&a, &b, &format!("preagg probe {i}"));
    }
    let dep = db.deployment("fast").unwrap();
    assert!(dep.preaggs[0].as_ref().unwrap().queries() >= 50);
}

#[test]
fn many_random_probes_agree() {
    let db = setup(8, 400);
    let sql = "SELECT id, sum(v) OVER w AS s, count_where(v, q > 0) OVER w AS cw, \
                      distinct_count(cat) OVER w AS dc \
               FROM events WINDOW w AS (PARTITION BY k ORDER BY ts \
               ROWS_RANGE BETWEEN 4s PRECEDING AND CURRENT ROW)";
    db.deploy(&format!("DEPLOY rnd AS {sql}")).unwrap();
    let mut rng = StdRng::seed_from_u64(10);
    for i in 0..30 {
        let p = probe(300_000 + i, rng.gen_range(0..5), rng.gen_range(0..11_000));
        let online = db.request("rnd", &p).unwrap();
        let ExecResult::Batch(batch) = db.execute(sql).unwrap() else {
            panic!()
        };
        let offline = batch
            .rows
            .iter()
            .find(|r| r[0] == p[0])
            .expect("probe present");
        assert_rows_close(&online, offline, &format!("probe {i}"));
    }
}

#[test]
fn instance_not_in_window_consistency() {
    let db = setup(11, 300);
    assert_consistent(
        &db,
        "d_inw",
        "SELECT id, sum(v) OVER w AS s, count(v) OVER w AS c \
         FROM events WINDOW w AS (UNION extra PARTITION BY k ORDER BY ts \
         ROWS_RANGE BETWEEN 3s PRECEDING AND CURRENT ROW INSTANCE_NOT_IN_WINDOW)",
        probe(100_011, 2, 8_200),
    );
}

#[test]
fn exclude_current_row_consistency() {
    let db = setup(12, 300);
    assert_consistent(
        &db,
        "d_ecr",
        "SELECT id, sum(v) OVER w AS s, count(v) OVER w AS c \
         FROM events WINDOW w AS (PARTITION BY k ORDER BY ts \
         ROWS_RANGE BETWEEN 3s PRECEDING AND CURRENT ROW EXCLUDE CURRENT_ROW)",
        probe(100_012, 1, 7_300),
    );
}

/// Deliberately collision-heavy timestamps: every window is full of ts-peers
/// (the case that breaks naive anchor-position semantics).
#[test]
fn tie_heavy_streams_stay_consistent() {
    let db = Database::new();
    db.execute(
        "CREATE TABLE events (id BIGINT, k BIGINT, v DOUBLE, q INT, cat STRING, ts TIMESTAMP,
         INDEX(KEY=k, TS=ts))",
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    for i in 0..400 {
        db.insert_row(
            "events",
            &Row::new(vec![
                Value::Bigint(i),
                Value::Bigint(rng.gen_range(0..3)),
                Value::Double(rng.gen_range(-5.0..5.0)),
                Value::Int(rng.gen_range(0..3)),
                Value::string("x"),
                // Only 25 distinct timestamps → ~16 peers per instant.
                Value::Timestamp(rng.gen_range(0..25i64) * 100),
            ]),
        )
        .unwrap();
    }
    let sql = "SELECT id, sum(v) OVER w AS s, count(v) OVER w AS c, \
                      distinct_count(q) OVER w AS dc \
               FROM events WINDOW w AS (PARTITION BY k ORDER BY ts \
               ROWS_RANGE BETWEEN 500 PRECEDING AND CURRENT ROW)";
    db.deploy(&format!("DEPLOY ties AS {sql}")).unwrap();
    for i in 0..20 {
        // Probe timestamps that collide with stored instants.
        let p = Row::new(vec![
            Value::Bigint(500_000 + i),
            Value::Bigint(i % 3),
            Value::Double(1.5),
            Value::Int(1),
            Value::string("x"),
            Value::Timestamp((i % 25) * 100),
        ]);
        let online = db.request("ties", &p).unwrap();
        let ExecResult::Batch(batch) = db.execute(sql).unwrap() else {
            panic!()
        };
        let offline = batch
            .rows
            .iter()
            .find(|r| r[0] == p[0])
            .expect("probe present");
        assert_rows_close(&online, offline, &format!("tie probe {i}"));
    }
}
