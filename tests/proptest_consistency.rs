//! Property-based online/offline consistency: random streams (including
//! timestamp collisions and skewed keys) and random probes must produce the
//! same feature values in request mode and batch mode. This is the paper's
//! core guarantee, fuzzed.

use openmldb::{Database, ExecResult, Row, Value};
use proptest::prelude::*;

fn build_db(rows: &[(i64, i64, f64, i64)]) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE s (id BIGINT, k BIGINT, v DOUBLE, ts TIMESTAMP, INDEX(KEY=k, TS=ts))")
        .unwrap();
    for (i, (k, ts, v, _)) in rows.iter().enumerate() {
        db.insert_row(
            "s",
            &Row::new(vec![
                Value::Bigint(i as i64),
                Value::Bigint(*k),
                Value::Double(*v),
                Value::Timestamp(*ts),
            ]),
        )
        .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    #[test]
    fn random_streams_random_probes_agree(
        rows in proptest::collection::vec(
            (0i64..4, 0i64..200, -100.0f64..100.0, 0i64..1),
            20..120,
        ),
        probes in proptest::collection::vec((0i64..4, 0i64..220), 1..5),
        frame_ms in 10i64..150,
    ) {
        let db = build_db(&rows);
        let sql = format!(
            "SELECT id, sum(v) OVER w AS s, count(v) OVER w AS c, \
                    min(v) OVER w AS lo, max(v) OVER w AS hi, \
                    distinct_count(k) OVER w AS dk \
             FROM s WINDOW w AS (PARTITION BY k ORDER BY ts \
             ROWS_RANGE BETWEEN {frame_ms} PRECEDING AND CURRENT ROW)"
        );
        db.deploy(&format!("DEPLOY p AS {sql}")).unwrap();
        for (n, (k, ts)) in probes.iter().enumerate() {
            let probe = Row::new(vec![
                Value::Bigint(900_000 + n as i64),
                Value::Bigint(*k),
                Value::Double(7.25),
                Value::Timestamp(*ts),
            ]);
            let online = db.request("p", &probe).unwrap();
            let ExecResult::Batch(batch) = db.execute(&sql).unwrap() else { panic!() };
            let offline = batch
                .rows
                .iter()
                .find(|r| r[0] == probe[0])
                .expect("probe row present in batch");
            for (i, (x, y)) in online.values().iter().zip(offline.values()).enumerate() {
                match (x, y) {
                    (Value::Double(p), Value::Double(q)) => {
                        let scale = p.abs().max(q.abs()).max(1.0);
                        prop_assert!(
                            (p - q).abs() / scale < 1e-9,
                            "probe {n} col {i}: {p} vs {q}"
                        );
                    }
                    _ => prop_assert_eq!(x, y, "probe {} col {}", n, i),
                }
            }
        }
    }
}
