//! SQL-level coverage of the extended function library (paper Table 1 and
//! the Section 4.1 categories): every aggregate and a broad set of scalars,
//! exercised through real deployed SQL with hand-computed expected values,
//! in both execution modes.

use openmldb::{Database, ExecResult, Row, Value};

/// Events for one key, chronological, with easy-to-hand-compute values.
fn db() -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE e (id BIGINT, k BIGINT, v DOUBLE, q INT, cat STRING, tags STRING, \
         ts TIMESTAMP, INDEX(KEY=k, TS=ts))",
    )
    .unwrap();
    let rows = [
        (0, 10.0, 1, "shoes", "a:1|b:2", 1_000),
        (1, 20.0, 2, "bags", "b:3", 2_000),
        (2, 30.0, 1, "shoes", "c:4|a:5", 3_000),
        (3, 40.0, 3, "books", "", 4_000),
        (4, 50.0, 2, "shoes", "a:6", 5_000),
    ];
    for (id, v, q, cat, tags, ts) in rows {
        db.insert_row(
            "e",
            &Row::new(vec![
                Value::Bigint(id),
                Value::Bigint(1),
                Value::Double(v),
                Value::Int(q),
                Value::string(cat),
                Value::string(tags),
                Value::Timestamp(ts),
            ]),
        )
        .unwrap();
    }
    db
}

/// Run one single-feature script in request mode for a probe at ts=6000
/// (window covers all five stored rows + the probe) and return the feature.
fn feature(db: &Database, name: &str, expr: &str) -> Value {
    db.deploy(&format!(
        "DEPLOY {name} AS SELECT {expr} AS f FROM e WINDOW w AS \
         (PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 10s PRECEDING AND CURRENT ROW)"
    ))
    .unwrap();
    let probe = Row::new(vec![
        Value::Bigint(99),
        Value::Bigint(1),
        Value::Double(60.0),
        Value::Int(2),
        Value::string("bags"),
        Value::string("z:9"),
        Value::Timestamp(6_000),
    ]);
    let online = db.request_readonly(name, &probe).unwrap();
    online[0].clone()
}

#[test]
fn aggregate_function_catalogue() {
    let db = db();
    // Window = stored values 10..50 plus probe 60.
    assert_eq!(feature(&db, "f_sum", "sum(v) OVER w"), Value::Double(210.0));
    assert_eq!(feature(&db, "f_min", "min(v) OVER w"), Value::Double(10.0));
    assert_eq!(feature(&db, "f_max", "max(v) OVER w"), Value::Double(60.0));
    assert_eq!(feature(&db, "f_avg", "avg(v) OVER w"), Value::Double(35.0));
    assert_eq!(feature(&db, "f_count", "count(v) OVER w"), Value::Bigint(6));
    assert_eq!(
        feature(&db, "f_median", "median(v) OVER w"),
        Value::Double(35.0)
    );
    let Value::Double(sd) = feature(&db, "f_sd", "stddev(v) OVER w") else {
        panic!()
    };
    assert!((sd - 18.708).abs() < 0.01, "{sd}");

    // Conditional family: rows with q > 1 are 20, 40, 50 and probe 60.
    assert_eq!(
        feature(&db, "f_cw", "count_where(v, q > 1) OVER w"),
        Value::Bigint(4)
    );
    assert_eq!(
        feature(&db, "f_sw", "sum_where(v, q > 1) OVER w"),
        Value::Double(170.0)
    );
    assert_eq!(
        feature(&db, "f_aw", "avg_where(v, q > 1) OVER w"),
        Value::Double(42.5)
    );
    assert_eq!(
        feature(&db, "f_mw", "min_where(v, q > 1) OVER w"),
        Value::Double(20.0)
    );
    assert_eq!(
        feature(&db, "f_xw", "max_where(v, q > 1) OVER w"),
        Value::Double(60.0)
    );

    // Frequency family: cats = shoes×3, bags×1+probe bags, books×1.
    assert_eq!(
        feature(&db, "f_dc", "distinct_count(cat) OVER w"),
        Value::Bigint(3)
    );
    assert_eq!(
        feature(&db, "f_topf", "topn_frequency(cat, 2) OVER w"),
        Value::string("shoes,bags")
    );
    assert_eq!(
        feature(&db, "f_top", "top(v, 3) OVER w"),
        Value::string("60,50,40")
    );

    // Category-keyed: q>1 rows by cat: bags 20+60, shoes 50, books 40.
    assert_eq!(
        feature(&db, "f_acw", "avg_cate_where(v, q > 1, cat) OVER w"),
        Value::string("bags:40,books:40,shoes:50")
    );
    assert_eq!(
        feature(&db, "f_scw", "sum_cate_where(v, q > 1, cat) OVER w"),
        Value::string("bags:80,books:40,shoes:50")
    );
    assert_eq!(
        feature(&db, "f_ccw", "count_cate_where(v, q > 1, cat) OVER w"),
        Value::string("bags:2,books:1,shoes:1")
    );

    // Time-series family (chronological feed).
    assert_eq!(
        feature(&db, "f_dd", "drawdown(v) OVER w"),
        Value::Double(0.0)
    );
    assert_eq!(
        feature(&db, "f_lag", "lag(v, 1) OVER w"),
        Value::Double(50.0)
    );
    assert_eq!(
        feature(&db, "f_fv", "first_value(v) OVER w"),
        Value::Double(60.0)
    );
    let Value::Double(ew) = feature(&db, "f_ew", "ew_avg(v, 0.5) OVER w") else {
        panic!()
    };
    // 10 →(.5) 15 → 22.5 → 31.25 → 40.625 → 50.3125
    assert!((ew - 50.3125).abs() < 1e-9, "{ew}");
}

#[test]
fn scalar_function_catalogue_through_sql() {
    let db = db();
    // Scalars applied to aggregate results and raw columns.
    assert_eq!(
        feature(&db, "s_round", "round(avg(v) OVER w / 8)"),
        Value::Bigint(4) // 35 / 8 = 4.375 → 4
    );
    assert_eq!(
        feature(&db, "s_if", "if(sum(v) OVER w > 100, 'hot', 'cold')"),
        Value::string("hot")
    );
    assert_eq!(feature(&db, "s_sign", "sign(v - 100)"), Value::Int(-1));
    assert_eq!(
        feature(&db, "s_concat", "concat(cat, ':', q)"),
        Value::string("bags:2")
    );
    assert_eq!(
        feature(&db, "s_split", "split_by_key(tags, '|', ':')"),
        Value::string("z")
    );
    assert_eq!(
        feature(&db, "s_great", "greatest(v, 15.0)"),
        Value::Double(60.0)
    );
    assert_eq!(feature(&db, "s_ucase", "ucase(cat)"), Value::string("BAGS"));
    assert_eq!(
        feature(&db, "s_replace", "replace(cat, 'a', 'o')"),
        Value::string("bogs")
    );
    assert_eq!(feature(&db, "s_year", "year(ts)"), Value::Int(1970));
    assert_eq!(feature(&db, "s_str", "string(q)"), Value::string("2"));
    assert_eq!(
        feature(
            &db,
            "s_case",
            "CASE WHEN q > 1 THEN ucase(cat) ELSE cat END"
        ),
        Value::string("BAGS")
    );
}

#[test]
fn offline_mode_agrees_on_the_catalogue() {
    // One wide script with a representative slice, both modes.
    let db = db();
    let sql = "SELECT id, sum(v) OVER w AS a, topn_frequency(cat, 2) OVER w AS b, \
                      avg_cate_where(v, q > 1, cat) OVER w AS c, ew_avg(v, 0.5) OVER w AS d, \
                      concat(cat, '-', q) AS e \
               FROM e WINDOW w AS (PARTITION BY k ORDER BY ts \
               ROWS_RANGE BETWEEN 10s PRECEDING AND CURRENT ROW)";
    db.deploy(&format!("DEPLOY wide AS {sql}")).unwrap();
    let probe = Row::new(vec![
        Value::Bigint(99),
        Value::Bigint(1),
        Value::Double(60.0),
        Value::Int(2),
        Value::string("bags"),
        Value::string("z:9"),
        Value::Timestamp(6_000),
    ]);
    let online = db.request("wide", &probe).unwrap();
    let ExecResult::Batch(batch) = db.execute(sql).unwrap() else {
        panic!()
    };
    let offline = batch
        .rows
        .iter()
        .find(|r| r[0] == Value::Bigint(99))
        .unwrap();
    for (i, (x, y)) in online.values().iter().zip(offline.values()).enumerate() {
        match (x, y) {
            (Value::Double(p), Value::Double(q)) => {
                assert!((p - q).abs() < 1e-9, "col {i}: {p} vs {q}")
            }
            _ => assert_eq!(x, y, "col {i}"),
        }
    }
}
